"""Setup shim for legacy editable installs (environments without `wheel`).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` in offline environments whose
setuptools cannot build PEP-660 editable wheels.
"""

from setuptools import setup

setup()
