"""Parallel cell execution and the content-addressed result cache.

``CellSpec`` describes one independent simulation as a pure, picklable
value; ``CellExecutor`` fans specs over worker processes with results
merged in submission order (bit-identical to a serial run); and
``ResultCache`` memoizes results on disk keyed by the spec's canonical
form plus a code-version salt. See each module's docstring for the
contracts.
"""

from repro.exec.cache import CacheStats, ResultCache, code_salt
from repro.exec.executor import CellExecutionError, CellExecutor, CellOutcome
from repro.exec.spec import ENGINE_KINDS, CellSpec

__all__ = [
    "ENGINE_KINDS",
    "CacheStats",
    "CellExecutionError",
    "CellExecutor",
    "CellOutcome",
    "CellSpec",
    "ResultCache",
    "code_salt",
]
