"""Deterministic parallel execution of independent simulation cells.

:class:`CellExecutor` takes a list of :class:`~repro.exec.spec.CellSpec`
and returns their :class:`~repro.runtime.metrics.EngineResult` in
**submission order**, regardless of worker count:

- ``jobs=1`` executes inline, sequentially, in this process — the exact
  code path a bare ``engine.run(workload)`` loop takes, with no pool, no
  pickling, and no serialization overhead (the zero-overhead contract);
- ``jobs=N`` fans the cells over a ``ProcessPoolExecutor`` and collects
  results positionally. Each cell is a pure function of its spec (the
  spec layer rejects process-local hooks and derives any child seeds via
  ``spawn_rng`` from the cell's own identity), so the merged output is
  bit-identical to the serial run.

A cache (:class:`~repro.exec.cache.ResultCache`) short-circuits cells
before any fan-out; only misses are simulated, and fresh results are
written back. Exceptions inside a worker are serialized as (type name,
message, traceback text) — engine exceptions can hold unpicklable state
— and re-raised here as :class:`CellExecutionError` with the failing
spec attached.
"""

from __future__ import annotations

import resource
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.exec.cache import ResultCache
from repro.exec.spec import CellSpec
from repro.runtime.metrics import EngineResult


class CellExecutionError(ReproError):
    """A cell failed in a worker process; carries the failing spec and
    the child's traceback text."""

    def __init__(
        self, spec: CellSpec, exc_type: str, message: str, child_traceback: str
    ) -> None:
        self.spec = spec
        self.exc_type = exc_type
        self.child_traceback = child_traceback
        super().__init__(
            f"cell failed in worker: {exc_type}: {message}\n"
            f"  cell: {spec.describe()}\n"
            f"  child traceback:\n{child_traceback}"
        )


@dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-served) cell.

    ``peak_rss_mb`` is the executing process's high-water RSS after the
    cell ran: the worker's for pooled cells (workers are reused, so it is
    a pool-lifetime high-water mark, the right number for "how much
    memory does --jobs N need"), this process's for inline cells, and
    0.0 for cache hits (nothing was simulated).
    """

    spec: CellSpec
    result: EngineResult
    cached: bool
    peak_rss_mb: float


def _self_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_cell_worker(spec: CellSpec) -> tuple:
    """Module-level worker entry point (picklable by the pool).

    Exceptions are returned as data, not raised: engine errors can hold
    references to unpicklable runtime state, and a raise would surface in
    the parent as an opaque ``BrokenProcessPool``.
    """
    try:
        result = spec.execute()
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc), traceback.format_exc())
    return ("ok", result, _self_rss_mb())


class CellExecutor:
    """Runs cells inline (``jobs=1``) or across a process pool, with an
    optional content-addressed result cache in front."""

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"--jobs must be >= 1 (got {jobs})")
        self.jobs = jobs
        self.cache = cache

    def run(self, specs: Iterable[CellSpec]) -> list[EngineResult]:
        """Results in submission order (the common calling convention)."""
        return [o.result for o in self.run_outcomes(specs)]

    def run_outcomes(self, specs: Iterable[CellSpec]) -> list[CellOutcome]:
        specs = list(specs)
        outcomes: list[CellOutcome | None] = [None] * len(specs)
        misses: list[int] = []
        for i, spec in enumerate(specs):
            if self.cache is not None:
                result = self.cache.get(spec)
                if result is not None:
                    outcomes[i] = CellOutcome(spec, result, True, 0.0)
                    continue
            misses.append(i)
        if misses:
            if self.jobs == 1:
                for i in misses:
                    result = specs[i].execute()
                    outcomes[i] = CellOutcome(specs[i], result, False, _self_rss_mb())
            else:
                self._run_pooled(specs, misses, outcomes)
            if self.cache is not None:
                for i in misses:
                    outcome = outcomes[i]
                    assert outcome is not None
                    self.cache.put(specs[i], outcome.result)
        done = [o for o in outcomes if o is not None]
        assert len(done) == len(specs)
        return done

    def _run_pooled(
        self,
        specs: Sequence[CellSpec],
        misses: Sequence[int],
        outcomes: list[CellOutcome | None],
    ) -> None:
        workers = min(self.jobs, len(misses))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_cell_worker, specs[i]) for i in misses]
            # Collect positionally, not as-completed: submission order is
            # the determinism contract, and a deterministic failure order
            # (the first failing cell by submission index) falls out free.
            for i, future in zip(misses, futures, strict=True):
                payload = future.result()
                if payload[0] == "err":
                    _, exc_type, message, tb = payload
                    raise CellExecutionError(specs[i], exc_type, message, tb)
                _, result, rss_mb = payload
                outcomes[i] = CellOutcome(specs[i], result, False, rss_mb)
