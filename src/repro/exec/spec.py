"""Picklable description of one independent simulation cell.

A :class:`CellSpec` is the unit the parallel executor fans out and the
result cache keys on: everything that determines a simulation's output —
engine kind, model, cluster, parallelism config, scheduler options,
workload, seed — captured as frozen dataclasses that pickle cleanly into
a worker process and serialize canonically into a cache key.

Two constraints shape the design:

- **Purity.** A spec must be a pure value: the process-local hooks an
  :class:`~repro.engines.base.EngineOptions` can carry (telemetry hub,
  tracer, sanitizer, schedule trace) are rejected at construction — they
  observe one process's run and cannot be merged back from a worker, let
  alone replayed from a cache entry.
- **Canonical form.** ``canonical_json()`` walks the nested frozen
  dataclasses into sorted-key JSON with enums by name and arrival times
  in ``float.hex()`` (decimal round-tripping would alias distinct
  workloads). The workload body is folded into a sha256 digest so a
  million-request spec still canonicalizes in milliseconds and keys
  stay O(1) in size.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass, replace
from enum import Enum
from functools import cached_property

from repro.engines.base import EngineOptions
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.runtime.metrics import EngineResult
from repro.utils.rng import make_rng, spawn_rng
from repro.workloads.spec import WorkloadSpec

#: Engine kinds a spec can name, mapped from the engines' ``name`` attrs.
ENGINE_KINDS = ("vllm", "decode-prio", "seesaw", "disagg")


def _canonical_value(value: object) -> object:
    """Recursively reduce a spec field to canonical JSON-compatible form."""
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical_value(getattr(value, f.name))
            for f in fields(value)
        }
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, float):
        # float.hex() round-trips exactly; repr() does too on CPython but
        # hex is unambiguous about it.
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise ConfigurationError(
        f"cannot canonicalize spec field of type {type(value).__name__}: "
        "cell specs must be pure values"
    )


def _workload_digest(workload: WorkloadSpec) -> dict:
    """The workload's canonical form: name, count, and a sha256 over the
    packed request lines (arrival times in hex — bit-exact)."""
    h = hashlib.sha256()
    for r in workload.requests:
        h.update(
            f"{r.request_id}:{r.prompt_len}:{r.output_len}:"
            f"{r.arrival_time.hex()}\n".encode()
        )
    return {
        "name": workload.name,
        "num_requests": workload.num_requests,
        "sha256": h.hexdigest(),
    }


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation cell, picklable and canonically keyed.

    Attributes:
        engine: One of :data:`ENGINE_KINDS`.
        model: Inline model config (inline, not a registry name, so the
            goldens' unregistered tiny model and what-if overrides key
            correctly).
        cluster: Inline cluster spec.
        config: Parallelism label — a static label (``"T4P2"``) for
            vllm/decode-prio, a transition (``"P8->T4P2"``) for seesaw,
            or ``"<prefill>|<decode>"`` (``"T2|T2"``) for disagg.
        options: Scheduler options. Must carry no process-local hooks
            (telemetry/tracing/sanitize/trace); seesaw cells must pass a
            :class:`~repro.core.options.SeesawOptions`.
        workload: Inline workload (arrival stamps included).
        seed: Cell seed. Feeds :func:`~repro.utils.rng.spawn_rng` child
            derivation for stochastic knobs left unseeded (po2 routing),
            making them a pure function of the spec — identical inline,
            in a worker, or from cache.
    """

    engine: str
    model: ModelConfig
    cluster: ClusterSpec
    config: str
    options: EngineOptions
    workload: WorkloadSpec
    seed: int = 0

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_KINDS:
            raise ConfigurationError(
                f"unknown engine kind {self.engine!r}; one of {ENGINE_KINDS}"
            )
        for hook in ("telemetry", "tracing", "sanitize"):
            if getattr(self.options, hook) is not None:
                raise ConfigurationError(
                    f"cell specs must be pure values: options.{hook} is a "
                    "process-local hook that cannot cross a worker boundary "
                    "or be replayed from a cache entry — run hooked cells "
                    "inline (--jobs 1, no --cache)"
                )
        if self.options.trace:
            raise ConfigurationError(
                "cell specs must be pure values: options.trace records a "
                "process-local schedule timeline — run traced cells inline"
            )
        if self.engine == "seesaw":
            if "->" not in self.config:
                raise ConfigurationError(
                    f"seesaw cells need a transition config like 'P8->T4P2', "
                    f"got {self.config!r}"
                )
            from repro.core.options import SeesawOptions

            if not isinstance(self.options, SeesawOptions):
                raise ConfigurationError(
                    "seesaw cells need SeesawOptions (the transition knobs "
                    "are part of the cell's identity)"
                )
        elif self.engine == "disagg":
            if self.config.count("|") != 1:
                raise ConfigurationError(
                    f"disagg cells need a '<prefill>|<decode>' config like "
                    f"'T2|T2', got {self.config!r}"
                )
        elif "->" in self.config or "|" in self.config:
            raise ConfigurationError(
                f"{self.engine} cells take a static config label, got "
                f"{self.config!r}"
            )

    # ------------------------------------------------------------------ #
    # Canonical serialization
    # ------------------------------------------------------------------ #

    def canonical_dict(self) -> dict:
        return {
            "schema": "repro-cell-v1",
            "engine": self.engine,
            "model": _canonical_value(self.model),
            "cluster": _canonical_value(self.cluster),
            "config": self.config,
            "options": {
                # Class name disambiguates EngineOptions vs SeesawOptions
                # (a SeesawOptions carries extra transition knobs).
                "class": type(self.options).__name__,
                **_canonical_value(self.options),
            },
            "workload": _workload_digest(self.workload),
            "seed": self.seed,
        }

    @cached_property
    def _canonical_json(self) -> str:
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    def canonical_json(self) -> str:
        """Sorted-key compact JSON — the cache-key preimage."""
        return self._canonical_json

    @cached_property
    def cell_key(self) -> str:
        """Content hash of the canonical form (code salt not included —
        the cache folds that in so a spec's identity survives releases)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable identity for error messages and logs."""
        return (
            f"{self.engine} {self.config} on {self.model.name} / "
            f"{self.cluster.num_gpus}x{self.cluster.gpu.name} x "
            f"{self.workload.name} ({self.workload.num_requests} reqs, "
            f"seed {self.seed})"
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _resolved_options(self) -> EngineOptions:
        """Options with spec-derived child seeds filled in.

        A po2 router left unseeded would fall back to the process-default
        RNG seed; deriving it from (cell seed, cell key) via ``spawn_rng``
        keeps it deterministic *and* decorrelated across the cells of a
        sweep, identically at ``--jobs 1`` and ``--jobs N``.
        """
        opts = self.options
        if opts.router == "po2" and opts.router_seed is None:
            child = spawn_rng(make_rng(self.seed), self.cell_key)
            opts = replace(opts, router_seed=int(child.integers(0, 2**31)))
        return opts

    def build_engine(self):
        """Construct the engine this spec describes (imports are local —
        spec construction must stay light for cache-only lookups)."""
        from repro.parallel.config import parse_config, parse_transition

        options = self._resolved_options()
        if self.engine == "vllm":
            from repro.engines.vllm_like import VllmLikeEngine

            return VllmLikeEngine(
                self.model, self.cluster, parse_config(self.config), options
            )
        if self.engine == "decode-prio":
            from repro.engines.decode_prioritized import DecodePrioritizedEngine

            return DecodePrioritizedEngine(
                self.model, self.cluster, parse_config(self.config), options
            )
        if self.engine == "seesaw":
            from repro.core.engine import SeesawEngine

            cp, cd = parse_transition(self.config)
            return SeesawEngine(self.model, self.cluster, cp, cd, options)
        from repro.engines.disaggregated import (
            DisaggregatedEngine,
            DisaggregationPlan,
        )

        prefill_label, decode_label = self.config.split("|")
        plan = DisaggregationPlan(
            prefill_config=parse_config(prefill_label),
            decode_config=parse_config(decode_label),
        )
        return DisaggregatedEngine(self.model, self.cluster, plan, options)

    def execute(self) -> EngineResult:
        """Build and run the cell in this process."""
        return self.build_engine().run(self.workload)
