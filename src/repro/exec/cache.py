"""Content-addressed on-disk cache of simulation results.

Entries are keyed by ``sha256(canonical CellSpec JSON + code salt)``: the
spec half makes the key a pure function of everything that determines the
output (model, cluster, config, options, workload bytes, seed), and the
salt half — a digest over the installed ``repro`` package's source —
invalidates every entry the moment any simulator code changes, so a
cached result can never silently disagree with what the current tree
would compute. Entries for stale salts are left on disk (cheap, and a
checkout switching branches gets its old entries back); ``clear()``
removes all generations.

Writes are atomic (tmp file + ``os.replace``) so a crashed or concurrent
writer can never leave a half-written entry behind, and reads treat any
undecodable entry as a miss — the corrupt file is unlinked and the cell
simply re-simulates.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.exec.spec import CellSpec
from repro.runtime.metrics import EngineResult

CACHE_SCHEMA = "repro-cache-v1"

#: Default cache root (``--cache-dir`` overrides).
DEFAULT_CACHE_ROOT = "~/.cache/repro"

_salt_cache: str | None = None


def code_salt() -> str:
    """Digest of the installed ``repro`` package source (module-cached).

    Hashes every ``*.py`` under the package in sorted relative-path order
    — any source change, anywhere in the simulator, flips the salt and
    with it every cache key.
    """
    global _salt_cache
    if _salt_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _salt_cache = h.hexdigest()[:16]
    return _salt_cache


@dataclass(frozen=True)
class CacheStats:
    """What ``repro cache stats`` reports."""

    root: str
    salt: str
    generations: int
    entries: int
    current_entries: int
    total_bytes: int


class ResultCache:
    """Content-addressed :class:`EngineResult` store under one root.

    Layout: ``<root>/<salt>/<key>.pkl`` — one directory per code
    generation, one pickle per cell. Hit/miss counters accumulate per
    instance so callers can report cache effectiveness for a run.
    """

    def __init__(self, root: str | os.PathLike | None = None, salt: str | None = None):
        base = DEFAULT_CACHE_ROOT if root is None else root
        self.root = Path(base).expanduser()
        self.salt = code_salt() if salt is None else salt
        self.hits = 0
        self.misses = 0

    def key_for(self, spec: CellSpec) -> str:
        payload = spec.canonical_json() + "\n" + self.salt
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, spec: CellSpec) -> Path:
        return self.root / self.salt / f"{self.key_for(spec)}.pkl"

    def get(self, spec: CellSpec) -> EngineResult | None:
        """The cached result for ``spec``, or ``None`` on a miss. A
        corrupted entry (truncated pickle, schema drift, wrong payload
        type) is unlinked and reported as a miss."""
        path = self.path_for(spec)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = pickle.loads(raw)
            if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"unrecognized cache payload in {path.name}")
            result = payload["result"]
            if not isinstance(result, EngineResult):
                raise ValueError(f"cache entry {path.name} holds no EngineResult")
        except Exception:
            # Recover by re-simulating: a cache must never be able to
            # fail a run that would succeed without it.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: CellSpec, result: EngineResult) -> None:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": path.stem,
            "spec": spec.canonical_json(),
            "result": result,
        }
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # Management (repro cache {stats,clear})
    # ------------------------------------------------------------------ #

    def stats(self) -> CacheStats:
        generations = 0
        entries = 0
        current = 0
        total = 0
        if self.root.is_dir():
            for gen_dir in sorted(self.root.iterdir()):
                if not gen_dir.is_dir():
                    continue
                pickles = list(gen_dir.glob("*.pkl"))
                if not pickles and gen_dir.name != self.salt:
                    continue
                generations += 1
                entries += len(pickles)
                total += sum(p.stat().st_size for p in pickles)
                if gen_dir.name == self.salt:
                    current += len(pickles)
        return CacheStats(
            root=str(self.root),
            salt=self.salt,
            generations=generations,
            entries=entries,
            current_entries=current,
            total_bytes=total,
        )

    def clear(self) -> int:
        """Remove every entry across all code generations; returns the
        number of entries removed. Only cache-shaped files are touched —
        the root itself and anything unrecognized are left alone."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for gen_dir in sorted(self.root.iterdir()):
            if not gen_dir.is_dir():
                continue
            for path in gen_dir.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
            try:
                gen_dir.rmdir()  # only succeeds when empty
            except OSError:
                pass
        return removed
