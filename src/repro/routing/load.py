"""Per-replica load tracking for the online router.

The router makes its dispatch decision at each request's arrival time,
*before* the replica simulations run, so it needs its own model of how
loaded every replica is at that instant. :class:`ReplicaLoad` keeps that
model: a serial FIFO of dispatched requests, each annotated with predicted
start / prefill-completion / finish times derived from the replica's
service-rate estimates (:class:`RouterContext`). Advancing the virtual
clock retires finished entries; the queued/outstanding token views the
policies rank replicas by are prorated against those windows.

The model is deliberately first-order — one replica serves one request at
a time at its steady-state token rates — which is exactly the fidelity a
dispatcher in front of N black-box engines has. The engine simulations
behind it remain the source of truth for what the dispatch *cost*.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.request import Request

# Admission epsilon shared with the engines' arrival gating.
_EPS = 1e-12


@dataclass(frozen=True)
class RouterContext:
    """Service-rate estimates the load model drains against.

    Attributes:
        prefill_tokens_per_s: Steady-state prefill token rate of one
            replica. ``None`` disables draining — dispatched work then
            accumulates forever and load comparisons degrade to cumulative
            token balance.
        decode_tokens_per_s: Steady-state decode token rate of one
            replica; ``math.inf`` models a pool that hands decode work off
            (the disaggregated prefill pool). ``None`` disables draining.
        kv_capacity_tokens: One replica's KV capacity. When set, a
            dispatch that would push the predicted resident KV past it
            counts as a predicted preemption — the storm signal the router
            rebalances on. ``None`` disables storm detection.
        ttft_slo: TTFT bound (seconds) the ``slo`` dispatch policy routes
            against; ``None`` degrades that policy to least-predicted-TTFT.
        tpot_slo: TPOT bound (seconds/token), carried for symmetry — it
            does not differentiate replicas of one homogeneous group but
            lets heterogeneous routers (and reports) see the target.
    """

    prefill_tokens_per_s: float | None = None
    decode_tokens_per_s: float | None = None
    kv_capacity_tokens: int | None = None
    ttft_slo: float | None = None
    tpot_slo: float | None = None

    def __post_init__(self) -> None:
        for name, rate in (
            ("prefill_tokens_per_s", self.prefill_tokens_per_s),
            ("decode_tokens_per_s", self.decode_tokens_per_s),
            ("ttft_slo", self.ttft_slo),
            ("tpot_slo", self.tpot_slo),
        ):
            if rate is not None and rate <= 0:
                raise ConfigurationError(f"{name} must be positive")


def _duration(tokens: int, rate: float | None) -> float:
    """Predicted seconds to process ``tokens`` at ``rate`` tokens/s."""
    if tokens <= 0:
        return 0.0
    if rate is None:
        return math.inf
    return tokens / rate


def _remaining(tokens: int, start: float, end: float, now: float) -> float:
    """Tokens of a [start, end] processing window still ahead of ``now``,
    prorated linearly (the whole amount while the window has not opened,
    zero once it has closed)."""
    if tokens <= 0 or now >= end:
        return 0.0
    if now <= start or math.isinf(end):
        return float(tokens)
    return tokens * (end - now) / (end - start)


@dataclass(frozen=True)
class DispatchRecord:
    """One dispatched request with its predicted processing windows."""

    index: int  # submission index within the routed request list
    request: Request
    start: float  # predicted service start (end of queueing)
    prefill_done: float  # predicted prefill completion
    finish: float  # predicted last-token time

    def started_by(self, now: float) -> bool:
        return self.start <= now + _EPS

    def finished_by(self, now: float) -> bool:
        return self.finish <= now + _EPS


class ReplicaLoad:
    """Mutable load ledger of one replica, maintained by the router."""

    def __init__(self, replica_id: int, context: RouterContext) -> None:
        self.replica_id = replica_id
        self.context = context
        self.records: deque[DispatchRecord] = deque()
        self.clock = 0.0
        self.busy_until = 0.0
        # Dispatch accounting (survives record retirement; adjusted when a
        # rebalance steals queued work back).
        self.num_dispatched = 0
        self.dispatched_prompt_tokens = 0
        self.dispatched_tokens = 0
        self.peak_queued_prefill_tokens = 0.0
        self.predicted_preemptions = 0  # total over the run (stats)
        self.storm_preemptions = 0  # since the last rebalance (trigger)

    # ------------------------------------------------------------------ #
    # Clock and load views
    # ------------------------------------------------------------------ #

    def advance(self, now: float) -> None:
        """Move the ledger's clock to ``now``, retiring finished entries.

        Drain is clamped to dispatched work: once the FIFO holds no
        unfinished records the replica is provably idle, so ``busy_until``
        snaps back to ``now``. Retirement tolerates an epsilon
        (``finished_by``), and without the clamp that epsilon residue
        leaves an idle replica reporting a stale positive
        ``work_seconds``/``predicted_ttft`` bias forever after.
        """
        if now < self.clock:
            now = self.clock  # simultaneous arrivals never rewind the clock
        self.clock = now
        while self.records and self.records[0].finished_by(now):
            self.records.popleft()
        if not self.records:
            self.busy_until = min(self.busy_until, now)

    def queued_prefill_tokens(self, now: float | None = None) -> float:
        """Prompt tokens dispatched here but not yet prefilled (JSQ's
        queue-length metric). ``_remaining`` bounds each record's share to
        ``[0, tokens]``, so the depth is clamped to live dispatched work
        by construction."""
        now = self.clock if now is None else now
        return sum(
            _remaining(rec.request.prompt_len, rec.start, rec.prefill_done, now)
            for rec in self.records
        )

    def outstanding_tokens(self, now: float | None = None) -> float:
        """Unprefilled prompt tokens plus predicted undecoded tokens (the
        least-work metric); bounded like :meth:`queued_prefill_tokens`."""
        now = self.clock if now is None else now
        total = 0.0
        for rec in self.records:
            total += _remaining(rec.request.prompt_len, rec.start, rec.prefill_done, now)
            total += _remaining(
                rec.request.output_len - 1, rec.prefill_done, rec.finish, now
            )
        return total

    def resident_kv_tokens(self, now: float | None = None) -> int:
        """Predicted KV tokens resident on the replica: the final context
        length of every request in service (reservation-style accounting,
        matching how admission pressure builds in the engines)."""
        now = self.clock if now is None else now
        return sum(
            rec.request.total_tokens
            for rec in self.records
            if rec.started_by(now) and not rec.finished_by(now)
        )

    def work_seconds(self, now: float | None = None) -> float:
        """Predicted seconds until this replica drains its queue."""
        now = self.clock if now is None else now
        return max(0.0, self.busy_until - now)

    def predicted_ttft(self, request: Request, now: float | None = None) -> float:
        """Predicted TTFT of dispatching ``request`` here at ``now``:
        queue drain (the serial FIFO ahead of it) plus its own prefill."""
        now = self.clock if now is None else now
        return self.work_seconds(now) + _duration(
            request.prompt_len, self.context.prefill_tokens_per_s
        )

    def would_preempt(self, request: Request, now: float | None = None) -> bool:
        """Whether dispatching ``request`` here is predicted to push the
        resident KV past capacity (always False without a capacity)."""
        cap = self.context.kv_capacity_tokens
        if cap is None:
            return False
        now = self.clock if now is None else now
        return self.resident_kv_tokens(now) + request.total_tokens > cap

    # ------------------------------------------------------------------ #
    # Dispatch and rebalance
    # ------------------------------------------------------------------ #

    def dispatch(self, index: int, request: Request, now: float) -> DispatchRecord:
        """Assign ``request`` to this replica at ``now``; returns the
        predicted-schedule record appended to the ledger."""
        ctx = self.context
        start = max(now, self.busy_until)
        prefill_done = start + _duration(request.prompt_len, ctx.prefill_tokens_per_s)
        finish = prefill_done + _duration(
            request.output_len - 1, ctx.decode_tokens_per_s
        )
        if ctx.kv_capacity_tokens is not None:
            resident = self.resident_kv_tokens(now) + request.total_tokens
            if resident > ctx.kv_capacity_tokens:
                self.predicted_preemptions += 1
                self.storm_preemptions += 1
        rec = DispatchRecord(
            index=index,
            request=request,
            start=start,
            prefill_done=prefill_done,
            finish=finish,
        )
        self.records.append(rec)
        self.busy_until = finish
        self.num_dispatched += 1
        self.dispatched_prompt_tokens += request.prompt_len
        self.dispatched_tokens += request.total_tokens
        self.peak_queued_prefill_tokens = max(
            self.peak_queued_prefill_tokens, self.queued_prefill_tokens(now)
        )
        return rec

    def steal_queued(self, now: float) -> list[DispatchRecord]:
        """Remove and return every dispatched-but-unstarted entry (the
        still-pending requests a storm rebalance re-routes elsewhere).
        Resets the storm counter when anything was stolen."""
        kept = [rec for rec in self.records if rec.started_by(now)]
        stolen = [rec for rec in self.records if not rec.started_by(now)]
        if not stolen:
            return []
        self.records = deque(kept)
        self.busy_until = kept[-1].finish if kept else now
        for rec in stolen:
            self.num_dispatched -= 1
            self.dispatched_prompt_tokens -= rec.request.prompt_len
            self.dispatched_tokens -= rec.request.total_tokens
        self.storm_preemptions = 0
        return stolen
