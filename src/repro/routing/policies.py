"""Dispatch policies: how the router picks a replica for each arrival.

All policies share the same event loop (:meth:`Router.route`): requests
are visited in arrival order, every replica's load ledger is advanced to
the arrival instant, the policy selects a replica, and — for the dynamic
policies — replicas whose predicted-preemption counter crossed the storm
threshold have their still-pending requests re-routed to the least-loaded
survivors. The policies differ only in :meth:`Router.select`:

- ``static``   — round-robin by submission index; bit-exact with the
  seed's t=0 ``split_requests`` deal, and therefore the default (golden
  offline numbers are preserved). Never rebalances.
- ``jsq``      — join the shortest queue, measured in queued (not yet
  prefilled) prompt tokens.
- ``least-work`` — smallest outstanding work: queued prefill tokens plus
  predicted undecoded tokens, both drained against the cost-model rates.
- ``po2``      — power-of-two-choices: sample two distinct replicas with
  a seeded generator, join the shorter queue. The classic trick that
  captures most of JSQ's benefit with O(1) load probes.
- ``slo``      — SLO-aware dispatch: route to the replica with the best
  predicted attainment for *this* request — replicas predicted to
  preempt are penalized first, then replicas whose predicted TTFT
  (queue drain + prefill) misses the context's TTFT SLO, then the
  predicted TTFT itself. Without an SLO in the context it degrades to
  least-predicted-TTFT. Fully deterministic (ties break by replica id).
"""

from __future__ import annotations

import abc
from typing import Sequence as TypingSequence

from repro.errors import ConfigurationError, SimulationError
from repro.routing.load import ReplicaLoad, RouterContext
from repro.routing.stats import RouterStats, RoutingPlan
from repro.runtime.request import Request
from repro.utils.rng import make_rng

ROUTER_POLICIES = ("static", "jsq", "least-work", "po2", "slo")

# Predicted preemptions on one replica (since its last rebalance) that
# mark it as undergoing a preemption storm.
DEFAULT_STORM_PREEMPTIONS = 3


class Router(abc.ABC):
    """Shared routing loop; subclasses implement :meth:`select`."""

    name: str = "base"
    #: Dynamic policies re-route pending work away from storming replicas;
    #: the static deal must stay bit-exact with the seed, so it opts out.
    rebalance_on_storm: bool = True

    def __init__(
        self,
        num_replicas: int,
        context: RouterContext | None = None,
        seed: int | None = None,
        storm_preemptions: int = DEFAULT_STORM_PREEMPTIONS,
    ) -> None:
        if num_replicas < 1:
            raise ConfigurationError("router needs at least one replica")
        if storm_preemptions < 1:
            raise ConfigurationError("storm_preemptions must be >= 1")
        self.num_replicas = num_replicas
        self.context = context if context is not None else RouterContext()
        self.seed = seed
        self.storm_preemptions = storm_preemptions
        self.loads = [ReplicaLoad(i, self.context) for i in range(num_replicas)]

    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def select(self, request: Request, index: int, now: float) -> int:
        """Replica id for ``request`` (submission index ``index``) arriving
        at ``now``; loads have already been advanced to ``now``.

        Policies rank ``self.loads`` — the *current membership view* — and
        return the chosen entry's ``replica_id``. On the decoupled path the
        view is the fixed replica list; the event-coupled simulator swaps
        in the live dispatchable membership before every call (an elastic
        fleet grows and shrinks it), so implementations must size-index
        against ``len(self.loads)``, never ``self.num_replicas``.
        """

    def route(self, requests: TypingSequence[Request]) -> RoutingPlan:
        """Dispatch every request at its arrival time; returns the plan."""
        reqs = list(requests)
        if not reqs:
            raise ConfigurationError("cannot route an empty request list")
        # Arrival order with submission order breaking ties — the same
        # convention the replica schedulers use.
        order = sorted(range(len(reqs)), key=lambda i: (reqs[i].arrival_time, i))
        assignments = [0] * len(reqs)
        rebalanced = 0
        rebalances = 0
        for i in order:
            req = reqs[i]
            now = req.arrival_time
            for load in self.loads:
                load.advance(now)
            rid = self.select(req, i, now)
            if not 0 <= rid < self.num_replicas:
                raise SimulationError(
                    f"{self.name} selected replica {rid} of {self.num_replicas}"
                )
            # Decoupled membership is fixed, so ids and positions coincide.
            self.loads[rid].dispatch(i, req, now)
            assignments[i] = rid
            if self.rebalance_on_storm and self.num_replicas > 1:
                moved = self._rebalance_storms(now, assignments)
                if moved:
                    rebalanced += moved
                    rebalances += 1
        partitions = tuple(
            tuple(reqs[i] for i in range(len(reqs)) if assignments[i] == rid)
            for rid in range(self.num_replicas)
        )
        return RoutingPlan(
            assignments=tuple(assignments),
            partitions=partitions,
            stats=self._stats(rebalanced, rebalances),
        )

    # ------------------------------------------------------------------ #
    # Storm rebalancing
    # ------------------------------------------------------------------ #

    def _rebalance_storms(self, now: float, assignments: list[int]) -> int:
        """Re-route still-pending requests away from storming replicas.

        A replica whose predicted-preemption counter reached the storm
        threshold has every dispatched-but-unstarted request stolen back
        and re-dispatched to the least-loaded *calm* replica. Requiring a
        calm target keeps two storming replicas from bouncing the same
        requests back and forth within one pass (and from double-counting
        them in the rebalance stats); when every other replica is storming
        too there is nowhere better, so the work stays put.
        """
        # Snapshot who is storming before moving anything: stealing resets
        # the source's counter and dispatching can push a target over the
        # threshold, and neither may change who gives or receives mid-pass.
        storming = [
            load
            for load in self.loads
            if load.storm_preemptions >= self.storm_preemptions
        ]
        calm = [load for load in self.loads if load not in storming]
        if not calm:
            return 0
        moved = 0
        for load in storming:
            for rec in load.steal_queued(now):
                target = min(
                    calm,
                    key=lambda l: (l.outstanding_tokens(now), l.replica_id),
                )
                target.dispatch(rec.index, rec.request, now)
                assignments[rec.index] = target.replica_id
                moved += 1
        return moved

    def _stats(self, rebalanced: int, rebalances: int) -> RouterStats:
        return RouterStats(
            policy=self.name,
            num_replicas=self.num_replicas,
            requests_per_replica=tuple(l.num_dispatched for l in self.loads),
            tokens_per_replica=tuple(l.dispatched_tokens for l in self.loads),
            peak_queued_prefill_tokens=tuple(
                l.peak_queued_prefill_tokens for l in self.loads
            ),
            predicted_preemptions=tuple(
                l.predicted_preemptions for l in self.loads
            ),
            rebalanced_requests=rebalanced,
            rebalances=rebalances,
        )


class StaticRouter(Router):
    """The seed's round-robin-by-index deal, expressed as a policy.

    Partition membership is a pure function of the submission index, so
    offline workloads reproduce ``split_requests`` — and the pinned golden
    numbers — bit-exactly. Load is still tracked for reporting.
    """

    name = "static"
    rebalance_on_storm = False

    def select(self, request: Request, index: int, now: float) -> int:
        # Round-robin over the current membership view: with a fixed fleet
        # this is exactly ``index % num_replicas`` (the seed deal); under
        # elastic membership the deal rotates over whoever is active.
        return self.loads[index % len(self.loads)].replica_id


class JSQRouter(Router):
    """Join-shortest-queue by queued (not yet prefilled) prompt tokens."""

    name = "jsq"

    def select(self, request: Request, index: int, now: float) -> int:
        return min(
            self.loads,
            key=lambda load: (load.queued_prefill_tokens(now), load.replica_id),
        ).replica_id


class LeastWorkRouter(Router):
    """Smallest outstanding work: queued prefill plus predicted decode
    tokens, drained against the cost-model service rates."""

    name = "least-work"

    def select(self, request: Request, index: int, now: float) -> int:
        return min(
            self.loads,
            key=lambda load: (load.outstanding_tokens(now), load.replica_id),
        ).replica_id


class Po2Router(Router):
    """Power-of-two-choices: probe two random replicas, join the shorter
    prefill queue. Deterministic per seed."""

    name = "po2"

    def __init__(
        self,
        num_replicas: int,
        context: RouterContext | None = None,
        seed: int | None = None,
        storm_preemptions: int = DEFAULT_STORM_PREEMPTIONS,
    ) -> None:
        super().__init__(num_replicas, context, seed, storm_preemptions)
        self.rng = make_rng(seed)

    def select(self, request: Request, index: int, now: float) -> int:
        n = len(self.loads)
        if n == 1:
            return self.loads[0].replica_id
        a, b = (int(x) for x in self.rng.choice(n, size=2, replace=False))
        return min(
            (self.loads[a], self.loads[b]),
            key=lambda load: (load.queued_prefill_tokens(now), load.replica_id),
        ).replica_id


class SLORouter(Router):
    """SLO-aware dispatch: best predicted attainment for each arrival.

    The per-replica key is lexicographic — (predicted preemption, predicted
    TTFT-SLO miss, predicted TTFT, replica id) — so a replica that would
    thrash its KV cache loses to any that would not, an SLO-missing replica
    loses to any predicted to meet it, and within a class the soonest first
    token wins. With no TTFT SLO in the context the miss term is constant
    and the policy is pure least-predicted-TTFT.
    """

    name = "slo"

    def select(self, request: Request, index: int, now: float) -> int:
        ttft_slo = self.context.ttft_slo

        def key(load: ReplicaLoad) -> tuple[bool, bool, float, int]:
            ttft = load.predicted_ttft(request, now)
            miss = ttft_slo is not None and ttft > ttft_slo
            return (load.would_preempt(request, now), miss, ttft, load.replica_id)

        return min(self.loads, key=key).replica_id


_POLICY_CLASSES: dict[str, type[Router]] = {
    cls.name: cls
    for cls in (StaticRouter, JSQRouter, LeastWorkRouter, Po2Router, SLORouter)
}
assert tuple(_POLICY_CLASSES) == ROUTER_POLICIES


def make_router(
    policy: str,
    num_replicas: int,
    *,
    context: RouterContext | None = None,
    seed: int | None = None,
    storm_preemptions: int = DEFAULT_STORM_PREEMPTIONS,
) -> Router:
    """Instantiate a routing policy by CLI name."""
    cls = _POLICY_CLASSES.get(policy)
    if cls is None:
        raise ConfigurationError(
            f"unknown router policy {policy!r}; one of {ROUTER_POLICIES}"
        )
    return cls(
        num_replicas,
        context=context,
        seed=seed,
        storm_preemptions=storm_preemptions,
    )
