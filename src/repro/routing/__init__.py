"""Cluster-level request routing across data-parallel replicas.

The seed partitioned requests across DP replicas once, at t=0, with a
round-robin deal (:func:`repro.engines.base.split_requests`) — fine for
offline throughput runs, but an online cluster dispatches each request
*when it arrives*, against the load its replicas carry at that instant.
This subsystem provides that dispatch layer:

- :class:`~repro.routing.load.ReplicaLoad` — the router's per-replica
  load ledger: a FIFO of dispatched-but-unfinished requests drained
  against service-rate estimates, with queued/running token views and a
  predicted-preemption counter.
- :class:`~repro.routing.policies.Router` and its policies — ``static``
  (round-robin by submission index, bit-exact with the seed's
  ``split_requests``), ``jsq`` (join-shortest-queue by queued prefill
  tokens), ``least-work`` (outstanding prefill plus predicted decode
  tokens), ``po2`` (power-of-two-choices sampling, seeded), and ``slo``
  (best predicted attainment: penalize predicted preemptions, then
  predicted TTFT-SLO misses, then predicted TTFT).
- :class:`~repro.routing.stats.RouterStats` — dispatch counts, token
  totals, peak queue depths and imbalance ratios, carried through
  :class:`~repro.runtime.metrics.EngineResult`.

Every engine routes through this layer (``EngineOptions.router``); the
default ``static`` policy preserves the seed's golden offline numbers
bit-exactly.
"""

from repro.routing.load import DispatchRecord, ReplicaLoad, RouterContext
from repro.routing.policies import (
    DEFAULT_STORM_PREEMPTIONS,
    JSQRouter,
    LeastWorkRouter,
    Po2Router,
    ROUTER_POLICIES,
    Router,
    SLORouter,
    StaticRouter,
    make_router,
)
from repro.routing.stats import RouterStats, RoutingPlan

__all__ = [
    "DEFAULT_STORM_PREEMPTIONS",
    "DispatchRecord",
    "JSQRouter",
    "LeastWorkRouter",
    "Po2Router",
    "ROUTER_POLICIES",
    "ReplicaLoad",
    "Router",
    "RouterContext",
    "RouterStats",
    "RoutingPlan",
    "SLORouter",
    "StaticRouter",
    "make_router",
]
