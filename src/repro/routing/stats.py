"""Router dispatch statistics, carried through :class:`EngineResult`.

:class:`RouterStats` is the cluster-level complement to the per-replica
run metrics: how the router spread requests and tokens, how deep each
replica's predicted prefill queue got, and how often the storm rebalancer
moved pending work. The load-imbalance ratios here are what the report
tables surface (max/mean = 1.0 is a perfectly balanced cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.request import Request


def _max_over_mean(values: tuple[float, ...] | tuple[int, ...]) -> float:
    """Max/mean imbalance ratio; 1.0 for an empty or all-zero vector."""
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean <= 0:
        return 1.0
    return max(values) / mean


@dataclass(frozen=True)
class FleetEvent:
    """One replica-membership change on the cluster's shared clock."""

    time: float
    kind: str  # "scale-up" | "active" | "scale-down" | "stopped"
    replica_id: int
    active_dp: int  # active replica count right after the event
    # Human-readable cause: for scale actions, the autoscaler's recorded
    # decision (triggering signal, window values, chosen target); for
    # lifecycle completions, what finished.
    reason: str = ""


@dataclass(frozen=True)
class FleetStats:
    """Lifecycle summary of an elastic replica fleet.

    Attached to :class:`RouterStats` by the event-coupled simulator when
    the run was served by a :class:`~repro.cluster.fleet.ReplicaFleet`.
    ``replica_seconds`` bills each replica from provisioning start to its
    stop (or the cluster makespan while it stays up) — the quantity an
    autoscaler exists to shrink; ``active_replica_seconds`` counts each
    replica's serving window (activation to stop: dispatchable time plus
    any draining tail, whose GPUs are still busy finishing in-flight
    work), so ``mean_dp``/``peak_dp`` are the time-weighted and peak
    serving replica counts over the run.
    """

    autoscaler: str
    min_dp: int
    max_dp: int
    num_handles: int  # replicas that ever existed (any lifecycle state)
    peak_dp: int  # max simultaneously active replicas
    mean_dp: float  # time-weighted active replicas over the makespan
    replica_seconds: float  # billed: provision start -> stop/makespan
    active_replica_seconds: float
    provision_seconds: float  # total time spent provisioning + warming
    scale_ups: int
    scale_downs: int
    events: tuple[FleetEvent, ...] = ()

    @property
    def scale_events(self) -> int:
        return self.scale_ups + self.scale_downs

    def describe(self) -> str:
        return (
            f"{self.autoscaler}: dp peak {self.peak_dp} mean {self.mean_dp:.2f} "
            f"| {self.scale_events} scale events (+{self.scale_ups}/-"
            f"{self.scale_downs}) | {self.replica_seconds:.1f} replica-s"
        )


@dataclass(frozen=True)
class RouterStats:
    """Summary of one routing pass over a workload.

    Decoupled runs fill the predicted fields; event-coupled runs
    (``coupled=True``) additionally carry what was *measured* during the
    co-simulation: per-replica observed preemption counts, idle
    fractions (normalized by each replica's active window, not the full
    makespan — partial-lifetime replicas are not idle before they exist
    or after they stop), and how much still-pending work the storm
    re-dispatcher moved between replicas. Elastic runs also attach a
    :class:`FleetStats` lifecycle record; the per-replica vectors then
    have one entry per replica that *ever* existed.
    """

    policy: str
    num_replicas: int
    requests_per_replica: tuple[int, ...]
    tokens_per_replica: tuple[int, ...]  # prompt + output tokens dispatched
    peak_queued_prefill_tokens: tuple[float, ...]
    predicted_preemptions: tuple[int, ...]
    rebalanced_requests: int = 0
    rebalances: int = 0
    # Event-coupled extras (None / 0 on the decoupled path).
    coupled: bool = False
    observed_preemptions: tuple[int, ...] | None = None
    idle_fraction: tuple[float, ...] | None = None
    redispatched_requests: int = 0
    redispatches: int = 0
    # Elastic-fleet lifecycle record (None for fixed-membership runs).
    fleet: FleetStats | None = None

    def __post_init__(self) -> None:
        vectors = (
            self.requests_per_replica,
            self.tokens_per_replica,
            self.peak_queued_prefill_tokens,
            self.predicted_preemptions,
            self.observed_preemptions,
            self.idle_fraction,
        )
        if any(v is not None and len(v) != self.num_replicas for v in vectors):
            raise SimulationError(
                f"router stats vectors must have {self.num_replicas} entries"
            )

    @property
    def num_requests(self) -> int:
        return sum(self.requests_per_replica)

    @property
    def token_imbalance(self) -> float:
        """Max/mean dispatched tokens across replicas (1.0 = balanced)."""
        return _max_over_mean(self.tokens_per_replica)

    @property
    def request_imbalance(self) -> float:
        """Max/mean dispatched request count across replicas."""
        return _max_over_mean(self.requests_per_replica)

    @property
    def peak_queue_imbalance(self) -> float:
        """Max/mean of the per-replica peak queued-prefill-token depth —
        the metric JSQ exists to flatten."""
        return _max_over_mean(self.peak_queued_prefill_tokens)

    @property
    def max_peak_queued_tokens(self) -> float:
        return max(self.peak_queued_prefill_tokens, default=0.0)

    @property
    def mean_peak_queued_tokens(self) -> float:
        if not self.peak_queued_prefill_tokens:
            return 0.0
        return sum(self.peak_queued_prefill_tokens) / self.num_replicas

    @property
    def total_predicted_preemptions(self) -> int:
        return sum(self.predicted_preemptions)

    @property
    def total_observed_preemptions(self) -> int:
        return sum(self.observed_preemptions or ())

    @property
    def mean_idle_fraction(self) -> float:
        if not self.idle_fraction:
            return 0.0
        return sum(self.idle_fraction) / self.num_replicas

    def describe(self) -> str:
        base = (
            f"{self.policy}: {self.num_requests} reqs over "
            f"{self.num_replicas} replicas | tok-imbal "
            f"{self.token_imbalance:.2f} | peak-queue-imbal "
            f"{self.peak_queue_imbalance:.2f}"
        )
        if self.coupled:
            return (
                f"{base} | preempted {self.total_observed_preemptions} | "
                f"idle {self.mean_idle_fraction * 100:.0f}% | re-dispatched "
                f"{self.redispatched_requests}"
            )
        return f"{base} | rebalanced {self.rebalanced_requests}"


@dataclass(frozen=True)
class RoutingPlan:
    """Outcome of routing one request list: who goes where, plus stats.

    ``assignments[i]`` is the replica of the ``i``-th request *in
    submission order*; ``partitions[r]`` lists replica ``r``'s requests in
    submission order (replica schedulers re-sort by arrival anyway).
    """

    assignments: tuple[int, ...]
    partitions: tuple[tuple["Request", ...], ...]
    stats: RouterStats

    def __post_init__(self) -> None:
        if sum(len(p) for p in self.partitions) != len(self.assignments):
            raise SimulationError("routing plan lost or duplicated requests")
