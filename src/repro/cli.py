"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      — run one engine on one workload and print the summary.
- ``compare``  — vLLM-best vs Seesaw-best on a (gpu, model, dataset) cell.
- ``sweep``    — throughput of every feasible static config plus Seesaw.
- ``reproduce``— regenerate a named paper artifact (fig1, fig4, ...).
- ``predict``  — analytic rates for a configuration (no simulation).
- ``obs``      — render the telemetry dashboard from a JSONL artifact or
  a live (re-)run with telemetry enabled (``--follow`` tails a growing
  artifact).
- ``trace``    — per-request critical-path report from a repro-trace-v1
  artifact or a live run with tracing enabled.

All commands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.analysis.report import (
    comparison_table,
    fleet_table,
    latency_table,
    routing_table,
    telemetry_table,
)
from repro.autotuner.objective import OBJECTIVES, ServingObjective
from repro.cluster.autoscaler import AUTOSCALER_POLICIES
from repro.autotuner.search import (
    best_seesaw_pair,
    best_static_config,
    rank_static_configs,
    tune_chunk_size,
)
from repro.core.engine import SeesawEngine
from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError, ReproError
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.parallel.config import parse_config, parse_transition
from repro.routing import ROUTER_POLICIES
from repro.runtime.metrics import EngineResult
from repro.runtime.trace import render_timeline
from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    DIURNAL_PREFIX,
    TRACE_PREFIX,
    make_arrivals,
    offered_rate,
)
from repro.workloads.datasets import sample_dataset
from repro.workloads.synthetic import constant_workload


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="34b", help="model name or alias (default 34b)")
    parser.add_argument("--gpu", default="A10", help="GPU model (default A10)")
    parser.add_argument("--num-gpus", type=int, default=8)
    parser.add_argument(
        "--dataset",
        default="sharegpt",
        help="sharegpt | arxiv | const:<prompt>x<output>",
    )
    parser.add_argument("--num-requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--request-rate",
        type=float,
        default=0.0,
        help="offered request rate in req/s; 0 (default) runs offline "
        "with every request available at t=0",
    )
    parser.add_argument(
        "--arrival",
        type=_arrival_kind,
        default="poisson",
        help="arrival process used when --request-rate > 0 "
        f"({' | '.join(ARRIVAL_KINDS)}), {DIURNAL_PREFIX}<period-seconds> "
        "for a sinusoidal day-shape at the mean --request-rate, or "
        f"{TRACE_PREFIX}<path> to replay a JSON/CSV timestamp log (at its "
        "recorded rate, or rescaled to --request-rate when set)",
    )
    parser.add_argument(
        "--burstiness",
        type=float,
        default=None,
        help="squared coefficient of variation of bursty inter-arrival "
        "gaps (1.0 = Poisson); with --arrival bursty it defaults to 4.0, "
        f"and with --arrival {DIURNAL_PREFIX}<period> it picks the base "
        "process under the day-shape (default 1.0, Poisson gaps)",
    )
    parser.add_argument(
        "--router",
        choices=list(ROUTER_POLICIES),
        default="static",
        help="multi-replica dispatch policy (default static, the seed's "
        "round-robin t=0 deal; jsq / least-work / po2 dispatch at arrival "
        "time against tracked replica load; slo routes to the replica "
        "with the best predicted attainment)",
    )
    parser.add_argument(
        "--coupled",
        action="store_true",
        help="event-coupled cluster simulation: run all DP replicas on one "
        "shared clock and dispatch each arrival against their observed "
        "load (actual queues, measured preemptions) instead of the "
        "predicted load ledger",
    )
    parser.add_argument(
        "--autoscaler",
        default="none",
        help="elastic-fleet scaling policy on the coupled path "
        f"({' | '.join(AUTOSCALER_POLICIES)}); threshold scales on "
        "observed queue depth / idle fraction, predictive right-sizes "
        "with the serving objective's Erlang-C wait; scale-ups pay the "
        "cost-model provisioning latency (weight load + KV warmup) and "
        "scale-downs drain (default none: fixed fleet)",
    )
    parser.add_argument(
        "--fidelity",
        choices=["event", "fluid", "auto"],
        default="event",
        help="coupled-simulation fidelity: event (default) replays every "
        "iteration on the shared clock; fluid solves a calibrated "
        "mean-field model per dispatch (~100x faster, p99-TTFT within "
        "the calibrated tolerance, no preemption storms); auto picks "
        "fluid above a work-volume threshold",
    )
    parser.add_argument(
        "--min-dp",
        type=int,
        default=None,
        help="floor on the autoscaled replica count (default 1)",
    )
    parser.add_argument(
        "--max-dp",
        type=int,
        default=None,
        help="ceiling on the autoscaled replica count (default: as many "
        "replicas as the cluster's GPUs can hold)",
    )
    parser.add_argument(
        "--ttft-slo",
        type=float,
        default=None,
        help="TTFT service-level objective in seconds; enables the SLO "
        "attainment column and feeds SLO-aware tuning/routing",
    )
    parser.add_argument(
        "--tpot-slo",
        type=float,
        default=None,
        help="TPOT service-level objective in seconds per output token "
        "(e.g. 0.1 = 100 ms/token)",
    )
    parser.add_argument(
        "--objective",
        choices=list(OBJECTIVES),
        default="throughput",
        help="autotuner ranking target: throughput (default, the paper's "
        "offline metric) or slo (SLO-constrained goodput at the offered "
        "--request-rate, with simulated re-ranking by attainment)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the shared-clock invariant sanitizer (simsan) alongside "
        "the simulation: per-replica/cluster clock monotonicity, event "
        "causality, token conservation, KV balance, request identity and "
        "fleet lifecycle legality (on the fluid fidelity, the analog "
        "conservation laws over the mean-field accumulators); needs "
        "--coupled, and any violation aborts the run with the rule id",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        default="T4P2",
        help="static label (T4P2) or Seesaw transition (P8->T4P2)",
    )
    parser.add_argument("--chunked", action="store_true", help="chunked prefill")
    parser.add_argument("--chunk-size", type=int, default=2048)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    from repro.obs.telemetry import DEFAULT_INTERVAL_S

    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record windowed time-series telemetry (per-replica queues, "
        "KV utilization, fleet membership, SLO burn rate) on the virtual "
        "clock; off by default — the instrumented loops stay bit-exact "
        "with telemetry disabled",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        default=DEFAULT_INTERVAL_S,
        help="sampling interval in virtual seconds (default "
        f"{DEFAULT_INTERVAL_S:g})",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="write the recorded telemetry to PATH (JSONL, or CSV when "
        "PATH ends in .csv); implies --telemetry",
    )


def _add_tracing_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tracing",
        default=None,
        metavar="MODE",
        help="record per-request span trees with critical-path latency "
        "attribution on the virtual clock; MODE selects which requests "
        "keep a trace: all | slo_miss (only SLO violators; needs "
        "--ttft-slo and/or --tpot-slo) | p99_exemplars (the worst 1% by "
        "e2e) | rate:<f> (deterministic f-fraction sample). Off by "
        "default — the instrumented loops stay bit-exact without it",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the recorded traces to PATH as repro-trace-v1 JSONL; "
        "implies --tracing all unless --tracing is given",
    )
    parser.add_argument(
        "--trace-chrome",
        default=None,
        metavar="PATH",
        help="also export the traces as Chrome trace-event JSON (load in "
        "Perfetto / chrome://tracing); implies --tracing all unless "
        "--tracing is given",
    )


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent simulation cells over N worker processes; "
        "results merge in submission order, so the report is "
        "byte-identical to --jobs 1 (the default, which keeps the exact "
        "zero-overhead in-process path)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoize cell results in the content-addressed on-disk "
        "cache (~/.cache/repro; key = canonical cell spec + code-version "
        "salt, so any source change invalidates every entry); repeated "
        "cells across sweeps and re-runs are served from disk",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache under DIR instead of ~/.cache/repro (implies --cache)",
    )


def _make_executor(args: argparse.Namespace):
    """The :class:`~repro.exec.CellExecutor` the exec flags describe, or
    ``None`` when they ask for the plain in-process path (``--jobs 1``,
    no cache) — callers keep their exact legacy loops in that case."""
    jobs = getattr(args, "jobs", 1)
    want_cache = getattr(args, "cache", False) or getattr(args, "cache_dir", None)
    if jobs == 1 and not want_cache:
        return None
    if getattr(args, "sanitize", False):
        raise ConfigurationError(
            "--sanitize is incompatible with --jobs > 1 / --cache: the "
            "sanitizer is a process-local hook whose checks cannot cross "
            "a worker boundary or be replayed from a cache entry; drop "
            "--sanitize or run with --jobs 1 and no cache"
        )
    from repro.exec import CellExecutor, ResultCache

    cache = None
    if want_cache:
        cache = ResultCache(root=getattr(args, "cache_dir", None))
    return CellExecutor(jobs=jobs, cache=cache)


def _report_cache(executor) -> None:
    """One stderr line of cache effectiveness (stderr keeps stdout
    byte-identical with and without a cache)."""
    if executor is None or executor.cache is None:
        return
    cache = executor.cache
    print(
        f"cache: {cache.hits} hit(s), {cache.misses} miss(es) under "
        f"{cache.root}",
        file=sys.stderr,
    )


def _arrival_kind(value: str) -> str:
    """argparse type for --arrival: a named process, diurnal:<period> or
    trace:<path>."""
    if (
        value in ARRIVAL_KINDS
        or value.startswith(TRACE_PREFIX)
        or value.startswith(DIURNAL_PREFIX)
    ):
        return value
    raise argparse.ArgumentTypeError(
        f"must be one of {', '.join(ARRIVAL_KINDS)}, "
        f"{DIURNAL_PREFIX}<period> or {TRACE_PREFIX}<path>"
    )


def _make_workload(args: argparse.Namespace):
    if args.dataset.startswith("const:"):
        spec = args.dataset.split(":", 1)[1]
        try:
            prompt, output = (int(x) for x in spec.lower().split("x"))
        except ValueError:
            raise ReproError(
                f"malformed constant dataset spec {args.dataset!r}: expected "
                "const:<prompt>x<output> with integer lengths, e.g. const:2000x200"
            ) from None
        workload = constant_workload(args.num_requests, prompt, output)
    else:
        workload = sample_dataset(
            args.dataset, num_requests=args.num_requests, seed=args.seed
        )
    if not math.isfinite(args.request_rate) or args.request_rate < 0:
        raise ConfigurationError(
            f"--request-rate must be >= 0 (got {args.request_rate:g}); "
            "0 runs offline with every request at t=0"
        )
    if args.arrival.startswith(DIURNAL_PREFIX) and args.request_rate <= 0:
        raise ConfigurationError(
            f"--arrival {args.arrival} needs --request-rate > 0 (the "
            "day-shape modulates the mean offered rate)"
        )
    if (
        getattr(args, "autoscaler", "none") != "none"
        and args.request_rate <= 0
        and not args.arrival.startswith(TRACE_PREFIX)
    ):
        raise ConfigurationError(
            f"--autoscaler {args.autoscaler} needs an online workload: pass "
            "--request-rate > 0 (or an arrival trace) — an offline t=0 "
            "burst has no arrival process to scale against"
        )
    if args.arrival.startswith(TRACE_PREFIX):
        workload = make_arrivals(workload, args.arrival, args.request_rate)
    elif args.request_rate > 0:
        burstiness = args.burstiness
        if burstiness is None:
            # Bursty traffic defaults to the heavy cv2=4 regime; every
            # other process (diurnal's base included) defaults to
            # memoryless gaps unless the flag is set explicitly.
            burstiness = 4.0 if args.arrival == "bursty" else 1.0
        workload = make_arrivals(
            workload,
            args.arrival,
            args.request_rate,
            burstiness=burstiness,
            seed=args.seed,
        )
    return workload


def _offered(args: argparse.Namespace, workload) -> float:
    """Offered request rate of the run (trace replays measure their own).

    A degenerate trace (single timestamp, zero span) has no measurable
    rate; it is treated as offline (0.0) rather than an error so plain
    trace replays keep working without SLO flags.
    """
    if args.arrival.startswith(TRACE_PREFIX):
        try:
            return offered_rate(workload)
        except ReproError:
            return 0.0
    return args.request_rate


def _serving_objective(args: argparse.Namespace, workload) -> ServingObjective:
    """The autotuner objective the CLI flags describe."""
    return ServingObjective(
        kind=args.objective,
        request_rate=_offered(args, workload),
        ttft_slo=args.ttft_slo,
        tpot_slo=args.tpot_slo,
    )


def _print_result(
    result: EngineResult,
    ttft_slo: float | None = None,
    tpot_slo: float | None = None,
) -> None:
    print(result.describe())
    if result.latency is not None:
        print(f"latency: {result.latency.describe()}")
    if result.router is not None and result.router.num_replicas > 1:
        print(f"routing: {result.router.describe()}")
    if result.router is not None and result.router.fleet is not None:
        print(f"fleet: {result.router.fleet.describe()}")
        print()
        print(
            fleet_table(
                {result.label: result},
                title="elastic fleet",
                ttft_slo=ttft_slo,
                tpot_slo=tpot_slo,
            )
        )
    print(comparison_table({result.label: result}))
    if (ttft_slo is not None or tpot_slo is not None) and result.latency is not None:
        print()
        print(
            latency_table(
                {result.label: result},
                title="latency vs SLO",
                ttft_slo=ttft_slo,
                tpot_slo=tpot_slo,
            )
        )


def _make_sanitizer(args: argparse.Namespace):
    """The simsan instance ``--sanitize`` asks for, or ``None`` (the
    default — the bit-exact uninstrumented path)."""
    if not getattr(args, "sanitize", False):
        return None
    from repro.check import Sanitizer

    return Sanitizer()


def _make_telemetry(args: argparse.Namespace):
    """The telemetry hub the CLI flags ask for, or ``None`` (the default —
    the zero-overhead path)."""
    if not (getattr(args, "telemetry", False) or getattr(args, "telemetry_out", None)):
        return None
    from repro.obs import Telemetry

    return Telemetry(interval_s=args.telemetry_interval)


def _make_tracer(args: argparse.Namespace):
    """The request tracer the CLI flags ask for, or ``None`` (the default
    — the zero-overhead path). ``--trace-out``/``--trace-chrome`` imply
    ``--tracing all``."""
    sampling = getattr(args, "tracing", None)
    if sampling is None:
        if not (
            getattr(args, "trace_out", None) or getattr(args, "trace_chrome", None)
        ):
            return None
        sampling = "all"
    from repro.obs import Tracer, parse_sampling

    mode, _ = parse_sampling(sampling)  # validates the mode early
    if mode == "slo_miss" and args.ttft_slo is None and args.tpot_slo is None:
        raise ConfigurationError(
            "--tracing slo_miss needs --ttft-slo and/or --tpot-slo: an SLO "
            "miss is only defined against a configured SLO"
        )
    return Tracer(sampling)


def _report_traces(tracer, args: argparse.Namespace) -> None:
    """Post-run trace reporting/export shared by run and trace --live."""
    from repro.analysis.report import critical_path_table
    from repro.obs import aggregate_tail, write_chrome_trace, write_trace_jsonl

    traces = tracer.traces
    print()
    if not traces:
        print(
            f"tracing: 0 of {tracer.num_requests} requests sampled "
            f"(mode {tracer.sampling})"
        )
    else:
        print(
            f"tracing: {len(traces)} of {tracer.num_requests} requests "
            f"traced (mode {tracer.sampling})"
        )
        report = aggregate_tail(traces, percentile=99.0)
        print(critical_path_table(report, title="critical path (p99 tail)"))
    if getattr(args, "trace_out", None):
        n = write_trace_jsonl(tracer, args.trace_out)
        print(f"{n} traces written to {args.trace_out}")
    if getattr(args, "trace_chrome", None):
        n = write_chrome_trace(traces, args.trace_chrome)
        print(f"chrome trace ({n} events) written to {args.trace_chrome}")


def _export_telemetry(tel, path: str) -> None:
    from repro.obs import write_csv, write_jsonl

    if path.endswith(".csv"):
        write_csv(tel, path)
    else:
        write_jsonl(tel, path)
    print(f"telemetry written to {path}")


def _build_engine(
    args: argparse.Namespace,
    objective: ServingObjective,
    telemetry=None,
    tracer=None,
):
    """One engine from the shared run/obs flag set (static or transition)."""
    model = get_model(args.model)
    cluster = make_cluster(args.gpu, args.num_gpus)
    common = {
        "chunk_size": args.chunk_size,
        "trace": getattr(args, "timeline", False),
        "router": args.router,
        "router_seed": args.seed,
        "ttft_slo": args.ttft_slo,
        "tpot_slo": args.tpot_slo,
        "coupled": args.coupled,
        "fidelity": args.fidelity,
        "autoscaler": args.autoscaler,
        "min_dp": args.min_dp,
        "max_dp": args.max_dp,
        "telemetry": telemetry,
        "tracing": tracer,
        "sanitize": _make_sanitizer(args),
    }
    if "->" in args.config:
        from repro.core.options import SeesawOptions

        cp, cd = parse_transition(args.config)
        seesaw_opts = SeesawOptions(
            chunked_prefill=False,
            # The SLO objective lets Seesaw's phase loop weigh waiting for
            # predicted arrivals against re-sharding immediately.
            arrival_rate=objective.arrival_rate_hint,
            **common,
        )
        return SeesawEngine(model, cluster, cp, cd, seesaw_opts)
    options = EngineOptions(chunked_prefill=args.chunked, **common)
    return VllmLikeEngine(model, cluster, parse_config(args.config), options)


def cmd_run(args: argparse.Namespace) -> int:
    workload = _make_workload(args)
    objective = _serving_objective(args, workload)
    tel = _make_telemetry(args)
    tracer = _make_tracer(args)
    engine = _build_engine(args, objective, telemetry=tel, tracer=tracer)
    result = engine.run(workload)
    _print_result(result, ttft_slo=args.ttft_slo, tpot_slo=args.tpot_slo)
    san = engine.options.sanitize
    if san is not None:
        print(f"sanitizer: {san.describe()}")
    if tel is not None:
        print()
        print(telemetry_table(tel, title="telemetry"))
        if args.telemetry_out:
            _export_telemetry(tel, args.telemetry_out)
    if tracer is not None:
        _report_traces(tracer, args)
    if args.timeline and engine.last_trace.enabled:
        print()
        print(render_timeline(engine.last_trace))
    return 0


def _obs_follow(args: argparse.Namespace) -> int:
    """Tail a growing telemetry JSONL: re-render the dashboard every
    ``--poll`` seconds until interrupted (``--once`` renders one frame
    and exits — the CI escape hatch)."""
    import time

    from repro.obs import load_jsonl, render_dashboard

    if args.artifact is None:
        raise ConfigurationError(
            "repro obs --follow needs a JSONL artifact path to tail (the "
            "file a concurrent run is writing with --telemetry-out)"
        )
    try:
        while True:
            try:
                tel = load_jsonl(args.artifact)
                frame = render_dashboard(tel, width=args.width, top=args.top)
            except (ReproError, OSError) as exc:
                frame = f"waiting for {args.artifact}: {exc}\n"
            if not args.once:
                # ANSI clear + home keeps the dashboard in place like
                # watch(1) instead of scrolling a frame per poll.
                sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(frame)
            sys.stdout.flush()
            if args.once:
                return 0
            time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import load_jsonl, render_dashboard

    if args.follow or args.once:
        return _obs_follow(args)
    if args.artifact is not None:
        tel = load_jsonl(args.artifact)
    elif args.live:
        from repro.obs import Telemetry

        workload = _make_workload(args)
        objective = _serving_objective(args, workload)
        tel = Telemetry(interval_s=args.telemetry_interval)
        engine = _build_engine(args, objective, telemetry=tel)
        engine.run(workload)
        if args.telemetry_out:
            _export_telemetry(tel, args.telemetry_out)
    else:
        raise ConfigurationError(
            "repro obs needs a JSONL artifact path (from a run with "
            "--telemetry-out) or --live to simulate one now"
        )
    print(render_dashboard(tel, width=args.width, top=args.top), end="")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.report import critical_path_table
    from repro.obs import (
        aggregate_tail,
        load_trace_jsonl,
        render_trace_flame,
        write_chrome_trace,
    )

    if args.artifact is not None:
        artifact = load_trace_jsonl(args.artifact)
        traces = artifact.traces
        sampling = artifact.sampling
        num_requests = artifact.num_requests
        dropped = artifact.dropped_requests
    elif args.live:
        workload = _make_workload(args)
        objective = _serving_objective(args, workload)
        tracer = _make_tracer(args)
        if tracer is None:
            from repro.obs import Tracer

            tracer = Tracer("all")
        engine = _build_engine(args, objective, tracer=tracer)
        engine.run(workload)
        if args.trace_out:
            from repro.obs import write_trace_jsonl

            n = write_trace_jsonl(tracer, args.trace_out)
            print(f"{n} traces written to {args.trace_out}")
        traces = tracer.traces
        sampling = tracer.sampling
        num_requests = tracer.num_requests
        dropped = tracer.dropped_requests
    else:
        raise ConfigurationError(
            "repro trace needs a repro-trace-v1 JSONL artifact path (from a "
            "run with --trace-out) or --live to simulate one now"
        )
    line = (
        f"{len(traces)} of {num_requests} requests traced (mode {sampling})"
    )
    if dropped:
        line += f", {dropped} dropped at the trace cap"
    print(line)
    if not traces:
        return 0
    report = aggregate_tail(traces, percentile=args.percentile)
    print()
    print(
        critical_path_table(
            report, title=f"critical path (p{args.percentile:g} tail)"
        )
    )
    worst = sorted(traces, key=lambda t: (-t.e2e, t.request_id))[: args.top]
    for trace in worst:
        print()
        print(render_trace_flame(trace, width=args.width))
    if args.export_chrome:
        n = write_chrome_trace(traces, args.export_chrome)
        print()
        print(f"chrome trace ({n} events) written to {args.export_chrome}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    cluster = make_cluster(args.gpu, args.num_gpus)
    workload = _make_workload(args)
    objective = _serving_objective(args, workload)
    executor = _make_executor(args)
    from repro.core.options import SeesawOptions

    slo_opts = {"ttft_slo": args.ttft_slo, "tpot_slo": args.tpot_slo}
    router_opts = {
        "router": args.router,
        "router_seed": args.seed,
        "coupled": args.coupled,
        "fidelity": args.fidelity,
        "autoscaler": args.autoscaler,
        "min_dp": args.min_dp,
        "max_dp": args.max_dp,
        "sanitize": _make_sanitizer(args),
        **slo_opts,
    }
    static_cfg = best_static_config(
        model,
        cluster,
        workload,
        simulate_top=3,
        options=EngineOptions(**router_opts),
        objective=objective,
        executor=executor,
    )
    chunk = tune_chunk_size(model, cluster, static_cfg, workload, executor=executor)
    chunked_opts = EngineOptions(
        chunked_prefill=True, chunk_size=chunk, **router_opts
    )
    plain_opts = EngineOptions(**router_opts)
    seesaw_run_opts = SeesawOptions(
        **router_opts, arrival_rate=objective.arrival_rate_hint
    )
    cp, cd = best_seesaw_pair(
        model,
        cluster,
        workload,
        simulate_top=3,
        options=seesaw_run_opts,
        objective=objective,
        executor=executor,
    )
    if executor is not None:
        # The three headline runs are independent cells: batch them into
        # one fan-out (results come back in submission order).
        from repro.exec import CellSpec

        vllm, vllm_plain, seesaw = executor.run(
            [
                CellSpec(
                    engine="vllm", model=model, cluster=cluster,
                    config=static_cfg.label(), options=chunked_opts,
                    workload=workload, seed=args.seed,
                ),
                CellSpec(
                    engine="vllm", model=model, cluster=cluster,
                    config=static_cfg.label(), options=plain_opts,
                    workload=workload, seed=args.seed,
                ),
                CellSpec(
                    engine="seesaw", model=model, cluster=cluster,
                    config=f"{cp.label()}->{cd.label()}",
                    options=seesaw_run_opts, workload=workload,
                    seed=args.seed,
                ),
            ]
        )
    else:
        vllm = VllmLikeEngine(model, cluster, static_cfg, chunked_opts).run(
            workload
        )
        vllm_plain = VllmLikeEngine(model, cluster, static_cfg, plain_opts).run(
            workload
        )
        seesaw = SeesawEngine(model, cluster, cp, cd, seesaw_run_opts).run(workload)
    # The chunked-vs-plain pick honors the objective too: under slo, a
    # faster run that misses the SLOs must not displace a compliant one.
    if objective.result_key(vllm_plain) > objective.result_key(vllm):
        vllm = vllm_plain
    results = {f"vllm {vllm.label}": vllm, f"seesaw {seesaw.label}": seesaw}
    print(
        comparison_table(
            results,
            baseline_key=f"vllm {vllm.label}",
            title=f"{args.model} / {args.dataset} on {cluster.describe()} "
            f"(objective: {objective.describe()})",
        )
    )
    if args.arrival.startswith(TRACE_PREFIX):
        print()
        print(latency_table(results, title=f"latency under {args.arrival}", **slo_opts))
    elif args.request_rate > 0:
        print()
        print(
            latency_table(
                results, title=f"latency at {args.request_rate:g} req/s", **slo_opts
            )
        )
    elif args.ttft_slo is not None or args.tpot_slo is not None:
        print()
        print(latency_table(results, title="latency vs SLO (offline)", **slo_opts))
    if any(
        r.router is not None and r.router.num_replicas > 1 for r in results.values()
    ):
        print()
        print(routing_table(results, title=f"replica load ({args.router} router)"))
    print(f"speedup: {seesaw.throughput_rps / vllm.throughput_rps:.2f}x")
    _report_cache(executor)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    cluster = make_cluster(args.gpu, args.num_gpus)
    workload = _make_workload(args)
    objective = _serving_objective(args, workload)
    executor = _make_executor(args)
    from repro.core.options import SeesawOptions

    results: dict[str, EngineResult] = {}
    slo_opts = {"ttft_slo": args.ttft_slo, "tpot_slo": args.tpot_slo}
    fleet_opts = {
        "autoscaler": args.autoscaler, "min_dp": args.min_dp, "max_dp": args.max_dp
    }
    opts = EngineOptions(
        router=args.router,
        router_seed=args.seed,
        coupled=args.coupled,
        fidelity=args.fidelity,
        sanitize=_make_sanitizer(args),
        **fleet_opts,
        **slo_opts,
    )
    ranked_configs = rank_static_configs(
        model, cluster, workload, objective=objective
    )
    if executor is not None:
        from repro.exec import CellSpec

        static_specs = [
            CellSpec(
                engine="vllm", model=model, cluster=cluster,
                config=ranked.config.label(), options=opts,
                workload=workload, seed=args.seed,
            )
            for ranked in ranked_configs
        ]
        for ranked, run in zip(
            ranked_configs, executor.run(static_specs), strict=True
        ):
            results[ranked.config.label()] = run
    else:
        for ranked in ranked_configs:
            engine = VllmLikeEngine(model, cluster, ranked.config, opts)
            results[ranked.config.label()] = engine.run(workload)
    seesaw_opts = SeesawOptions(
        router=args.router,
        router_seed=args.seed,
        coupled=args.coupled,
        fidelity=args.fidelity,
        sanitize=_make_sanitizer(args),
        **fleet_opts,
        **slo_opts,
        arrival_rate=objective.arrival_rate_hint,
    )
    cp, cd = best_seesaw_pair(
        model, cluster, workload, simulate_top=3,
        options=seesaw_opts, objective=objective, executor=executor,
    )
    if executor is not None:
        from repro.exec import CellSpec

        (seesaw,) = executor.run(
            [
                CellSpec(
                    engine="seesaw", model=model, cluster=cluster,
                    config=f"{cp.label()}->{cd.label()}", options=seesaw_opts,
                    workload=workload, seed=args.seed,
                )
            ]
        )
    else:
        seesaw = SeesawEngine(model, cluster, cp, cd, seesaw_opts).run(workload)
    results[f"seesaw {seesaw.label}"] = seesaw
    # The baseline pick honors the objective: under slo, normalizing
    # against a 0%-attainment config would misstate every speedup.
    best_static = max(
        (k for k in results if not k.startswith("seesaw")),
        key=lambda k: objective.result_key(results[k]),
    )
    print(
        comparison_table(
            results,
            baseline_key=best_static,
            title=f"Static sweep + Seesaw ({args.model}, {args.dataset})",
        )
    )
    if (args.ttft_slo is not None or args.tpot_slo is not None) and any(
        r.latency is not None for r in results.values()
    ):
        print()
        print(latency_table(results, title="latency vs SLO", **slo_opts))
    _report_cache(executor)
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.autotuner.predictor import predict_request_rate

    model = get_model(args.model)
    cluster = make_cluster(args.gpu, args.num_gpus)
    if "->" in args.config:
        cp, cd = parse_transition(args.config)
    else:
        cp = cd = parse_config(args.config)
    rates = predict_request_rate(
        model, cluster, cp, cd, args.input_len, args.output_len
    )
    print(f"config            : {cp.label()} -> {cd.label()}")
    print(f"prefill rate      : {rates.prefill_tokens_per_s:,.0f} tok/s")
    print(f"decode rate       : {rates.decode_tokens_per_s:,.0f} tok/s")
    print(f"max decode batch  : {rates.max_batch_size}")
    print(f"predicted req rate: {rates.request_rate:.3f} req/s")
    if args.request_rate > 0 or args.ttft_slo is not None or args.tpot_slo is not None:
        objective = ServingObjective(
            kind="slo",
            request_rate=args.request_rate,
            ttft_slo=args.ttft_slo,
            tpot_slo=args.tpot_slo,
        )
        pred = objective.predict(rates, args.input_len, args.output_len)
        print(f"utilization       : {pred.utilization:.2f}")
        queue = "inf" if pred.queue_wait_mean_s == float("inf") else f"{pred.queue_wait_mean_s:.3f}s"
        ttft = "inf" if pred.ttft_mean_s == float("inf") else f"{pred.ttft_mean_s:.3f}s"
        print(f"mean queue wait   : {queue}")
        print(f"predicted ttft    : {ttft}")
        print(f"predicted tpot    : {pred.tpot_s * 1e3:.1f} ms/tok")
        print(f"slo attainment    : {pred.attainment * 100:.0f}%")
        print(f"goodput           : {pred.goodput_rps:.3f} req/s")
    return 0


def cmd_check_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.check import lint_paths

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(repro.__file__).parent]
    select = None
    if args.select:
        select = {part.strip() for part in args.select.split(",") if part.strip()}
    report = lint_paths(paths, select=select)
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n", encoding="utf-8")
        print(f"lint report written to {args.report}", file=sys.stderr)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return report.exit_code(strict=args.strict)


def cmd_check_goldens(args: argparse.Namespace) -> int:
    from repro.check.goldens import GOLDEN_SEED, render_goldens_table, run_goldens

    known = sorted(GOLDEN_SEED)
    if args.list:
        for name in known:
            print(name)
        return 0
    names = tuple(args.names) if args.names else None
    if names:
        unknown = [n for n in names if n not in GOLDEN_SEED]
        if unknown:
            raise ConfigurationError(
                f"unknown golden scenario(s) {unknown}; one of {known}"
            )
    executor = _make_executor(args)
    outcomes = run_goldens(names, executor=executor)
    print(render_goldens_table(outcomes))
    _report_cache(executor)
    return 0 if all(o.passed for o in outcomes) else 1


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec import ResultCache

    cache = ResultCache(root=args.cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) under {cache.root}")
        return 0
    stats = cache.stats()
    print(f"root            : {stats.root}")
    print(f"code salt       : {stats.salt}")
    print(f"generations     : {stats.generations}")
    print(f"entries         : {stats.entries}")
    print(f"current-salt    : {stats.current_entries}")
    print(f"total size      : {stats.total_bytes / 1024:.1f} KiB")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro import experiments as ex

    executor = _make_executor(args)
    artifacts = {
        "table1": lambda: ex.render_table1(),
        "fig1": lambda: ex.render_fig1(ex.run_fig1()),
        "fig2": lambda: ex.render_fig2(ex.run_fig2(num_requests=300)),
        "fig4": lambda: ex.render_fig4(ex.run_fig4(num_requests=200)),
        "fig9": lambda: ex.render_fig9(ex.run_fig9()),
        "fig10": lambda: ex.render_fig10(ex.run_fig10()),
        "fig11": lambda: ex.render_fig11(
            ex.run_fig11(num_arxiv=60, num_sharegpt=150)
        ),
        "fig12": lambda: ex.render_fig12(ex.run_fig12(num_requests=100)),
        "fig13": lambda: ex.render_fig13(ex.run_fig13(num_requests=32)),
        "fig14": lambda: ex.render_fig14(ex.run_fig14(num_requests=32)),
        "fig15": lambda: ex.render_fig15(ex.run_fig15()),
        "latency": lambda: ex.render_latency_sweep(
            ex.run_latency_sweep(num_requests=40, executor=executor)
        ),
        "routing": lambda: ex.render_routing_sweep(
            ex.run_routing_sweep(num_requests=48, executor=executor)
        ),
        "slo": lambda: ex.render_slo_sweep(
            ex.run_slo_sweep(num_requests=32, executor=executor)
        ),
        "coupled": lambda: ex.render_coupled_sweep(
            ex.run_coupled_sweep(num_requests=40, executor=executor)
        ),
        "autoscale": lambda: ex.render_autoscale_sweep(
            ex.run_autoscale_sweep(executor=executor)
        ),
    }
    if args.artifact not in artifacts:
        print(
            f"unknown artifact {args.artifact!r}; one of {sorted(artifacts)}",
            file=sys.stderr,
        )
        return 2
    print(artifacts[args.artifact]())
    _report_cache(executor)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Seesaw reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one engine configuration")
    _add_common(p_run)
    _add_engine_flags(p_run)
    p_run.add_argument(
        "--timeline", action="store_true", help="print the schedule timeline"
    )
    _add_telemetry_flags(p_run)
    _add_tracing_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_obs = sub.add_parser(
        "obs", help="telemetry dashboard from a JSONL artifact or live run"
    )
    p_obs.add_argument(
        "artifact",
        nargs="?",
        default=None,
        help="telemetry JSONL written by run --telemetry-out (omit with "
        "--live to simulate now)",
    )
    p_obs.add_argument(
        "--live",
        action="store_true",
        help="run the configured cell with telemetry enabled and render "
        "its dashboard (accepts every `repro run` flag)",
    )
    p_obs.add_argument("--width", type=int, default=60, help="sparkline width")
    p_obs.add_argument(
        "--top", type=int, default=3, help="worst windows to list (default 3)"
    )
    p_obs.add_argument(
        "--follow",
        action="store_true",
        help="live-tail the artifact: re-render the dashboard every "
        "--poll seconds as the JSONL grows (Ctrl-C to stop)",
    )
    p_obs.add_argument(
        "--poll",
        type=float,
        default=2.0,
        help="seconds between --follow re-renders (default 2)",
    )
    p_obs.add_argument(
        "--once",
        action="store_true",
        help="render a single --follow frame and exit (CI-friendly: no "
        "screen clearing, no loop)",
    )
    _add_common(p_obs)
    _add_engine_flags(p_obs)
    _add_telemetry_flags(p_obs)
    p_obs.set_defaults(func=cmd_obs)

    p_trace = sub.add_parser(
        "trace",
        help="per-request critical-path report from a trace artifact or "
        "live run",
    )
    p_trace.add_argument(
        "artifact",
        nargs="?",
        default=None,
        help="repro-trace-v1 JSONL written by run --trace-out (omit with "
        "--live to simulate now)",
    )
    p_trace.add_argument(
        "--live",
        action="store_true",
        help="run the configured cell with tracing enabled and report on "
        "its traces (accepts every `repro run` flag; defaults to "
        "--tracing all)",
    )
    p_trace.add_argument(
        "--top",
        type=int,
        default=3,
        help="worst requests to render as flame views (default 3)",
    )
    p_trace.add_argument(
        "--percentile",
        type=float,
        default=99.0,
        help="tail percentile for the critical-path aggregation "
        "(default 99)",
    )
    p_trace.add_argument(
        "--width", type=int, default=64, help="flame-view bar width"
    )
    p_trace.add_argument(
        "--export-chrome",
        default=None,
        metavar="PATH",
        help="export the loaded traces as Chrome trace-event JSON "
        "(Perfetto / chrome://tracing)",
    )
    _add_common(p_trace)
    _add_engine_flags(p_trace)
    _add_tracing_flags(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_cmp = sub.add_parser("compare", help="vLLM-best vs Seesaw-best")
    _add_common(p_cmp)
    _add_exec_flags(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_sweep = sub.add_parser("sweep", help="all static configs + Seesaw")
    _add_common(p_sweep)
    _add_exec_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_pred = sub.add_parser("predict", help="analytic rates, no simulation")
    _add_common(p_pred)
    p_pred.add_argument("--config", default="P8->T4P2")
    p_pred.add_argument("--input-len", type=float, default=2000)
    p_pred.add_argument("--output-len", type=float, default=200)
    p_pred.set_defaults(func=cmd_predict)

    p_check = sub.add_parser(
        "check",
        help="correctness tooling: determinism linter (simlint), pinned "
        "golden cells",
    )
    check_sub = p_check.add_subparsers(dest="check_command", required=True)
    p_lint = check_sub.add_parser(
        "lint",
        help="AST determinism lint (rules R1-R6) over source trees",
        description="simlint: wall-clock reads (R1), unseeded global RNG "
        "(R2), set-iteration order hazards in scheduling code (R3), "
        "unguarded telemetry in hot loops (R4), relative clock "
        "accumulation (R5) and options mutation after construction (R6). "
        "Suppress a finding with a trailing comment of the form "
        "`repro-check: ignore[R3]` preceded by a hash; unused "
        "suppressions are themselves reported (R0).",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro "
        "package source)",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not just errors (CI mode)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format"
    )
    p_lint.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the full JSON report to PATH (CI artifact)",
    )
    p_lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all), e.g. R1,R3",
    )
    p_lint.set_defaults(func=cmd_check_lint)
    p_gold = check_sub.add_parser(
        "goldens",
        help="re-run the pinned golden cells and diff against the seed",
        description="Re-runs the seed-pinned offline scenarios (all four "
        "engines, plus the DP and chunked-prefill paths) and compares "
        "total/phase times bit-exactly against the golden literals; "
        "exits non-zero on any mismatch.",
    )
    p_gold.add_argument(
        "names",
        nargs="*",
        help="scenario names to run (default: all; see --list)",
    )
    p_gold.add_argument(
        "--list", action="store_true", help="list scenario names and exit"
    )
    _add_exec_flags(p_gold)
    p_gold.set_defaults(func=cmd_check_goldens)

    p_repro = sub.add_parser("reproduce", help="regenerate a paper artifact")
    p_repro.add_argument(
        "artifact",
        help="table1 | fig1 | ... | fig15 | latency | routing | slo | "
        "coupled | autoscale",
    )
    _add_exec_flags(p_repro)
    p_repro.set_defaults(func=cmd_reproduce)

    p_cache = sub.add_parser(
        "cache", help="manage the on-disk simulation result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for sub_name, sub_help in (
        ("stats", "entry counts, size and the current code salt"),
        ("clear", "remove every cached result (all code generations)"),
    ):
        p_cache_sub = cache_sub.add_parser(sub_name, help=sub_help)
        p_cache_sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="cache root to inspect (default ~/.cache/repro)",
        )
        p_cache_sub.set_defaults(func=cmd_cache)

    from repro.bench import add_bench_parser

    add_bench_parser(sub)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
