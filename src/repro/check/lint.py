"""simlint — the determinism linter (``repro check lint``).

A custom AST-based static-analysis pass enforcing the coding discipline
the bit-exactness contracts depend on: virtual-clock-only time (R1),
seeded RNG (R2), order-stable iteration in scheduling code (R3), guarded
telemetry in hot loops (R4), absolute-time clock arithmetic (R5), and
immutable options objects (R6).

Findings can be suppressed with a trailing ``repro-check: ignore[R3]``
comment on the offending line; a suppression that no finding consumes is
itself reported (``R0``), so dead suppressions cannot accumulate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.rules import ALL_RULES, RULES_BY_ID
from repro.check.rules.base import FileContext, Finding
from repro.errors import ConfigurationError

#: Directories never descended into when scanning a tree.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})


@dataclass
class LintReport:
    """Findings plus enough context to gate CI and export an artifact."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "errors": self.errors,
            "warnings": self.warnings,
            "rules": {
                rule.id: {"name": rule.name, "severity": rule.severity}
                for rule in ALL_RULES
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = [f.format() for f in self.findings]
        lines.append(
            f"simlint: {self.files_checked} files checked, "
            f"{self.errors} errors, {self.warnings} warnings"
        )
        return "\n".join(lines)


def _resolve_select(select: set[str] | None) -> set[str] | None:
    if select is None:
        return None
    unknown = select - set(RULES_BY_ID)
    if unknown:
        raise ConfigurationError(
            f"unknown rule ids {sorted(unknown)}; available: {sorted(RULES_BY_ID)}"
        )
    return select


def lint_source(
    source: str, rel: str = "module.py", select: set[str] | None = None
) -> list[Finding]:
    """Lint one source string as if it lived at ``rel`` (the path scopes
    directory-targeted rules like R3/R4). Raises ``SyntaxError`` on
    unparsable input."""
    select = _resolve_select(select)
    ctx = FileContext(rel, source)
    raw: list[Finding] = []
    for rule in ALL_RULES:
        if select is not None and rule.id not in select:
            continue
        if not rule.applies(ctx.rel):
            continue
        raw.extend(rule.check(ctx))

    used: set[tuple[int, str]] = set()
    kept: list[Finding] = []
    for finding in raw:
        allowed = ctx.suppressions.get(finding.line, set())
        if finding.rule in allowed:
            used.add((finding.line, finding.rule))
        else:
            kept.append(finding)

    # A suppression nothing consumed is stale — report it so ignores
    # cannot outlive the hazard they were written for.
    for line, rules in sorted(ctx.suppressions.items()):
        for rule_id in sorted(rules):
            if select is not None and rule_id not in select:
                continue
            if (line, rule_id) in used:
                continue
            kept.append(
                Finding(
                    rule="R0",
                    severity="error",
                    path=ctx.rel,
                    line=line,
                    col=0,
                    message=(
                        f"unused suppression: no {rule_id} finding on this "
                        "line (remove the `# repro-check: ignore` comment)"
                    ),
                )
            )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(sub.parts):
                    files.append(sub)
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    return files


def lint_paths(paths: list[Path], select: set[str] | None = None) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    report = LintReport()
    for path in iter_python_files(paths):
        rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            findings = lint_source(source, rel=rel, select=select)
        except SyntaxError as exc:
            findings = [
                Finding(
                    rule="E0",
                    severity="error",
                    path=rel,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        report.findings.extend(findings)
        report.files_checked += 1
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
