"""R5 — float clock-accumulation hazards.

``clock += dt`` with a loop-invariant ``dt`` accumulates floating-point
error once per iteration (a classic simulation drift bug); advancing
from an absolute event time (``clock = event_time`` or
``clock = start + i * dt``) does not. The rule is deliberately narrow:
it only fires on add/sub augmented assignment to a clock-named target
inside a lexical loop whose right-hand side never changes within that
loop — the pattern where the accumulation is provably repeated.
Per-iteration elapsed times computed inside the loop are exactly how the
engines advance their virtual clocks and are not flagged.
"""

from __future__ import annotations

import ast

from repro.check.rules.base import FileContext, Finding, Rule

CLOCK_NAMES = frozenset({"now", "t", "clock", "time_s", "cur_time", "current_time"})
CLOCK_SUFFIXES = ("clock", "_now", "_time")


def _clock_target(target: ast.expr) -> str | None:
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    else:
        return None
    if name in CLOCK_NAMES or name.endswith(CLOCK_SUFFIXES):
        return name
    return None


def _assigned_names(loop: ast.AST) -> set[str]:
    """Every plain name (re)bound anywhere inside the loop body."""
    names: set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.NamedExpr)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _loop_invariant(value: ast.expr, loop_assigned: set[str]) -> bool:
    """Conservative: Constants, and Names/attribute chains whose root
    name is never rebound inside the loop."""
    if isinstance(value, ast.Constant):
        return True
    node = value
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id not in loop_assigned
    return False


class ClockDriftRule(Rule):
    id = "R5"
    name = "clock-drift"
    severity = "warning"
    description = (
        "repeated `clock += dt` accumulation with a loop-invariant dt "
        "(use absolute event-time arithmetic)"
    )
    include = ("cluster/", "engines/", "core/")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            assigned = _assigned_names(loop)
            for node in ast.walk(loop):
                if not isinstance(node, ast.AugAssign):
                    continue
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                name = _clock_target(node.target)
                if name is None:
                    continue
                if _loop_invariant(node.value, assigned):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"clock accumulation `{name} += <loop-invariant>` "
                            "inside a loop drifts by one float rounding per "
                            "iteration; advance from an absolute event time "
                            "(`clock = start + i * dt`)",
                        )
                    )
        return findings
