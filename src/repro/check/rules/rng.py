"""R2 — unseeded global RNG.

All stochastic components take an explicit seeded
:class:`numpy.random.Generator` built by :mod:`repro.utils.rng`; the
stdlib ``random`` module and numpy's legacy global state
(``np.random.<fn>``) share hidden process-global state, so one stray
call makes results depend on import order and prior draws.
"""

from __future__ import annotations

import ast

from repro.check.rules.base import FileContext, Finding, Rule

#: numpy.random entry points that *construct* seeded streams (allowed).
SEEDED_FACTORIES = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.BitGenerator",
    }
)

#: stdlib random entry points that construct independent seeded streams.
SEEDED_STDLIB = frozenset({"random.Random", "random.SystemRandom"})


class GlobalRngRule(Rule):
    id = "R2"
    name = "global-rng"
    severity = "error"
    description = (
        "global RNG state (random.*, np.random.*) instead of a seeded "
        "generator from repro.utils.rng"
    )
    exclude = ("utils/rng.py",)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qn = ctx.qualname(node.func)
            if qn is None:
                continue
            hit = (
                qn.startswith("random.") and qn not in SEEDED_STDLIB
            ) or (
                qn.startswith("numpy.random.") and qn not in SEEDED_FACTORIES
            )
            if hit:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"global RNG call {qn}(); route randomness through "
                        "repro.utils.rng.make_rng/spawn_rng so streams are "
                        "seeded and independent",
                    )
                )
        return findings
