"""R4 — unguarded telemetry calls in engine/simulator hot loops.

The observability contract (PR 7) is zero overhead when telemetry is
off: every loop must take its exact pre-telemetry instruction path when
the hub is ``None``. That only holds when each telemetry call sits
behind an ``if tel is not None`` (or equivalent) guard. This rule flags
calls on telemetry-looking receivers (``tel``, ``telemetry``,
``probe``, ``_probe``, ``hub``) in ``engines/`` and ``cluster/`` that no
enclosing guard protects.

A receiver that is a *parameter* of the enclosing function is treated as
guaranteed-non-None by its callers (the idiom used by helpers like
``_sample_cluster(self, tel, t)`` that are only invoked under a guard).
"""

from __future__ import annotations

import ast

from repro.check.rules.base import FileContext, Finding, Rule

RECEIVER_NAMES = frozenset({"tel", "telemetry", "probe", "_probe", "_tel", "hub"})


def _terminal_ident(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _matches(test: ast.expr, recv_dump: str) -> tuple[bool, bool]:
    """(guards_body, guards_orelse) for a guard test vs. the receiver."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        is_none = isinstance(right, ast.Constant) and right.value is None
        if is_none and ast.dump(left) == recv_dump:
            if isinstance(op, ast.IsNot):
                return True, False
            if isinstance(op, ast.Is):
                return False, True
    if isinstance(test, (ast.Name, ast.Attribute)) and ast.dump(test) == recv_dump:
        return True, False  # truthiness guard
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        body, orelse = _matches(test.operand, recv_dump)
        return orelse, body
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            body, _ = _matches(value, recv_dump)
            if body:
                return True, False
    return False, False


class TelemetryGuardRule(Rule):
    id = "R4"
    name = "telemetry-guard"
    severity = "error"
    description = (
        "telemetry call in a hot loop without an `is not None` guard "
        "(breaks the zero-overhead-when-off contract)"
    )
    include = ("cluster/", "engines/")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            recv = node.func.value
            ident = _terminal_ident(recv)
            if ident not in RECEIVER_NAMES:
                continue
            if self._is_parameter(ctx, node, recv):
                continue
            if self._guarded(ctx, node, recv):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"telemetry call {ident}.{node.func.attr}(...) is not "
                    "behind an `if ... is not None` guard; the off path must "
                    "stay instruction-identical",
                )
            )
        return findings

    def _is_parameter(self, ctx: FileContext, node: ast.AST, recv: ast.expr) -> bool:
        if not isinstance(recv, ast.Name):
            return False
        func = ctx.enclosing_function(recv)
        if func is None:
            return False
        args = func.args
        names = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        return recv.id in names

    def _guarded(self, ctx: FileContext, node: ast.AST, recv: ast.expr) -> bool:
        recv_dump = ast.dump(recv)
        for parent, child in ctx.ancestors(node):
            if isinstance(parent, ast.If):
                guards_body, guards_orelse = _matches(parent.test, recv_dump)
                in_body = child in parent.body
                in_orelse = child in parent.orelse
                if (guards_body and in_body) or (guards_orelse and in_orelse):
                    return True
            elif isinstance(parent, ast.IfExp):
                guards_body, guards_orelse = _matches(parent.test, recv_dump)
                if (guards_body and child is parent.body) or (
                    guards_orelse and child is parent.orelse
                ):
                    return True
            elif isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._early_guard(parent, child, recv_dump):
                    return True
                return False
        return False

    @staticmethod
    def _early_guard(func: ast.AST, stmt: ast.AST, recv_dump: str) -> bool:
        """An `if recv is None: return/raise/continue` earlier in the
        function body guards everything after it."""
        body = func.body
        try:
            idx = body.index(stmt)
        except ValueError:
            return False
        for earlier in body[:idx]:
            if not isinstance(earlier, ast.If) or earlier.orelse:
                continue
            _, guards_orelse = _matches(earlier.test, recv_dump)
            if not guards_orelse:
                continue  # test is not `recv is None`-shaped
            last = earlier.body[-1]
            if isinstance(last, (ast.Return, ast.Raise, ast.Continue)):
                return True
        return False
