"""The simlint rule set (R1-R6)."""

from repro.check.rules.base import FileContext, Finding, Rule
from repro.check.rules.clock import ClockDriftRule
from repro.check.rules.mutation import OptionsMutationRule
from repro.check.rules.ordering import OrderingRule
from repro.check.rules.rng import GlobalRngRule
from repro.check.rules.telemetry import TelemetryGuardRule
from repro.check.rules.wallclock import WallClockRule

ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    GlobalRngRule(),
    OrderingRule(),
    TelemetryGuardRule(),
    ClockDriftRule(),
    OptionsMutationRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
