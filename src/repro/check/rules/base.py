"""Shared infrastructure for the simlint rules.

Each rule is a small AST visitor over one parsed file. The
:class:`FileContext` gives every rule the same pre-computed views: the
parse tree, a parent map (for ancestor walks, e.g. guard detection), an
import-alias map (so ``np.random.seed`` resolves to
``numpy.random.seed`` whatever the file called numpy), and the inline
suppression table parsed from trailing ``repro-check: ignore[R3]``
comments.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

#: Inline suppression syntax: a trailing comment of the form
#: ``repro-check: ignore[R1]`` (or ``ignore[R1,R3]``) on the offending line.
SUPPRESS_RE = re.compile(r"#\s*repro-check:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map locally bound names to the dotted origin they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``;
    ``import numpy.random`` binds the top package: ``{"numpy": "numpy"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{module}.{alias.name}" if module else alias.name
    return aliases


def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    table: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            rules = {part.strip() for part in m.group(1).split(",") if part.strip()}
            if rules:
                table[i] = rules
    return table


class FileContext:
    """One file's parsed source plus the views every rule shares."""

    def __init__(self, rel: str, source: str) -> None:
        self.rel = rel.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source)
        self.lines = source.splitlines()
        self.aliases = _collect_aliases(self.tree)
        self.suppressions = _parse_suppressions(self.lines)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def qualname(self, node: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute chain through the alias map.

        Returns ``None`` when the chain's root is not an imported name
        (a local variable, parameter, or builtin).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def ancestors(self, node: ast.AST):
        """The node's ancestor chain, nearest first, as (parent, child)
        pairs — ``child`` is the direct child of ``parent`` on the path
        down to ``node`` (needed to tell an ``If`` body from its else)."""
        child = node
        parent = self.parents.get(child)
        while parent is not None:
            yield parent, child
            child = parent
            parent = self.parents.get(child)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for parent, _ in self.ancestors(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return parent
        return None


class Rule:
    """Base class: one determinism rule with an id, severity and scope."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""
    #: Path substrings the rule applies to; empty = every file.
    include: tuple[str, ...] = ()
    #: Path suffixes the rule never applies to.
    exclude: tuple[str, ...] = ()

    def applies(self, rel: str) -> bool:
        rel = rel.replace("\\", "/")
        if any(rel.endswith(suffix) for suffix in self.exclude):
            return False
        if self.include and not any(part in rel for part in self.include):
            return False
        return True

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
