"""R1 — wall-clock usage in simulator code.

Every result in this repo is computed on a *virtual* clock the event
loops advance explicitly; a single ``time.time()`` (or friends) read in
simulator code couples results to the host machine and silently breaks
the bit-exactness goldens. Host timing is legitimate only in the bench
harness and CLI wrappers, which are excluded.
"""

from __future__ import annotations

import ast

from repro.check.rules.base import FileContext, Finding, Rule

WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    id = "R1"
    name = "wall-clock"
    severity = "error"
    description = (
        "host wall-clock reads (time.time, perf_counter, datetime.now) "
        "outside the bench/CLI timing layer"
    )
    exclude = ("bench.py", "cli.py")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qn = ctx.qualname(node.func)
            if qn in WALLCLOCK_CALLS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"wall-clock call {qn}() in simulator code; results "
                        "must advance the virtual clock only",
                    )
                )
        return findings
