"""R6 — mutation of options/spec objects after construction.

``EngineOptions`` (and its engine-specific subclasses) are frozen
dataclasses shared by every replica of a run; mutating one mid-run —
directly or through the ``object.__setattr__`` escape hatch — changes
behavior for some replicas and not others and breaks run
reproducibility. The supported way to vary a knob is
``dataclasses.replace`` on a *new* engine.
"""

from __future__ import annotations

import ast

from repro.check.rules.base import FileContext, Finding, Rule

OPTION_NAMES = frozenset({"options", "opts", "engine_options"})


def _options_receiver(target: ast.expr) -> str | None:
    """Whether an assignment target writes an attribute *of* an options
    object (``self.options.x = ...``, ``opts.x = ...``)."""
    if not isinstance(target, ast.Attribute):
        return None
    recv = target.value
    if isinstance(recv, ast.Attribute) and recv.attr in OPTION_NAMES:
        return f"{recv.attr}.{target.attr}"
    if isinstance(recv, ast.Name) and recv.id in OPTION_NAMES:
        return f"{recv.id}.{target.attr}"
    return None


class OptionsMutationRule(Rule):
    id = "R6"
    name = "options-mutation"
    severity = "error"
    description = (
        "mutation of EngineOptions/spec objects after run start "
        "(use dataclasses.replace and a new engine)"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "object"
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "object.__setattr__ bypasses the frozen-options "
                            "contract; build a new object with "
                            "dataclasses.replace instead",
                        )
                    )
                continue
            for target in targets:
                written = _options_receiver(target)
                if written is not None:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"assignment to {written} mutates a shared "
                            "options object after construction; use "
                            "dataclasses.replace and a new engine",
                        )
                    )
        return findings
