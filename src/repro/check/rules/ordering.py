"""R3 — ordering hazards in the event-loop/dispatch layers.

Iterating a ``set`` (or ``dict.keys()`` whose insertion history varies)
in code that schedules events, ranks replicas, or pushes onto the event
heap makes the iteration order — and therefore the simulation — depend
on hash seeding and mutation history. Scoped to ``cluster/`` and
``routing/`` where iteration order feeds scheduling decisions; the fix
is ``sorted(...)`` or an order-stable container.
"""

from __future__ import annotations

import ast

from repro.check.rules.base import FileContext, Finding, Rule


def _is_set_expr(node: ast.expr) -> bool:
    """Whether the expression evaluates to a set for sure."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _annotation_is_set(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].strip() in ("set", "frozenset")
    return False


def _set_names(tree: ast.AST) -> set[str]:
    """Names bound to a set anywhere in the file (assignments, annotated
    assignments, and set-annotated parameters)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and _is_set_expr(node.value)
            ):
                names.add(node.target.id)
        elif isinstance(node, ast.arg) and _annotation_is_set(node.annotation):
            names.add(node.arg)
    return names


class OrderingRule(Rule):
    id = "R3"
    name = "ordering"
    severity = "error"
    description = (
        "iteration over a set (or dict.keys with varying insertion "
        "history) in event-scheduling/dispatch code"
    )
    include = ("cluster/", "routing/")

    def check(self, ctx: FileContext) -> list[Finding]:
        set_names = _set_names(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                message = self._hazard(it, set_names)
                if message is not None:
                    findings.append(self.finding(ctx, it, message))
        return findings

    def _hazard(self, it: ast.expr, set_names: set[str]) -> str | None:
        if isinstance(it, ast.Name) and it.id in set_names:
            return (
                f"iteration over set {it.id!r} has no stable order; iterate "
                "sorted(...) (or an order-stable container) before it feeds "
                "scheduling or dispatch"
            )
        if _is_set_expr(it):
            return (
                "direct iteration over a set expression has no stable order; "
                "wrap it in sorted(...)"
            )
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr == "keys"
            and not it.args
        ):
            return (
                "iteration over dict.keys() exposes insertion history as an "
                "order; iterate sorted(...) or make the order explicit"
            )
        return None
