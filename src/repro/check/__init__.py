"""Correctness tooling: the simlint determinism linter, the simsan
shared-clock invariant sanitizer, and the pinned golden-cell checker
(``repro check lint`` / ``repro check goldens`` / ``--sanitize``)."""

from repro.check.goldens import (
    GOLDEN_SEED,
    GoldenOutcome,
    golden_scenarios,
    render_goldens_table,
    run_goldens,
)
from repro.check.lint import LintReport, lint_paths, lint_source
from repro.check.rules import ALL_RULES, RULES_BY_ID
from repro.check.rules.base import Finding
from repro.check.sanitizer import LEGAL_TRANSITIONS, RULES, Sanitizer, SanitizerError
