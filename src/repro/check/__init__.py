"""Correctness tooling: the simlint determinism linter and the simsan
shared-clock invariant sanitizer (``repro check lint`` / ``--sanitize``)."""

from repro.check.lint import LintReport, lint_paths, lint_source
from repro.check.rules import ALL_RULES, RULES_BY_ID
from repro.check.rules.base import Finding
from repro.check.sanitizer import LEGAL_TRANSITIONS, RULES, Sanitizer, SanitizerError
