"""simsan — the shared-clock invariant sanitizer.

An opt-in runtime checker (``EngineOptions.sanitize`` / ``--sanitize``)
that asserts, *while* a coupled/autoscaled run executes, the invariants
the simulator's correctness rests on:

- **S1 clock-monotonic** — per-replica and cluster clocks never move
  backwards.
- **S2 event-causality** — no request is dispatched before its arrival
  time, and the event heap never delivers an event later than the
  linear-scan oracle's minimum (a late pop means an earlier event was
  missed).
- **S3 token-conservation** — every finished request produced exactly
  its workload's prompt + output tokens, and every dispatched request
  finished by drain.
- **S4 kv-balance** — all KV blocks allocated during the run were freed
  by drain and the allocator's O(1) running total matches its per-
  sequence books.
- **S5 request-identity** — request ids stay unique across dispatch and
  storm re-dispatch (an id is owned by exactly one replica at a time).
- **S6 fleet-lifecycle** — replica lifecycle transitions only move along
  provisioning -> warming -> active -> draining -> stopped.

Violations raise :class:`SanitizerError` carrying the rule id, the
virtual timestamp, and the replica id. ``sanitize=None`` (the default)
keeps every loop on its exact unsanitized instruction path, bit-exact
with the pinned goldens — the same contract the telemetry hub honors.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError

#: Absolute tolerance for virtual-clock comparisons (the event loops use
#: 1e-12 admission epsilons; violations we care about are far larger).
_TOL = 1e-9

RULES: dict[str, str] = {
    "S1": "clock-monotonic",
    "S2": "event-causality",
    "S3": "token-conservation",
    "S4": "kv-balance",
    "S5": "request-identity",
    "S6": "fleet-lifecycle",
}

#: Legal lifecycle edges (strict forward order, no skips).
LEGAL_TRANSITIONS = frozenset(
    {
        ("provisioning", "warming"),
        ("warming", "active"),
        ("active", "draining"),
        ("draining", "stopped"),
    }
)


class SanitizerError(SimulationError):
    """A violated runtime invariant, with rule id / time / replica."""

    def __init__(
        self,
        rule: str,
        message: str,
        *,
        time: float | None = None,
        replica: int | None = None,
    ) -> None:
        self.rule = rule
        self.time = time
        self.replica = replica
        where = []
        if time is not None:
            where.append(f"t={time:.6f}")
        if replica is not None:
            where.append(f"replica={replica}")
        prefix = f"[{rule}:{RULES.get(rule, '?')}]"
        if where:
            prefix += f" ({', '.join(where)})"
        super().__init__(f"{prefix} {message}")


class Sanitizer:
    """Runtime invariant checks for one coupled run.

    Every hook is O(1) except :meth:`note_event_pop` (the heap-vs-oracle
    cross-check, O(replicas) per popped event) and the drain-time
    conservation sweep — the cost of sanitizing, paid only when opted
    in. The simulator calls :meth:`begin_run` at construction, so one
    instance can watch a sequence of runs; the per-rule check counters
    make a clean run auditable (``describe()``) rather than silently
    green.
    """

    def __init__(self) -> None:
        self.checks: dict[str, int] = {rule: 0 for rule in RULES}
        self._owner: dict[int, int] = {}  # request_id -> owning replica
        self._cluster_clock = -math.inf

    def begin_run(self) -> None:
        """Reset per-run state (request ownership, the cluster-clock
        watermark) so one sanitizer instance can watch a sequence of runs
        — e.g. every candidate an autotuner sweep simulates. The per-rule
        check counters keep accumulating across runs."""
        self._owner.clear()
        self._cluster_clock = -math.inf

    # ------------------------------------------------------------------ #
    # S1 — clock monotonicity
    # ------------------------------------------------------------------ #

    def note_replica_clock(self, replica: int, old: float, new: float) -> None:
        self.checks["S1"] += 1
        if new < old - _TOL:
            raise SanitizerError(
                "S1",
                f"replica clock moved backwards: {old:.9f} -> {new:.9f}",
                time=new,
                replica=replica,
            )

    def note_cluster_clock(self, now: float) -> None:
        self.checks["S1"] += 1
        if now < self._cluster_clock - _TOL:
            raise SanitizerError(
                "S1",
                f"cluster clock moved backwards: {self._cluster_clock:.9f} "
                f"-> {now:.9f}",
                time=now,
            )
        self._cluster_clock = max(self._cluster_clock, now)

    # ------------------------------------------------------------------ #
    # S2 — event causality
    # ------------------------------------------------------------------ #

    def note_event_pop(self, t: float, replica: int, oracle_t: float) -> None:
        """A validated heap pop at ``t`` vs. the linear-oracle minimum
        over every live replica's ``next_event_time()``."""
        self.checks["S2"] += 1
        if t > oracle_t + _TOL:
            raise SanitizerError(
                "S2",
                f"event heap delivered t={t:.9f} after the linear-oracle "
                f"minimum {oracle_t:.9f} (an earlier event was missed)",
                time=t,
                replica=replica,
            )

    # ------------------------------------------------------------------ #
    # S2 + S5 — dispatch identity and causality
    # ------------------------------------------------------------------ #

    def note_dispatch(self, request, replica: int, now: float) -> None:
        self.checks["S2"] += 1
        if now < request.arrival_time - _TOL:
            raise SanitizerError(
                "S2",
                f"request {request.request_id} dispatched at {now:.9f} "
                f"before its arrival at {request.arrival_time:.9f}",
                time=now,
                replica=replica,
            )
        self.checks["S5"] += 1
        owner = self._owner.get(request.request_id)
        if owner is not None:
            raise SanitizerError(
                "S5",
                f"request id {request.request_id} dispatched to replica "
                f"{replica} while already owned by replica {owner}",
                time=now,
                replica=replica,
            )
        self._owner[request.request_id] = replica

    def note_withdraw(self, request, replica: int, now: float) -> None:
        self.checks["S5"] += 1
        owner = self._owner.get(request.request_id)
        if owner != replica:
            raise SanitizerError(
                "S5",
                f"request id {request.request_id} withdrawn from replica "
                f"{replica} but owned by {owner}",
                time=now,
                replica=replica,
            )
        del self._owner[request.request_id]

    # ------------------------------------------------------------------ #
    # S3 — fluid-path analogs
    # ------------------------------------------------------------------ #

    def note_fluid_request(
        self,
        request_id: int,
        replica: int,
        *,
        arrival: float,
        sched: float,
        first: float,
        finish: float,
    ) -> None:
        """Causal ordering of one fluid request's latency timeline.

        The fluid path has no per-token events to conserve, so the S3
        analog per request is the ordering the mean-field algebra must
        preserve: arrival <= schedule <= first token <= finish (a sign
        error in the drain-tail correction or the boundary-quantization
        term shows up here first).
        """
        self.checks["S3"] += 1
        timeline = (
            ("arrival", arrival),
            ("sched", sched),
            ("first-token", first),
            ("finish", finish),
        )
        for (a_name, a), (b_name, b) in zip(timeline, timeline[1:], strict=False):
            if b < a - _TOL:
                raise SanitizerError(
                    "S3",
                    f"request {request_id}: {b_name} at {b:.9f} precedes "
                    f"{a_name} at {a:.9f}",
                    time=finish,
                    replica=replica,
                )

    def check_fluid_conservation(
        self,
        *,
        num_requests: int,
        dispatched: int,
        prompt_tokens: int,
        served_prompt_tokens: float,
        decode_tokens: int,
        expected_decode_tokens: int,
        total_tokens: int,
        expected_total_tokens: int,
        now: float,
    ) -> None:
        """End-of-run conservation over the mean-field accumulators.

        The fluid replicas carry aggregate counters instead of sequences,
        so drain-time S3 checks sums: every workload request was
        dispatched exactly once, the decode/total token ledgers match the
        workload exactly (integers), and the prefill busy-seconds times
        the analytic rate reproduces the prompt tokens served (a float
        accumulation, tolerated to 1e-6 relative).
        """
        self.checks["S3"] += 1
        if dispatched != num_requests:
            raise SanitizerError(
                "S3",
                f"{dispatched} requests dispatched across the fleet != "
                f"{num_requests} in the workload",
                time=now,
            )
        if decode_tokens != expected_decode_tokens:
            raise SanitizerError(
                "S3",
                f"fleet decoded {decode_tokens} tokens != workload "
                f"{expected_decode_tokens} (sum of output_len - 1)",
                time=now,
            )
        if total_tokens != expected_total_tokens:
            raise SanitizerError(
                "S3",
                f"fleet token ledger {total_tokens} != workload prompt + "
                f"output total {expected_total_tokens}",
                time=now,
            )
        tol = max(1.0, 1e-6 * prompt_tokens)
        if abs(served_prompt_tokens - prompt_tokens) > tol:
            raise SanitizerError(
                "S3",
                f"prefill streams served {served_prompt_tokens:.3f} prompt "
                f"tokens != workload {prompt_tokens} (fluid queues are "
                "work-conserving: busy-seconds x rate must reproduce the "
                "prompt tokens)",
                time=now,
            )

    # ------------------------------------------------------------------ #
    # S6 — fleet lifecycle
    # ------------------------------------------------------------------ #

    def note_transition(self, replica: int, old: str, new: str, now: float) -> None:
        self.checks["S6"] += 1
        if (old, new) not in LEGAL_TRANSITIONS:
            raise SanitizerError(
                "S6",
                f"illegal lifecycle transition {old} -> {new} (legal: "
                "provisioning -> warming -> active -> draining -> stopped)",
                time=now,
                replica=replica,
            )

    # ------------------------------------------------------------------ #
    # S3 + S4 — drain-time conservation
    # ------------------------------------------------------------------ #

    def check_drained(self, replica: int, state, now: float) -> None:
        """Conservation sweep over one replica at end of run."""
        self.checks["S3"] += 1
        leftover = len(state.pending) + len(state.waiting) + len(state.running)
        if leftover:
            raise SanitizerError(
                "S3",
                f"{leftover} dispatched requests never finished by drain",
                time=now,
                replica=replica,
            )
        for seq in state.finished:
            req = seq.request
            if seq.generated_tokens + 1 != req.output_len:
                raise SanitizerError(
                    "S3",
                    f"request {req.request_id}: decoded "
                    f"{seq.generated_tokens} + 1 prefill-emitted token != "
                    f"workload output_len {req.output_len}",
                    time=now,
                    replica=replica,
                )
            if seq.prefilled_tokens != req.prompt_len:
                raise SanitizerError(
                    "S3",
                    f"request {req.request_id}: prefilled "
                    f"{seq.prefilled_tokens} tokens != workload prompt_len "
                    f"{req.prompt_len}",
                    time=now,
                    replica=replica,
                )
        self.check_kv(state.kv, replica, now)

    def check_kv(self, kv, replica: int, now: float) -> None:
        """KV-balance at drain: everything allocated was freed, and the
        allocator's O(1) running total matches its per-sequence books."""
        self.checks["S4"] += 1
        if kv.num_sequences != 0 or kv.used_blocks != 0:
            raise SanitizerError(
                "S4",
                f"KV cache not drained: {kv.used_blocks} blocks across "
                f"{kv.num_sequences} sequences still allocated (a block was "
                "leaked, or freed twice and re-used)",
                time=now,
                replica=replica,
            )
        books = sum(kv._blocks.values()) + sum(kv._reserved_blocks.values())
        if books != kv._used:
            raise SanitizerError(
                "S4",
                f"KV accounting out of balance: running total {kv._used} != "
                f"per-sequence books {books}",
                time=now,
                replica=replica,
            )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    def summary(self) -> dict[str, int]:
        return dict(self.checks)

    def describe(self) -> str:
        parts = ", ".join(
            f"{rule} {RULES[rule]}: {count}" for rule, count in self.checks.items()
        )
        return f"{self.total_checks} checks passed ({parts})"
