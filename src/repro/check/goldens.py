"""Pinned golden cells, re-runnable from the CLI (``repro check goldens``).

The tier-1 suite pins the seed revision's offline totals in
``tests/test_online_serving.py``; this module carries the same scenarios
and literals on the library side so a working tree can be checked
against the goldens without a pytest install or the tests directory —
the smoke a refactor runs before trusting anything else. The scenarios
cover all four engines (plus the DP and chunked-prefill paths); values
were captured at the seed commit via ``tests/golden_offline.py`` and
must be regenerated only when an intentional cost-model change
invalidates them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.runtime.metrics import EngineResult

# Relative tolerance of the equality check. The contract is bit-exact
# reproduction; the epsilon only absorbs decimal round-tripping of the
# pinned literals.
GOLDEN_REL_TOL = 1e-12

# Captured at the seed commit (tests/golden_offline.py). Keys map to the
# scenario builders below; values are the seed's totals and phase times.
GOLDEN_SEED: dict[str, dict[str, object]] = {
    "vllm_plain": {
        "total_time": 0.2112616800702835,
        "phase_time": {"decode": 0.09752755413333335, "prefill": 0.11373412593695029},
        "transitions": 0,
    },
    "vllm_chunked": {
        "total_time": 1.9104881969623662,
        "phase_time": {
            "decode": 1.7512111765333342,
            "mixed": 0.15079988755797333,
            "prefill": 0.008477132871059393,
        },
        "transitions": 0,
    },
    "vllm_dp": {
        "total_time": 1.917398817420879,
        "phase_time": {"decode": 1.7761419093333337, "prefill": 0.14125690808754426},
        "transitions": 0,
    },
    "decode_prio": {
        "total_time": 2.928148100890377,
        "phase_time": {"decode": 2.425880832, "prefill": 0.5022672688903757},
        "transitions": 2,
    },
    "seesaw": {
        "total_time": 44.14296480022675,
        "phase_time": {
            "decode": 36.980176979200024,
            "prefill": 6.551680282203229,
            "reshard": 0.610655774117647,
            "swap_stall": 0.00045176470588259576,
        },
        "transitions": 1,
    },
    "disagg": {
        "total_time": 0.1195430348080097,
        "phase_time": {"decode": 0.10313784320000002, "prefill": 0.1116169739369503},
        "transitions": 0,
    },
}

# Which engine each scenario exercises (the pass/fail table groups on it).
SCENARIO_ENGINES: dict[str, str] = {
    "vllm_plain": "vllm",
    "vllm_chunked": "vllm",
    "vllm_dp": "vllm",
    "decode_prio": "decode-prio",
    "seesaw": "seesaw",
    "disagg": "disagg",
}


def golden_scenarios() -> dict[str, Callable[[], EngineResult]]:
    """The pinned engine runs, keyed like :data:`GOLDEN_SEED`.

    Imports are local: the goldens checker is a CLI leaf and must not
    put engine construction on the import path of ``repro.check`` (the
    linter half of the package is imported by CI before any engine
    exists).
    """
    from repro.core.engine import SeesawEngine
    from repro.engines.base import EngineOptions
    from repro.engines.decode_prioritized import DecodePrioritizedEngine
    from repro.engines.disaggregated import DisaggregatedEngine, DisaggregationPlan
    from repro.engines.vllm_like import VllmLikeEngine
    from repro.hardware.cluster import make_cluster
    from repro.models.config import ModelConfig
    from repro.models.registry import get_model
    from repro.parallel.config import parse_config
    from repro.workloads.datasets import sharegpt_workload
    from repro.workloads.synthetic import constant_workload

    tiny = ModelConfig(
        name="tiny-2b",
        num_layers=16,
        hidden_size=2048,
        num_heads=16,
        num_kv_heads=4,
        intermediate_size=5504,
        vocab_size=32000,
    )
    m34 = get_model("34b")
    a10_4 = make_cluster("A10", 4)
    a10_8 = make_cluster("A10", 8)
    const = constant_workload(16, 256, 32)
    chat = sharegpt_workload(40, seed=7)

    def vllm_plain() -> EngineResult:
        return VllmLikeEngine(tiny, a10_4, parse_config("T2P2")).run(const)

    def vllm_chunked() -> EngineResult:
        opts = EngineOptions(chunked_prefill=True, chunk_size=512)
        return VllmLikeEngine(tiny, a10_4, parse_config("T2P2"), opts).run(chat)

    def vllm_dp() -> EngineResult:
        return VllmLikeEngine(tiny, a10_4, parse_config("D2T2")).run(chat)

    def decode_prio() -> EngineResult:
        return DecodePrioritizedEngine(tiny, a10_4, parse_config("T4")).run(chat)

    def seesaw() -> EngineResult:
        return SeesawEngine(
            m34, a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(sharegpt_workload(30, seed=7))

    def disagg() -> EngineResult:
        plan = DisaggregationPlan(
            prefill_config=parse_config("T2"), decode_config=parse_config("T2")
        )
        return DisaggregatedEngine(tiny, a10_4, plan).run(const)

    return {
        "vllm_plain": vllm_plain,
        "vllm_chunked": vllm_chunked,
        "vllm_dp": vllm_dp,
        "decode_prio": decode_prio,
        "seesaw": seesaw,
        "disagg": disagg,
    }


def golden_cell_specs() -> dict:
    """The pinned scenarios as :class:`~repro.exec.spec.CellSpec` values,
    keyed like :data:`GOLDEN_SEED` — the form ``repro check goldens
    --jobs N`` fans out. Constructions mirror :func:`golden_scenarios`
    exactly (same models, clusters, workloads, options), so the executor
    path must reproduce the same pinned literals bit-for-bit."""
    from repro.core.options import SeesawOptions
    from repro.engines.base import EngineOptions
    from repro.exec import CellSpec
    from repro.hardware.cluster import make_cluster
    from repro.models.config import ModelConfig
    from repro.models.registry import get_model
    from repro.workloads.datasets import sharegpt_workload
    from repro.workloads.synthetic import constant_workload

    tiny = ModelConfig(
        name="tiny-2b",
        num_layers=16,
        hidden_size=2048,
        num_heads=16,
        num_kv_heads=4,
        intermediate_size=5504,
        vocab_size=32000,
    )
    a10_4 = make_cluster("A10", 4)
    const = constant_workload(16, 256, 32)
    chat = sharegpt_workload(40, seed=7)
    return {
        "vllm_plain": CellSpec(
            engine="vllm", model=tiny, cluster=a10_4, config="T2P2",
            options=EngineOptions(), workload=const,
        ),
        "vllm_chunked": CellSpec(
            engine="vllm", model=tiny, cluster=a10_4, config="T2P2",
            options=EngineOptions(chunked_prefill=True, chunk_size=512),
            workload=chat,
        ),
        "vllm_dp": CellSpec(
            engine="vllm", model=tiny, cluster=a10_4, config="D2T2",
            options=EngineOptions(), workload=chat,
        ),
        "decode_prio": CellSpec(
            engine="decode-prio", model=tiny, cluster=a10_4, config="T4",
            options=EngineOptions(), workload=chat,
        ),
        "seesaw": CellSpec(
            engine="seesaw", model=get_model("34b"),
            cluster=make_cluster("A10", 8), config="P8->T4P2",
            options=SeesawOptions(), workload=sharegpt_workload(30, seed=7),
        ),
        "disagg": CellSpec(
            engine="disagg", model=tiny, cluster=a10_4, config="T2|T2",
            options=EngineOptions(), workload=const,
        ),
    }


@dataclass(frozen=True)
class GoldenOutcome:
    """One scenario's verdict against its pinned golden."""

    scenario: str
    engine: str
    passed: bool
    total_time: float
    expected_total: float
    mismatches: tuple[str, ...] = ()


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=GOLDEN_REL_TOL, abs_tol=0.0)


def check_result(name: str, result: EngineResult) -> GoldenOutcome:
    """Compare one scenario result against its golden literals."""
    golden = GOLDEN_SEED[name]
    expected_total = float(golden["total_time"])  # type: ignore[arg-type]
    expected_phase: dict[str, float] = golden["phase_time"]  # type: ignore[assignment]
    mismatches: list[str] = []
    if not _close(result.total_time, expected_total):
        mismatches.append(
            f"total_time {result.total_time!r} != {expected_total!r}"
        )
    if set(result.phase_time) != set(expected_phase):
        mismatches.append(
            f"phases {sorted(result.phase_time)} != {sorted(expected_phase)}"
        )
    else:
        for phase in sorted(expected_phase):
            if not _close(result.phase_time[phase], expected_phase[phase]):
                mismatches.append(
                    f"phase_time[{phase}] {result.phase_time[phase]!r} != "
                    f"{expected_phase[phase]!r}"
                )
    if result.transitions != golden["transitions"]:
        mismatches.append(
            f"transitions {result.transitions} != {golden['transitions']}"
        )
    return GoldenOutcome(
        scenario=name,
        engine=SCENARIO_ENGINES[name],
        passed=not mismatches,
        total_time=result.total_time,
        expected_total=expected_total,
        mismatches=tuple(mismatches),
    )


def run_goldens(
    names: tuple[str, ...] | None = None,
    executor=None,
) -> tuple[GoldenOutcome, ...]:
    """Re-run the pinned cells and compare (all of them by default).

    ``executor`` (a :class:`~repro.exec.CellExecutor`) fans the scenarios
    over worker processes and/or serves them from the result cache;
    ``None`` keeps the exact serial direct-construction loop. Both paths
    are compared against the same pinned literals — the serial-vs-parallel
    bit-exactness contract is itself golden-tested.
    """
    if executor is not None:
        specs = golden_cell_specs()
        selected = tuple(sorted(specs)) if names is None else names
        results = executor.run([specs[name] for name in selected])
        return tuple(
            check_result(name, result)
            for name, result in zip(selected, results, strict=True)
        )
    scenarios = golden_scenarios()
    selected = tuple(sorted(scenarios)) if names is None else names
    outcomes = []
    for name in selected:
        outcomes.append(check_result(name, scenarios[name]()))
    return tuple(outcomes)


def render_goldens_table(outcomes: tuple[GoldenOutcome, ...]) -> str:
    """Fixed-width per-engine pass/fail table plus mismatch details."""
    rows = [("scenario", "engine", "total_time", "golden", "verdict")]
    for o in outcomes:
        rows.append(
            (
                o.scenario,
                o.engine,
                f"{o.total_time:.9f}",
                f"{o.expected_total:.9f}",
                "PASS" if o.passed else "FAIL",
            )
        )
    widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    for o in outcomes:
        for m in o.mismatches:
            lines.append(f"  {o.scenario}: {m}")
    failed = sum(1 for o in outcomes if not o.passed)
    lines.append(
        f"{len(outcomes) - failed}/{len(outcomes)} golden cells match the seed"
        + (f" ({failed} FAILED)" if failed else "")
    )
    return "\n".join(lines)
