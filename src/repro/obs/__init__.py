"""Observability subsystem: telemetry hub, artifact I/O, text dashboard.

Attach a :class:`Telemetry` hub to ``EngineOptions.telemetry`` and every
layer of a run — engine iteration loops, the event-coupled cluster
simulator, the elastic fleet and its autoscaler, the fluid fast path —
records fixed-interval time-series and lifecycle events into it on the
shared virtual clock. ``None`` (the default) keeps every loop on its
exact pre-telemetry instruction path.
"""

from repro.obs.dashboard import render_dashboard, sparkline, worst_windows
from repro.obs.export import SCHEMA, load_jsonl, write_csv, write_jsonl
from repro.obs.telemetry import (
    DEFAULT_INTERVAL_S,
    DEFAULT_MAX_EVENTS,
    DEFAULT_SLO_BUDGET,
    MAX_WINDOWS,
    Counter,
    Gauge,
    Histogram,
    ReplicaProbe,
    Telemetry,
    percentiles,
)

__all__ = [
    "SCHEMA",
    "DEFAULT_INTERVAL_S",
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_SLO_BUDGET",
    "MAX_WINDOWS",
    "Counter",
    "Gauge",
    "Histogram",
    "ReplicaProbe",
    "Telemetry",
    "load_jsonl",
    "percentiles",
    "render_dashboard",
    "sparkline",
    "worst_windows",
    "write_csv",
    "write_jsonl",
]
