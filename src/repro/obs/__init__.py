"""Observability subsystem: telemetry, tracing, artifact I/O, dashboards.

Attach a :class:`Telemetry` hub to ``EngineOptions.telemetry`` and every
layer of a run — engine iteration loops, the event-coupled cluster
simulator, the elastic fleet and its autoscaler, the fluid fast path —
records fixed-interval time-series and lifecycle events into it on the
shared virtual clock. ``None`` (the default) keeps every loop on its
exact pre-telemetry instruction path.

Attach a :class:`Tracer` to ``EngineOptions.tracing`` (same contract)
and every request gets a span tree on the shared clock — queue wait,
dispatch, prefill, decode, preemption stalls, storm re-dispatch, fleet
warm-up, disaggregated KV handoff — plus a critical-path decomposition
of its end-to-end latency into additive segments whose conservation is
enforced as an invariant.
"""

from repro.obs.critical_path import (
    SEGMENT_KINDS,
    Segment,
    TailReport,
    TraceInvariantError,
    aggregate_tail,
    check_conservation,
    decompose,
)
from repro.obs.dashboard import render_dashboard, sparkline, worst_windows
from repro.obs.export import SCHEMA, load_jsonl, write_csv, write_jsonl
from repro.obs.telemetry import (
    DEFAULT_INTERVAL_S,
    DEFAULT_MAX_EVENTS,
    DEFAULT_SLO_BUDGET,
    MAX_WINDOWS,
    Counter,
    Gauge,
    Histogram,
    ReplicaProbe,
    Telemetry,
    percentiles,
)
from repro.obs.tracing import (
    SAMPLING_MODES,
    TRACE_SCHEMA,
    Link,
    RequestTrace,
    Span,
    TraceArtifact,
    Tracer,
    chrome_trace_events,
    load_trace_jsonl,
    parse_sampling,
    render_trace_flame,
    write_chrome_trace,
    write_trace_jsonl,
)

__all__ = [
    "SCHEMA",
    "SAMPLING_MODES",
    "SEGMENT_KINDS",
    "TRACE_SCHEMA",
    "DEFAULT_INTERVAL_S",
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_SLO_BUDGET",
    "MAX_WINDOWS",
    "Counter",
    "Gauge",
    "Histogram",
    "Link",
    "ReplicaProbe",
    "RequestTrace",
    "Segment",
    "Span",
    "TailReport",
    "Telemetry",
    "TraceArtifact",
    "TraceInvariantError",
    "Tracer",
    "aggregate_tail",
    "check_conservation",
    "chrome_trace_events",
    "decompose",
    "load_jsonl",
    "load_trace_jsonl",
    "parse_sampling",
    "percentiles",
    "render_dashboard",
    "render_trace_flame",
    "sparkline",
    "worst_windows",
    "write_chrome_trace",
    "write_csv",
    "write_jsonl",
]
