"""Critical-path decomposition of traced requests.

A traced request's end-to-end latency is explained by partitioning the
interval ``[arrival, finish]`` into contiguous, non-overlapping
*segments*, each attributed to one cause (queueing, prefill, decode,
a preemption stall, a storm re-dispatch, fleet warm-up, a KV handoff).
The partition is exact by construction — segments start at ``arrival``,
end at ``finish`` and tile the interval — so the conservation law

    sum(segment durations) == e2e

holds to float addition error. :func:`check_conservation` enforces it as
a simsan-style invariant (rules ``T1`` conservation, ``T2`` contiguity)
so an attribution bug surfaces as a hard error rather than a quietly
wrong report.

The decomposition takes the request's base life-cycle cuts (dispatch,
first schedule, first token) and a set of *overlay* intervals recorded
by the tracer (stalls, storms, warm-up windows, handoffs). Overlays
claim the sub-intervals they cover by priority — a swap stall inside the
decode phase splits decode into segments around it, which is why decode
appears as *segments* plural in the taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence as TypingSequence

from repro.errors import SimulationError

# ---------------------------------------------------------------------- #
# Segment taxonomy
# ---------------------------------------------------------------------- #

#: Waiting in the cluster/router queue before being dispatched (or, when
#: no dispatch mark exists, the whole pre-schedule wait).
QUEUE_WAIT = "queue_wait"
#: Dispatched to a replica but not yet scheduled there.
PREFILL_WAIT = "prefill_wait"
#: First schedule to first output token.
PREFILL = "prefill"
#: First output token to finish (may split into several segments when
#: stalls are carved out of it).
DECODE = "decode"
#: Waiting while the fleet was warming capacity the request needed.
WARMUP_WAIT = "warmup_wait"
#: Waiting on a prefill->decode KV-cache transfer (disaggregated plans).
KV_HANDOFF = "kv_handoff"
#: Withdrawn from a storming replica until re-dispatched elsewhere.
STORM_REDISPATCH = "storm_redispatch"
#: Preempted with recompute: requeue plus the re-run of lost work.
PREEMPT_STALL = "preempt_stall"
#: Preempted with KV swap-out: parked in CPU until swapped back in.
SWAP_STALL = "swap_stall"

_BASE_KINDS = (QUEUE_WAIT, PREFILL_WAIT, PREFILL, DECODE)

#: Every segment kind the decomposition can emit, in display order.
SEGMENT_KINDS = (
    QUEUE_WAIT,
    PREFILL_WAIT,
    WARMUP_WAIT,
    STORM_REDISPATCH,
    PREFILL,
    KV_HANDOFF,
    PREEMPT_STALL,
    SWAP_STALL,
    DECODE,
)

# Overlays claim elementary intervals by priority (higher wins). Base
# segments sit below every overlay.
_OVERLAY_PRIORITY = {
    WARMUP_WAIT: 1,
    KV_HANDOFF: 2,
    STORM_REDISPATCH: 3,
    PREEMPT_STALL: 4,
    SWAP_STALL: 5,
}

# Warm-up only explains *waiting* — it never overrides time the request
# actually spent computing.
_WAIT_ONLY = frozenset({WARMUP_WAIT})

_TOL = 1e-9


class TraceInvariantError(SimulationError):
    """A critical-path invariant (T1 conservation, T2 contiguity) failed."""

    def __init__(
        self, rule: str, message: str, *, request_id: int | None = None
    ) -> None:
        self.rule = rule
        self.request_id = request_id
        where = f" [request {request_id}]" if request_id is not None else ""
        super().__init__(f"{rule}: {message}{where}")


@dataclass(frozen=True)
class Segment:
    """One attributed slice of a request's end-to-end interval."""

    kind: str
    start: float
    end: float
    replica: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


# ---------------------------------------------------------------------- #
# Decomposition
# ---------------------------------------------------------------------- #


def decompose(
    arrival: float,
    finish: float,
    *,
    first_schedule: float,
    first_token: float,
    dispatch: float | None = None,
    overlays: Iterable[tuple[str, float, float, int | None]] = (),
    replica: int | None = None,
) -> tuple[Segment, ...]:
    """Partition ``[arrival, finish]`` into attributed segments.

    ``overlays`` are ``(kind, start, end, replica)`` intervals recorded by
    the tracer; they are clamped into the request window and resolved by
    priority on the elementary intervals their endpoints induce. The
    result is an exact tiling of the window, so segment durations sum to
    the e2e latency by construction.
    """
    if finish - arrival <= 0.0:
        return ()

    def clamp(t: float) -> float:
        return min(max(t, arrival), finish)

    d = clamp(arrival if dispatch is None else dispatch)
    s = clamp(max(d, first_schedule))
    f = clamp(max(s, first_token))

    if dispatch is None:
        # No cluster dispatch mark: the whole pre-schedule wait is queue.
        base = [(QUEUE_WAIT, arrival, s), (PREFILL, s, f), (DECODE, f, finish)]
    else:
        base = [
            (QUEUE_WAIT, arrival, d),
            (PREFILL_WAIT, d, s),
            (PREFILL, s, f),
            (DECODE, f, finish),
        ]

    cuts = {arrival, finish, d, s, f}
    clipped: list[tuple[str, float, float, int | None]] = []
    for kind, lo, hi, rep in overlays:
        if kind not in _OVERLAY_PRIORITY:
            raise TraceInvariantError(
                "T2", f"unknown overlay kind {kind!r}"
            )
        lo, hi = clamp(lo), clamp(hi)
        if hi - lo <= 0.0:
            continue
        clipped.append((kind, lo, hi, rep))
        cuts.add(lo)
        cuts.add(hi)

    points = sorted(cuts)
    merged: list[list] = []  # [kind, start, end, replica]
    for i in range(len(points) - 1):
        a, b = points[i], points[i + 1]
        if b - a <= 0.0:
            continue
        mid = 0.5 * (a + b)
        base_kind = base[-1][0]
        for kind, lo, hi in base:
            if lo <= mid < hi:
                base_kind = kind
                break
        best_kind, best_rep, best_rank = base_kind, replica, 0
        for kind, lo, hi, rep in clipped:
            if not (lo <= mid < hi):
                continue
            if kind in _WAIT_ONLY and base_kind not in (QUEUE_WAIT, PREFILL_WAIT):
                continue
            rank = _OVERLAY_PRIORITY[kind]
            if rank > best_rank:
                best_kind, best_rep, best_rank = kind, rep, rank
        if merged and merged[-1][0] == best_kind and merged[-1][3] == best_rep:
            merged[-1][2] = b
        else:
            merged.append([best_kind, a, b, best_rep])

    return tuple(Segment(kind=k, start=a, end=b, replica=r) for k, a, b, r in merged)


# ---------------------------------------------------------------------- #
# Invariants (simsan-style)
# ---------------------------------------------------------------------- #


def check_conservation(
    request_id: int,
    segments: TypingSequence[Segment],
    e2e: float,
    *,
    tol: float = _TOL,
) -> None:
    """Assert the critical path explains the request exactly.

    T2 (contiguity): segments are ordered, non-overlapping and gap-free.
    T1 (conservation): segment durations sum to ``e2e`` within
    ``tol * max(1, e2e)``.
    """
    scale = tol * max(1.0, abs(e2e))
    prev_end: float | None = None
    for seg in segments:
        if seg.duration < -scale:
            raise TraceInvariantError(
                "T2",
                f"segment {seg.kind} has negative duration {seg.duration!r}",
                request_id=request_id,
            )
        if prev_end is not None and abs(seg.start - prev_end) > scale:
            raise TraceInvariantError(
                "T2",
                f"gap/overlap before segment {seg.kind}: "
                f"previous ends at {prev_end!r}, next starts at {seg.start!r}",
                request_id=request_id,
            )
        prev_end = seg.end
    total = sum(seg.duration for seg in segments)
    if abs(total - e2e) > scale:
        raise TraceInvariantError(
            "T1",
            f"segments sum to {total!r} but e2e is {e2e!r} "
            f"(difference {total - e2e!r})",
            request_id=request_id,
        )


# ---------------------------------------------------------------------- #
# Tail aggregation
# ---------------------------------------------------------------------- #


def _percentile(values: TypingSequence[float], q: float) -> float:
    """Linear-interpolated percentile (numpy 'linear' convention)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class TailReport:
    """Where the p-tail's end-to-end time went, summed across requests."""

    percentile: float
    threshold: float
    num_traces: int
    num_tail: int
    total_e2e: float
    seconds_by_kind: dict[str, float]

    def share(self, kind: str) -> float:
        if self.total_e2e <= 0.0:
            return 0.0
        return self.seconds_by_kind.get(kind, 0.0) / self.total_e2e

    def ranked(self) -> list[tuple[str, float]]:
        """Segment kinds by tail seconds, largest contributor first."""
        items = [(k, v) for k, v in self.seconds_by_kind.items() if v > 0.0]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items


def aggregate_tail(traces: TypingSequence[object], percentile: float = 99.0) -> TailReport:
    """Rank segment contributions across the e2e tail of ``traces``.

    ``traces`` are duck-typed: each needs ``.e2e`` and ``.segments``.
    The tail is every trace at or above the e2e percentile (at least
    one — the worst request — even for tiny populations).
    """
    if not 0.0 <= percentile <= 100.0:
        raise SimulationError("percentile must be in [0, 100]")
    e2es = [t.e2e for t in traces]
    threshold = _percentile(e2es, percentile)
    tail = [t for t in traces if t.e2e >= threshold]
    if not tail and traces:
        worst = max(traces, key=lambda t: t.e2e)
        tail = [worst]
        threshold = worst.e2e
    seconds: dict[str, float] = {}
    total = 0.0
    for t in tail:
        total += t.e2e
        for seg in t.segments:
            seconds[seg.kind] = seconds.get(seg.kind, 0.0) + seg.duration
    return TailReport(
        percentile=percentile,
        threshold=threshold,
        num_traces=len(traces),
        num_tail=len(tail),
        total_e2e=total,
        seconds_by_kind=seconds,
    )
