"""Per-request distributed tracing on the shared virtual clock.

The telemetry hub (PR 7) answers *aggregate* questions; this module
answers the causal one — "where did *that request's* seconds go?" — by
recording a request-scoped span tree across every replica a request
touched, then decomposing its end-to-end latency into additive segments
via :mod:`repro.obs.critical_path`.

Design contract (same as telemetry): ``EngineOptions.tracing`` is a
:class:`Tracer` or ``None``; when ``None`` every hot loop takes its
exact pre-tracing instruction path, so tracing off is bit-exact with the
pinned goldens. When on, engines and the cluster simulator record O(1)
per-request *marks* (dispatch, withdraw/re-dispatch, preempt/resume, KV
handoff) at life-cycle transitions — never per token — and the full
span tree is derived at :meth:`Tracer.finalize` by combining marks with
the sticky timestamps already carried by each
:class:`~repro.runtime.latency.RequestLatency` record. Paths that record
no marks at all (the fluid fast path, decoupled replicas) still produce
complete traces backfilled from their latency records.

Sampling keeps million-request runs bounded:

- ``all`` — trace every finished request;
- ``slo_miss`` — only requests that missed the TTFT/TPOT SLO;
- ``p99_exemplars`` — the worst 1% by e2e (at least one request);
- ``rate:<f>`` — a deterministic hash-based fraction ``f`` of requests
  (crc32 of the request id — no RNG, so runs stay reproducible and
  mark recording itself is filtered, bounding memory during the run).

Traces export as ``repro-trace-v1`` JSONL and as Chrome trace-event JSON
loadable in Perfetto (``chrome://tracing``): one track (pid) per
replica, one row (tid) per request, with flow arrows for the
follows-from links a storm re-dispatch or disaggregated KV handoff
creates between replicas.
"""

from __future__ import annotations

import json
import warnings
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence as TypingSequence

from repro.errors import ConfigurationError, SimulationError
from repro.obs.critical_path import (
    DECODE,
    KV_HANDOFF,
    PREEMPT_STALL,
    PREFILL,
    PREFILL_WAIT,
    QUEUE_WAIT,
    STORM_REDISPATCH,
    SWAP_STALL,
    WARMUP_WAIT,
    Segment,
    check_conservation,
    decompose,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.latency import RequestLatency
    from repro.runtime.metrics import EngineResult

TRACE_SCHEMA = "repro-trace-v1"

SAMPLING_MODES = ("all", "slo_miss", "p99_exemplars")

#: Cap on distinct requests whose marks are held during a run; beyond it
#: new requests are counted in ``dropped_requests`` instead of recorded.
DEFAULT_MAX_REQUESTS = 100_000

#: Fraction of the population kept by ``p99_exemplars``.
_EXEMPLAR_FRACTION = 0.01


def parse_sampling(sampling: str) -> tuple[str, float]:
    """Validate a sampling spec; returns ``(mode, rate)``."""
    if sampling in SAMPLING_MODES:
        return sampling, 1.0
    if sampling.startswith("rate:"):
        try:
            rate = float(sampling.split(":", 1)[1])
        except ValueError:
            rate = -1.0
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(
                f"trace sampling rate must be in (0, 1], got {sampling!r}"
            )
        return "rate", rate
    raise ConfigurationError(
        f"unknown trace sampling {sampling!r}; expected one of "
        f"{', '.join(SAMPLING_MODES)} or rate:<f>"
    )


def _hash_keep(request_id: int, rate: float) -> bool:
    """Deterministic, seed-independent per-request coin flip."""
    return zlib.crc32(str(request_id).encode("ascii")) / 4294967296.0 < rate


# ---------------------------------------------------------------------- #
# Trace records
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Span:
    """One node of a request's span tree (root: the request itself)."""

    span_id: int
    parent_id: int | None
    kind: str
    start: float
    end: float
    replica: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Link:
    """A follows-from edge across replicas (storm re-dispatch, KV handoff)."""

    type: str
    kind: str
    t: float
    from_replica: int | None
    to_replica: int | None


@dataclass(frozen=True)
class RequestTrace:
    """The full trace of one request: span tree, critical path, links."""

    request_id: int
    arrival: float
    finish: float
    replica: int | None
    num_preemptions: int
    spans: tuple[Span, ...]
    segments: tuple[Segment, ...]
    links: tuple[Link, ...]

    @property
    def e2e(self) -> float:
        return max(0.0, self.finish - self.arrival)

    def seconds_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.duration
        return out


# ---------------------------------------------------------------------- #
# The tracer
# ---------------------------------------------------------------------- #


class Tracer:
    """Request-scoped trace collector behind ``EngineOptions.tracing``.

    Mark-recording methods (``note_*``) are safe to call from any layer
    that knows a request id and the virtual clock; they are O(1) and
    allocate only for requests the sampling spec keeps. All call sites
    must be guarded ``if tr is not None:`` so the off path stays
    instruction-identical (the same contract simlint R4 enforces for
    telemetry).
    """

    def __init__(
        self,
        sampling: str = "all",
        *,
        max_requests: int = DEFAULT_MAX_REQUESTS,
    ) -> None:
        if max_requests < 1:
            raise ConfigurationError("tracer max_requests must be >= 1")
        self.sampling = sampling
        self._mode, self._rate = parse_sampling(sampling)
        self.max_requests = max_requests
        self._marks: dict[int, list[tuple]] = {}
        self._warming: tuple[tuple[int, float, float], ...] = ()
        self.dropped_requests = 0
        self.num_requests = 0
        self.traces: tuple[RequestTrace, ...] = ()

    # ------------------------------------------------------------------ #
    # Marks (recorded during the run)
    # ------------------------------------------------------------------ #

    def _mark(self, request_id: int, mark: tuple) -> None:
        if self._mode == "rate" and not _hash_keep(request_id, self._rate):
            return
        marks = self._marks.get(request_id)
        if marks is None:
            if len(self._marks) >= self.max_requests:
                self.dropped_requests += 1
                return
            marks = self._marks[request_id] = []
        marks.append(mark)

    def note_dispatch(self, t: float, request_id: int, replica: int) -> None:
        """The router handed the request to ``replica`` at ``t``."""
        self._mark(request_id, ("dispatch", t, replica))

    def note_withdraw(self, t: float, request_id: int, replica: int) -> None:
        """A storm/drain withdrew the queued request from ``replica``."""
        self._mark(request_id, ("withdraw", t, replica))

    def note_redispatch(self, t: float, request_id: int, replica: int) -> None:
        """A withdrawn request was re-dispatched to ``replica``."""
        self._mark(request_id, ("redispatch", t, replica))

    def note_preempt(
        self, t: float, request_id: int, kind: str = "recompute"
    ) -> None:
        """The running request was preempted (``recompute`` or ``swap``)."""
        self._mark(request_id, ("preempt", t, kind))

    def note_resume(self, t: float, request_id: int) -> None:
        """The request made forward progress again after a preemption.

        Ignored when no stall is open, so engines may call it at every
        prefill-completion / swap-in site without tracking state.
        """
        self._mark(request_id, ("resume", t))

    def note_handoff(
        self,
        t: float,
        request_id: int,
        src_replica: int,
        dst_replica: int,
        until: float | None = None,
    ) -> None:
        """Prefill->decode KV handoff across pools at ``t``; when the
        decode-side admission time is known, ``until`` bounds the
        transfer-wait segment."""
        self._mark(request_id, ("handoff", t, src_replica, dst_replica, until))

    def set_warming_windows(
        self, windows: Iterable[tuple[int, float, float]]
    ) -> None:
        """Record fleet warming windows ``(replica_id, created_at,
        active_at)`` so waits can be attributed to warm-up."""
        self._warming = tuple(windows)

    # ------------------------------------------------------------------ #
    # Finalize (derive traces from marks + latency records)
    # ------------------------------------------------------------------ #

    def finalize(
        self,
        result: "EngineResult | None",
        *,
        ttft_slo: float | None = None,
        tpot_slo: float | None = None,
    ) -> tuple[RequestTrace, ...]:
        """Build traces for the sampled subset of finished requests."""
        if result is None or result.latency is None:
            self.traces = ()
            return self.traces
        records = result.latency.records
        self.num_requests = len(records)
        selected = self._select(records, ttft_slo=ttft_slo, tpot_slo=tpot_slo)
        traces = []
        for rec in selected:
            trace = self._build(rec)
            check_conservation(rec.request_id, trace.segments, rec.e2e)
            traces.append(trace)
        self.traces = tuple(traces)
        return self.traces

    def _select(
        self,
        records: TypingSequence["RequestLatency"],
        *,
        ttft_slo: float | None,
        tpot_slo: float | None,
    ) -> list["RequestLatency"]:
        if self._mode == "all":
            return list(records)
        if self._mode == "rate":
            return [r for r in records if _hash_keep(r.request_id, self._rate)]
        if self._mode == "slo_miss":
            misses = []
            for r in records:
                if ttft_slo is not None and r.ttft > ttft_slo:
                    misses.append(r)
                elif (
                    tpot_slo is not None
                    and r.tpot is not None
                    and r.tpot > tpot_slo
                ):
                    misses.append(r)
            return misses
        # p99_exemplars: worst fraction by e2e, at least one request.
        count = max(1, int(len(records) * _EXEMPLAR_FRACTION))
        ranked = sorted(records, key=lambda r: (-r.e2e, r.request_id))
        return sorted(ranked[:count], key=lambda r: r.request_id)

    def _build(self, rec: "RequestLatency") -> RequestTrace:
        arrival, finish = rec.arrival_time, rec.finish_time
        marks = sorted(self._marks.get(rec.request_id, ()), key=lambda m: m[1])
        dispatch: float | None = None
        replica: int | None = None
        overlays: list[tuple[str, float, float, int | None]] = []
        links: list[Link] = []
        open_stall: tuple[str, float] | None = None
        pending_withdraw: tuple[float, int] | None = None
        for mark in marks:
            tag = mark[0]
            if tag == "dispatch":
                _, t, rep = mark
                if dispatch is None:
                    dispatch = t
                replica = rep
            elif tag == "withdraw":
                _, t, rep = mark
                if pending_withdraw is None:
                    pending_withdraw = (t, rep)
            elif tag == "redispatch":
                _, t, rep = mark
                if pending_withdraw is not None:
                    w_t, w_rep = pending_withdraw
                    # The storm's cost is the re-queued wait at the new
                    # replica: withdraw and re-dispatch share one instant
                    # in the coupled loop, so the span runs until the
                    # request is actually scheduled.
                    overlays.append(
                        (STORM_REDISPATCH, w_t, max(t, rec.first_schedule_time), rep)
                    )
                    links.append(
                        Link("follows_from", "redispatch", t, w_rep, rep)
                    )
                    pending_withdraw = None
                replica = rep
            elif tag == "preempt":
                _, t, kind = mark
                if open_stall is None:
                    open_stall = (kind, t)
            elif tag == "resume":
                _, t = mark
                if open_stall is not None:
                    kind, start = open_stall
                    stall = SWAP_STALL if kind == "swap" else PREEMPT_STALL
                    overlays.append((stall, start, t, replica))
                    open_stall = None
            elif tag == "handoff":
                _, t, src, dst, until = mark
                links.append(Link("follows_from", "kv_handoff", t, src, dst))
                if until is not None and until > t:
                    overlays.append((KV_HANDOFF, t, until, dst))
                replica = dst
        if open_stall is not None:
            kind, start = open_stall
            stall = SWAP_STALL if kind == "swap" else PREEMPT_STALL
            overlays.append((stall, start, finish, replica))
        if pending_withdraw is not None:
            w_t, w_rep = pending_withdraw
            if rec.first_schedule_time > w_t:
                overlays.append(
                    (STORM_REDISPATCH, w_t, rec.first_schedule_time, w_rep)
                )
        wait_start = arrival if dispatch is None else dispatch
        for rep, created, active in self._warming:
            lo = max(wait_start, created)
            hi = min(rec.first_schedule_time, active)
            if hi > lo:
                overlays.append((WARMUP_WAIT, lo, hi, rep))
        segments = decompose(
            arrival,
            finish,
            first_schedule=rec.first_schedule_time,
            first_token=rec.first_token_time,
            dispatch=dispatch,
            overlays=overlays,
            replica=replica,
        )
        spans = [
            Span(
                span_id=0,
                parent_id=None,
                kind="request",
                start=arrival,
                end=finish,
                replica=replica,
            )
        ]
        for i, seg in enumerate(segments):
            spans.append(
                Span(
                    span_id=i + 1,
                    parent_id=0,
                    kind=seg.kind,
                    start=seg.start,
                    end=seg.end,
                    replica=seg.replica,
                )
            )
        return RequestTrace(
            request_id=rec.request_id,
            arrival=arrival,
            finish=finish,
            replica=replica,
            num_preemptions=rec.num_preemptions,
            spans=tuple(spans),
            segments=segments,
            links=tuple(links),
        )


# ---------------------------------------------------------------------- #
# repro-trace-v1 JSONL export / import
# ---------------------------------------------------------------------- #


def _trace_row(trace: RequestTrace) -> dict:
    return {
        "request_id": trace.request_id,
        "arrival": trace.arrival,
        "finish": trace.finish,
        "e2e": trace.e2e,
        "replica": trace.replica,
        "num_preemptions": trace.num_preemptions,
        "spans": [
            {
                "id": s.span_id,
                "parent": s.parent_id,
                "kind": s.kind,
                "start": s.start,
                "end": s.end,
                "replica": s.replica,
            }
            for s in trace.spans
        ],
        "segments": [
            {
                "kind": s.kind,
                "start": s.start,
                "end": s.end,
                "replica": s.replica,
            }
            for s in trace.segments
        ],
        "links": [
            {
                "type": ln.type,
                "kind": ln.kind,
                "t": ln.t,
                "from_replica": ln.from_replica,
                "to_replica": ln.to_replica,
            }
            for ln in trace.links
        ],
    }


def write_trace_jsonl(
    tracer: Tracer, path: str, *, meta: dict | None = None
) -> int:
    """Write finalized traces as repro-trace-v1 JSONL; returns the number
    of traces written (the file carries one extra header line)."""
    header = {
        "schema": TRACE_SCHEMA,
        "sampling": tracer.sampling,
        "num_requests": tracer.num_requests,
        "num_traced": len(tracer.traces),
        "dropped_requests": tracer.dropped_requests,
        "meta": dict(meta or {}),
    }
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for trace in tracer.traces:
            fh.write(json.dumps(_trace_row(trace), sort_keys=True) + "\n")
    return len(tracer.traces)


@dataclass(frozen=True)
class TraceArtifact:
    """A loaded repro-trace-v1 artifact."""

    sampling: str
    num_requests: int
    num_traced: int
    dropped_requests: int
    meta: dict
    traces: tuple[RequestTrace, ...]
    truncated: bool = False


def _trace_from_row(row: dict) -> RequestTrace:
    spans = tuple(
        Span(
            span_id=s["id"],
            parent_id=s["parent"],
            kind=s["kind"],
            start=s["start"],
            end=s["end"],
            replica=s.get("replica"),
        )
        for s in row.get("spans", ())
    )
    segments = tuple(
        Segment(
            kind=s["kind"],
            start=s["start"],
            end=s["end"],
            replica=s.get("replica"),
        )
        for s in row.get("segments", ())
    )
    links = tuple(
        Link(
            type=ln["type"],
            kind=ln["kind"],
            t=ln["t"],
            from_replica=ln.get("from_replica"),
            to_replica=ln.get("to_replica"),
        )
        for ln in row.get("links", ())
    )
    return RequestTrace(
        request_id=row["request_id"],
        arrival=row["arrival"],
        finish=row["finish"],
        replica=row.get("replica"),
        num_preemptions=row.get("num_preemptions", 0),
        spans=spans,
        segments=segments,
        links=links,
    )


def load_trace_jsonl(path: str) -> TraceArtifact:
    """Load a repro-trace-v1 artifact.

    A truncated final line (an interrupted writer) is tolerated with a
    warning rather than silently under-reporting or crashing; any other
    malformed content is an error.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in (raw.strip() for raw in fh) if line]
    if not lines:
        raise ConfigurationError(f"empty trace artifact: {path}")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"unreadable trace artifact header in {path}: {exc}"
        ) from exc
    if header.get("schema") != TRACE_SCHEMA:
        raise ConfigurationError(
            f"not a {TRACE_SCHEMA} artifact: {path} "
            f"(schema={header.get('schema')!r})"
        )
    traces = []
    truncated = False
    for idx, line in enumerate(lines[1:], start=2):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            if idx == len(lines):
                truncated = True
                warnings.warn(
                    f"trace artifact {path} is truncated at line {idx}; "
                    f"loaded {len(traces)} of {header.get('num_traced', '?')} "
                    "traces",
                    stacklevel=2,
                )
                break
            raise ConfigurationError(
                f"malformed trace artifact row at {path}:{idx}: {exc}"
            ) from exc
        traces.append(_trace_from_row(row))
    if not truncated and header.get("num_traced") not in (None, len(traces)):
        truncated = True
        warnings.warn(
            f"trace artifact {path} reports {header['num_traced']} traces "
            f"but contains {len(traces)}; treating it as truncated",
            stacklevel=2,
        )
    return TraceArtifact(
        sampling=header.get("sampling", "all"),
        num_requests=header.get("num_requests", len(traces)),
        num_traced=header.get("num_traced", len(traces)),
        dropped_requests=header.get("dropped_requests", 0),
        meta=header.get("meta", {}),
        traces=tuple(traces),
        truncated=truncated,
    )


# ---------------------------------------------------------------------- #
# Chrome trace-event export (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------- #


def chrome_trace_events(traces: TypingSequence[RequestTrace]) -> dict:
    """Traces as a Chrome trace-event JSON object.

    One track (pid) per replica, one row (tid) per request; segments are
    complete ("X") slices with microsecond timestamps, and follows-from
    links become flow ("s"/"f") arrow pairs between replicas.
    """
    events: list[dict] = []
    flow_id = 0
    for trace in traces:
        for seg in trace.segments:
            events.append(
                {
                    "name": seg.kind,
                    "cat": "request",
                    "ph": "X",
                    "ts": seg.start * 1e6,
                    "dur": seg.duration * 1e6,
                    "pid": seg.replica if seg.replica is not None else 0,
                    "tid": trace.request_id,
                    "args": {
                        "request_id": trace.request_id,
                        "e2e_s": trace.e2e,
                        "num_preemptions": trace.num_preemptions,
                    },
                }
            )
        for link in trace.links:
            flow_id += 1
            src = link.from_replica if link.from_replica is not None else 0
            dst = link.to_replica if link.to_replica is not None else 0
            common = {
                "name": link.kind,
                "cat": "flow",
                "id": flow_id,
                "tid": trace.request_id,
            }
            events.append(
                {**common, "ph": "s", "ts": link.t * 1e6, "pid": src}
            )
            events.append(
                {**common, "ph": "f", "bp": "e", "ts": link.t * 1e6, "pid": dst}
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(traces: TypingSequence[RequestTrace], path: str) -> int:
    """Write a Perfetto-loadable Chrome trace JSON; returns event count."""
    payload = chrome_trace_events(traces)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])


# ---------------------------------------------------------------------- #
# ASCII flame view
# ---------------------------------------------------------------------- #

_FLAME_GLYPHS = {
    QUEUE_WAIT: "q",
    PREFILL_WAIT: "w",
    WARMUP_WAIT: "W",
    STORM_REDISPATCH: "s",
    PREFILL: "P",
    KV_HANDOFF: "K",
    PREEMPT_STALL: "x",
    SWAP_STALL: "S",
    DECODE: "D",
}


def render_trace_flame(trace: RequestTrace, width: int = 64) -> str:
    """One request's critical path as a proportional ASCII bar."""
    if width < 8:
        raise SimulationError("flame width must be >= 8")
    e2e = trace.e2e
    lines = [
        f"request {trace.request_id}"
        + (f" @ replica {trace.replica}" if trace.replica is not None else "")
        + f": e2e {e2e:.3f}s"
        + (
            f", {trace.num_preemptions} preemption(s)"
            if trace.num_preemptions
            else ""
        )
    ]
    if e2e <= 0.0 or not trace.segments:
        lines.append("  (zero-length request)")
        return "\n".join(lines)
    bar = []
    for seg in trace.segments:
        cells = max(1, round(seg.duration / e2e * width))
        bar.append(_FLAME_GLYPHS.get(seg.kind, "?") * cells)
    lines.append("  [" + "".join(bar) + "]")
    for seg in trace.segments:
        glyph = _FLAME_GLYPHS.get(seg.kind, "?")
        rep = f" @r{seg.replica}" if seg.replica is not None else ""
        lines.append(
            f"  {glyph} {seg.kind:<16} {seg.duration:>9.4f}s "
            f"({seg.duration / e2e * 100.0:5.1f}%)"
            f"  [{seg.start:.3f}, {seg.end:.3f}]{rep}"
        )
    for link in trace.links:
        lines.append(
            f"  ~ {link.kind}: replica {link.from_replica} -> "
            f"{link.to_replica} @ {link.t:.3f}s"
        )
    return "\n".join(lines)
