"""ASCII dashboard over a telemetry hub (``repro obs``).

Renders sparkline timelines for the cluster- and replica-level series, a
scale-event annotation list (with the autoscaler's recorded reasons) and
the top-N worst windows by SLO burn rate — the triage view: *when* did
queues build, *why* did the fleet scale, *how fast* did the error budget
burn. Pure text, no dependencies beyond the hub itself, so it renders
identically from a live run or a loaded JSONL artifact.
"""

from __future__ import annotations

from repro.obs.telemetry import Telemetry

# Density ramp of the sparklines (portable ASCII, low to high).
_RAMP = " .:-=+*#@"

# Cluster-level series rendered first, in this order, when present.
_LEAD_SERIES = (
    "cluster.arrival_rate",
    "cluster.active_dp",
    "cluster.provisioning",
    "cluster.draining",
    "cluster.queued_prefill_tokens",
    "ttft.p99",
    "tpot.p99",
    "slo.attainment",
    "slo.burn_rate",
)

# At most this many replicas get their own timeline rows; larger fleets
# are summarized by the cluster series (noted in the output).
_MAX_REPLICA_ROWS = 8

_REPLICA_SUFFIXES = ("queued_prefill_tokens", "kv_util", "running")


def sparkline(points: list[tuple[float, float]], width: int, t_end: float | None = None) -> str:
    """Resample ``points`` onto ``width`` buckets over [0, t_end] and map
    each bucket's max (sample-and-hold for empty buckets) onto the ramp."""
    if not points or width < 1:
        return " " * width
    if t_end is None:
        t_end = points[-1][0]
    t_end = max(t_end, points[-1][0], 1e-12)
    buckets: list[float | None] = [None] * width
    for t, v in points:
        idx = min(width - 1, int(t / t_end * width))
        prev = buckets[idx]
        buckets[idx] = v if prev is None else max(prev, v)
    held = 0.0
    values = []
    for b in buckets:
        if b is not None:
            held = b
        values.append(held)
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        level = len(_RAMP) - 1 if hi > 0 else 0
        return _RAMP[level] * width
    out = []
    for v in values:
        level = int((v - lo) / span * (len(_RAMP) - 1) + 0.5)
        out.append(_RAMP[level])
    return "".join(out)


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:.3g}"
    if abs(v) >= 1:
        return f"{v:.4g}"
    return f"{v:.3g}"


def _series_row(tel: Telemetry, name: str, width: int, t_end: float, label_w: int) -> str:
    pts = tel.series[name]
    values = [v for _, v in pts]
    spark = sparkline(pts, width, t_end)
    return (
        f"{name:<{label_w}} |{spark}| "
        f"min {_fmt(min(values))}  max {_fmt(max(values))}  last {_fmt(values[-1])}"
    )


def _replica_ids(tel: Telemetry) -> list[int]:
    ids = set()
    for name in tel.series:
        if name.startswith("replica") and "." in name:
            head = name.split(".", 1)[0][len("replica"):]
            if head.isdigit():
                ids.add(int(head))
    return sorted(ids)


def render_dashboard(
    tel: Telemetry,
    width: int = 60,
    top: int = 3,
    max_events: int = 12,
) -> str:
    """The full text dashboard for one run's telemetry."""
    lines: list[str] = []
    meta = tel.meta
    t_end = float(meta.get("total_time") or max(
        (pts[-1][0] for pts in tel.series.values() if pts), default=0.0
    ))
    title = "telemetry"
    if meta.get("engine"):
        title = f"telemetry: {meta['engine']}[{meta.get('label', '')}]"
    lines.append(title)
    lines.append("=" * len(title))
    desc = []
    if meta.get("num_requests"):
        desc.append(f"{meta['num_requests']} requests")
    desc.append(f"{t_end:.1f} virtual s")
    desc.append(f"sample {tel.interval_s:g}s")
    if meta.get("window_s"):
        desc.append(f"window {meta['window_s']:g}s")
    if meta.get("ttft_slo") is not None:
        desc.append(f"ttft slo {meta['ttft_slo']:g}s")
    if meta.get("tpot_slo") is not None:
        desc.append(f"tpot slo {meta['tpot_slo']:g}s")
    if tel.dropped_events:
        desc.append(f"{tel.dropped_events} events dropped at cap")
    lines.append(" | ".join(desc))
    lines.append("")

    shown = [n for n in _LEAD_SERIES if tel.series.get(n)]
    replica_ids = _replica_ids(tel)
    replica_rows = []
    for rid in replica_ids[:_MAX_REPLICA_ROWS]:
        for suffix in _REPLICA_SUFFIXES:
            name = f"replica{rid}.{suffix}"
            if tel.series.get(name):
                replica_rows.append(name)
    all_rows = shown + replica_rows
    if all_rows:
        label_w = max(len(n) for n in all_rows)
        lines.append(f"timelines (0 .. {t_end:.1f}s, ramp '{_RAMP.strip()}' low->high)")
        for name in shown:
            lines.append("  " + _series_row(tel, name, width, t_end, label_w))
        if replica_rows:
            lines.append("")
            for name in replica_rows:
                lines.append("  " + _series_row(tel, name, width, t_end, label_w))
            if len(replica_ids) > _MAX_REPLICA_ROWS:
                lines.append(
                    f"  ... {len(replica_ids) - _MAX_REPLICA_ROWS} more replicas "
                    "(see cluster.* series)"
                )
        lines.append("")

    scale_events = tel.events_of("scale")
    if scale_events:
        lines.append(f"scale events ({len(scale_events)})")
        for e in scale_events[:max_events]:
            reason = e.get("reason") or ""
            suffix = f"  [{reason}]" if reason else ""
            lines.append(
                f"  t={e['t']:9.2f}s  {e.get('action', '?'):<10} "
                f"replica {e.get('replica', '?')}  active_dp={e.get('active_dp', '?')}"
                f"{suffix}"
            )
        if len(scale_events) > max_events:
            lines.append(f"  ... {len(scale_events) - max_events} more")
        lines.append("")

    storms = tel.events_of("storm")
    if storms:
        moved = sum(int(e.get("moved", 0)) for e in storms)
        lines.append(f"storm re-dispatches: {len(storms)} ({moved} requests moved)")
        lines.append("")

    metric, worst = worst_windows(tel, top)
    if worst:
        lines.append(f"worst windows by {metric}")
        for t, v in worst:
            lines.append(f"  t={t:9.2f}s  {metric}={_fmt(v)}")
        lines.append("")

    if not all_rows and not tel.events:
        lines.append("(empty hub: run with --telemetry to record series)")
    return "\n".join(lines).rstrip() + "\n"


def worst_windows(tel: Telemetry, top: int = 3) -> tuple[str, list[tuple[float, float]]]:
    """``(metric, window-end/value pairs)`` of the ``top`` worst windows,
    ranked by SLO burn rate — falling back to ttft.p99 when the budget
    never burned (or no burn series exists)."""
    pts = tel.series.get("slo.burn_rate") or []
    if any(v > 0 for _, v in pts):
        ranked = sorted(pts, key=lambda p: (-p[1], p[0]))
        return "slo.burn_rate", [(t, v) for t, v in ranked[:top] if v > 0]
    pts = tel.series.get("ttft.p99") or []
    if not pts:
        return "ttft.p99", []
    ranked = sorted(pts, key=lambda p: (-p[1], p[0]))
    return "ttft.p99", ranked[:top]
