"""Telemetry artifact I/O: JSONL (full) and CSV (series-only) export.

The JSONL schema (``repro-obs-v1``) is line-oriented so million-point
artifacts stream without a full parse:

- **line 1** — header object: ``{"schema": "repro-obs-v1",
  "interval_s": ..., "slo_budget": ..., "meta": {...},
  "counters": {...}, "gauges": {...}, "dropped_events": N}``
- **series rows** — ``{"t": <virtual seconds>, "series": <name>,
  "value": <float>}``
- **event rows** — ``{"t": <virtual seconds>, "event": <kind>,
  ...kind-specific fields}`` (e.g. ``scale`` events carry ``action``,
  ``replica``, ``active_dp`` and the autoscaler's recorded ``reason``).

:func:`load_jsonl` reconstructs a :class:`~repro.obs.telemetry.Telemetry`
from an artifact, so ``repro obs <artifact>`` renders exactly what a
live run would. A trailing partial line — the normal state of an
artifact being tailed mid-write (``repro obs --follow``) — is tolerated
with a warning; corruption anywhere else still raises.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry

SCHEMA = "repro-obs-v1"


def _header(tel: Telemetry) -> dict:
    return {
        "schema": SCHEMA,
        "interval_s": tel.interval_s,
        "slo_budget": tel.slo_budget,
        "meta": tel.meta,
        "counters": {name: c.value for name, c in sorted(tel.counters.items())},
        "gauges": {name: g.value for name, g in sorted(tel.gauges.items())},
        "dropped_events": tel.dropped_events,
    }


def write_jsonl(tel: Telemetry, path: str | Path) -> Path:
    """Write the full hub (header, every series point, every event)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(json.dumps(_header(tel), sort_keys=True) + "\n")
        for name in sorted(tel.series):
            for t, v in tel.series[name]:
                fh.write(json.dumps({"t": t, "series": name, "value": v}) + "\n")
        for e in tel.events:
            fh.write(json.dumps(e) + "\n")
    return path


def write_csv(tel: Telemetry, path: str | Path) -> Path:
    """Write every series point as ``t,series,value`` rows (events and
    meta are JSONL-only — CSV is the spreadsheet-import view)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write("t,series,value\n")
        for name in sorted(tel.series):
            for t, v in tel.series[name]:
                fh.write(f"{t!r},{name},{v!r}\n")
    return path


def load_jsonl(path: str | Path) -> Telemetry:
    """Reconstruct a hub from a ``repro-obs-v1`` JSONL artifact."""
    path = Path(path)
    with path.open() as fh:
        first = fh.readline()
        if not first.strip():
            raise ConfigurationError(f"{path}: empty telemetry artifact")
        header = json.loads(first)
        if header.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"{path}: unknown telemetry schema {header.get('schema')!r} "
                f"(expected {SCHEMA})"
            )
        tel = Telemetry(
            interval_s=header.get("interval_s", 1.0),
            slo_budget=header.get("slo_budget", 0.01),
        )
        tel.meta = dict(header.get("meta", {}))
        for name, value in header.get("counters", {}).items():
            tel.counter(name).value = value
        for name, value in header.get("gauges", {}).items():
            tel.gauge(name).set(value)
        tel.dropped_events = int(header.get("dropped_events", 0))
        lines = fh.readlines()
    last = len(lines) - 1
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            if i == last:
                # A half-written final row: the writer is mid-append (the
                # --follow tail races the exporter by design). Render what
                # made it to disk and say so.
                warnings.warn(
                    f"{path}: truncated telemetry artifact (partial final "
                    "row dropped; the writer may still be running)",
                    stacklevel=2,
                )
                break
            raise ConfigurationError(
                f"{path}: malformed telemetry row {i + 2}: {line[:80]!r}"
            ) from None
        if "series" in row:
            tel.point(row["series"], row["t"], row["value"])
        elif "event" in row:
            kind = row.pop("event")
            t = row.pop("t")
            tel.event(t, kind, **row)
        else:
            raise ConfigurationError(f"{path}: unrecognized telemetry row {row}")
    return tel
