"""Low-overhead telemetry hub on the simulator's shared virtual clock.

Production serving stacks are judged by time-series observability —
rolling queue depth, KV utilization, batch size, latency percentiles per
scrape interval — while the simulator's :class:`EngineResult` collapses a
run into end-state aggregates. This module adds the missing layer: a
:class:`Telemetry` hub holding typed instruments (:class:`Counter`,
:class:`Gauge`, :class:`Histogram` with windowed p50/p90/p99), raw
``(t, value)`` series, and a bounded event log, all stamped with the
*virtual* clock so every exported timeline lines up with the traces.

Design constraints, in order:

1. **Zero overhead when off.** Nothing in this module is imported or
   executed unless ``EngineOptions.telemetry`` carries a hub; the engine
   loops keep their exact instruction paths (the bit-exactness contract
   the goldens pin).
2. **Cheap when on.** The per-iteration hook is one float compare
   (:meth:`ReplicaProbe.tick` early-outs until the next sample boundary);
   everything heavier happens once per sample interval or once per run.
3. **One schema for every fidelity tier.** The event-coupled path, the
   decoupled path and the fluid fast path all emit the same series names,
   so ``repro obs`` renders any run artifact.

Series naming convention::

    replica<ID>.queued_prefill_tokens   sampled, per replica
    replica<ID>.running                 sampled, per replica
    replica<ID>.kv_util                 sampled, per replica (0..1)
    replica<ID>.preemptions             sampled, cumulative counter
    cluster.active_dp                   sampled, coupled runs
    cluster.provisioning / .draining    sampled, coupled runs
    cluster.queued_prefill_tokens       sampled, coupled runs
    cluster.arrival_rate                windowed, folded from the result
    ttft.p50 / .p90 / .p99              windowed, folded from the result
    tpot.p50 / .p90 / .p99              windowed, folded from the result
    slo.attainment / slo.burn_rate      windowed, folded from the result
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

# Default sample interval of the fixed-interval recorders (virtual
# seconds between per-replica / cluster-wide samples).
DEFAULT_INTERVAL_S = 1.0

# Hard cap on the retained event log. Dispatch events grow O(requests),
# so an unbounded log is exactly the memory hazard the old
# ``debug_dispatch_log`` had; past the cap new events are counted in
# :attr:`Telemetry.dropped_events` instead of stored.
DEFAULT_MAX_EVENTS = 100_000

# Error budget: the fraction of requests per window allowed to miss the
# SLO before the budget burns at rate 1.0 (burn = violation / budget, the
# SRE convention — burn > 1 means the budget is being spent faster than
# it accrues).
DEFAULT_SLO_BUDGET = 0.01

# Resolution floor: windowed folds widen their window so no series
# carries more than this many points (a million-request fluid day should
# not export a million-row artifact).
MAX_WINDOWS = 512

_EPS = 1e-9


def percentiles(values: Sequence[float], qs: Sequence[float] = (50, 90, 99)) -> tuple[float, ...]:
    """Linear-interpolated percentiles (numpy's default method) in pure
    Python — per-window reductions see a handful of values at a time,
    where the interpreter beats an ndarray round-trip by ~100x."""
    if not values:
        return tuple(math.nan for _ in qs)
    vs = sorted(values)
    n = len(vs)
    out = []
    for q in qs:
        pos = (n - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        out.append(vs[lo] + (vs[hi] - vs[lo]) * (pos - lo))
    return tuple(out)


class Counter:
    """Monotonic count (events, requests, preemptions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Timestamped observations with windowed percentile reduction."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def observe(self, t: float, value: float) -> None:
        self.times.append(float(t))
        self.values.append(float(value))

    def percentiles(self, qs: Sequence[float] = (50, 90, 99)) -> tuple[float, ...]:
        """Percentiles over every observation so far (NaNs when empty)."""
        return percentiles(self.values, qs)

    def windows(
        self, window_s: float, qs: Sequence[float] = (50, 90, 99)
    ) -> list[tuple[float, tuple[float, ...]]]:
        """Per-window percentiles: ``(window_end, (p50, p90, p99))`` for
        every window that received at least one observation."""
        if window_s <= 0:
            raise ConfigurationError("histogram window must be positive")
        if not self.values:
            return []
        buckets: dict[int, list[float]] = {}
        for t, v in zip(self.times, self.values, strict=True):
            buckets.setdefault(int(t / window_s), []).append(v)
        return [
            ((idx + 1) * window_s, percentiles(buckets[idx], qs))
            for idx in sorted(buckets)
        ]


class ReplicaProbe:
    """Fixed-interval sampler over one replica's live scheduling state.

    Created per replica (decoupled replica loop or coupled
    :class:`~repro.cluster.replica.ReplicaSim`); :meth:`tick` is called at
    every iteration boundary and early-outs on one float compare until
    the clock crosses the next sample boundary, at which point it reads
    the state once and emits the held value at every crossed boundary
    (sample-and-hold — iterations are atomic, so no finer truth exists).
    """

    __slots__ = ("replica_id", "_interval", "_next_t", "_queued", "_running", "_kv", "_preempt")

    def __init__(self, tel: "Telemetry", replica_id: int, start: float = 0.0) -> None:
        self.replica_id = replica_id
        self._interval = tel.interval_s
        # Grid-aligned so every replica's samples land on the same
        # instants regardless of birth time.
        self._next_t = math.ceil(start / self._interval - _EPS) * self._interval
        prefix = f"replica{replica_id}."
        self._queued = tel.series_list(prefix + "queued_prefill_tokens")
        self._running = tel.series_list(prefix + "running")
        self._kv = tel.series_list(prefix + "kv_util")
        self._preempt = tel.series_list(prefix + "preemptions")

    def tick(self, now: float, state, metrics) -> None:
        if now < self._next_t:
            return
        # Queued prefill depth with the dispatcher's visibility: unstarted
        # prompts (waiting queue + chunked-prefill remainders) count their
        # remaining tokens, and a prefill already committed into an atomic
        # iteration stays "queued" at each boundary its completion has not
        # passed yet — the same convention as the coupled router's
        # observed-load view.
        queued = 0
        for s in state.waiting:
            left = s.prefill_target - s.prefilled_tokens
            if left > 0:
                queued += left
        inflight: list[tuple[float, int]] = []
        for s in state.running:
            left = s.prefill_target - s.prefilled_tokens
            if left > 0:
                queued += left
            else:
                end = s.prefill_end_time
                if end == end:  # NaN = never scheduled with a known end
                    inflight.append((end, s.prefill_target))
        running = float(len(state.running))
        cap = state.kv.capacity_tokens
        kv_util = 1.0 - state.kv.free_tokens / cap if cap > 0 else 0.0
        preemptions = float(metrics.preemptions)
        t = self._next_t
        step = self._interval
        while t <= now + _EPS:
            queued_t = queued + sum(n for end, n in inflight if end > t + _EPS)
            self._queued.append((t, float(queued_t)))
            self._running.append((t, running))
            self._kv.append((t, kv_util))
            self._preempt.append((t, preemptions))
            t += step
        self._next_t = t


class Telemetry:
    """The hub: instruments, series, a bounded event log and run meta.

    One hub instance is attached to ``EngineOptions.telemetry`` and
    shared by every layer of a run (engine loops, cluster simulator,
    fleet, autoscaler, result fold). All timestamps are virtual seconds.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        max_events: int = DEFAULT_MAX_EVENTS,
        slo_budget: float = DEFAULT_SLO_BUDGET,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("telemetry interval must be positive")
        if max_events < 1:
            raise ConfigurationError("telemetry max_events must be >= 1")
        if not 0 < slo_budget <= 1:
            raise ConfigurationError("slo_budget must be in (0, 1]")
        self.interval_s = float(interval_s)
        self.max_events = int(max_events)
        self.slo_budget = float(slo_budget)
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, list[tuple[float, float]]] = {}
        self.events: list[dict] = []
        self.dropped_events = 0
        self.meta: dict = {}
        self._boundaries: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Instruments
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    # ------------------------------------------------------------------ #
    # Series
    # ------------------------------------------------------------------ #

    def series_list(self, name: str) -> list[tuple[float, float]]:
        """The mutable point list of ``name`` (created empty on first
        use) — samplers hold a direct reference to skip the dict lookup."""
        lst = self.series.get(name)
        if lst is None:
            lst = self.series[name] = []
        return lst

    def point(self, name: str, t: float, value: float) -> None:
        self.series_list(name).append((float(t), float(value)))

    def set_series(self, name: str, points: Iterable[tuple[float, float]]) -> None:
        """Replace ``name`` wholesale (idempotent folds re-derive their
        windowed series rather than appending duplicates)."""
        self.series[name] = [(float(t), float(v)) for t, v in points]

    def timeline(self, name: str) -> tuple[list[float], list[float]]:
        pts = self.series.get(name, [])
        return [p[0] for p in pts], [p[1] for p in pts]

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #

    def event(self, t: float, kind: str, **fields) -> None:
        """Append a timestamped event; past :attr:`max_events` the event
        is dropped (and counted) instead of stored."""
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        e = {"t": float(t), "event": kind}
        e.update(fields)
        self.events.append(e)

    def events_of(self, *kinds: str) -> list[dict]:
        wanted = set(kinds)
        return [e for e in self.events if e["event"] in wanted]

    # ------------------------------------------------------------------ #
    # Sampling helpers
    # ------------------------------------------------------------------ #

    def probe(self, replica_id: int, start: float = 0.0) -> ReplicaProbe:
        """A fixed-interval sampler for one replica's live state."""
        return ReplicaProbe(self, replica_id, start)

    def boundaries(self, key: str, now: float, interval: float | None = None) -> list[float]:
        """Every grid boundary up to ``now`` not yet emitted under
        ``key`` — the generic interval-crossing primitive samplers that
        run at irregular instants (per-arrival loops) are built on."""
        step = self.interval_s if interval is None else interval
        next_t = self._boundaries.get(key, 0.0)
        if next_t > now + _EPS:
            return []
        out = []
        while next_t <= now + _EPS:
            out.append(next_t)
            next_t += step
        self._boundaries[key] = next_t
        return out

    def window_s(self, total_time: float) -> float:
        """Fold window: the sample interval, widened so no windowed
        series exceeds :data:`MAX_WINDOWS` points."""
        return max(self.interval_s, total_time / MAX_WINDOWS)

    # ------------------------------------------------------------------ #
    # Result fold
    # ------------------------------------------------------------------ #

    def fold_result(self, result, ttft_slo: float | None = None, tpot_slo: float | None = None) -> None:
        """Derive the windowed latency/SLO series from a finished run and
        fold its fleet lifecycle events into the event log.

        Idempotent: windowed series are replaced, previously folded scale
        events are dropped before re-folding (engines that run auxiliary
        sub-simulations fold only once, but the contract is safe either
        way). ``slo.attainment``/``slo.burn_rate`` are always emitted —
        with no SLOs configured every window attains trivially (1.0), the
        same convention as :meth:`LatencyStats.slo_attainment`.
        """
        from repro.runtime.latency import LatencyStats

        total = float(result.total_time)
        window = self.window_s(total)
        self.meta.update(
            {
                "engine": result.engine,
                "label": result.label,
                "num_requests": result.num_requests,
                "total_time": total,
                "window_s": window,
                "ttft_slo": ttft_slo,
                "tpot_slo": tpot_slo,
                "slo_budget": self.slo_budget,
            }
        )
        records = result.latency.records if result.latency is not None else ()
        n_windows = max(1, int(math.ceil(total / window - _EPS)))

        arrivals = [0] * n_windows
        finished: list[list] = [[] for _ in range(n_windows)]
        for r in records:
            arrivals[min(int(r.arrival_time / window), n_windows - 1)] += 1
            finished[min(int(r.finish_time / window), n_windows - 1)].append(r)

        rate_pts = []
        ttft_pts: dict[float, list[tuple[float, float]]] = {50: [], 90: [], 99: []}
        tpot_pts: dict[float, list[tuple[float, float]]] = {50: [], 90: [], 99: []}
        att_pts = []
        burn_pts = []
        for i in range(n_windows):
            t_end = (i + 1) * window
            rate_pts.append((t_end, arrivals[i] / window))
            sub = finished[i]
            if sub:
                for q, v in zip((50, 90, 99), percentiles([r.ttft for r in sub]), strict=True):
                    ttft_pts[q].append((t_end, v))
                tpots = [r.tpot for r in sub if r.tpot is not None]
                if tpots:
                    for q, v in zip((50, 90, 99), percentiles(tpots), strict=True):
                        tpot_pts[q].append((t_end, v))
                attainment = LatencyStats(records=tuple(sub)).slo_attainment(
                    ttft_slo=ttft_slo, tpot_slo=tpot_slo
                )
            else:
                attainment = 1.0
            att_pts.append((t_end, attainment))
            burn_pts.append((t_end, (1.0 - attainment) / self.slo_budget))

        self.set_series("cluster.arrival_rate", rate_pts)
        for q in (50, 90, 99):
            self.set_series(f"ttft.p{q}", ttft_pts[q])
            self.set_series(f"tpot.p{q}", tpot_pts[q])
        self.set_series("slo.attainment", att_pts)
        self.set_series("slo.burn_rate", burn_pts)

        router = result.router
        fleet = router.fleet if router is not None else None
        if fleet is not None and fleet.events:
            self.events = [e for e in self.events if e["event"] != "scale"]
            for ev in fleet.events:
                self.event(
                    ev.time,
                    "scale",
                    action=ev.kind,
                    replica=ev.replica_id,
                    active_dp=ev.active_dp,
                    reason=getattr(ev, "reason", ""),
                )
