"""Configuration search: static sweeps and Seesaw (cp, cd) pairing.

Mirrors the paper's methodology: the vLLM baseline sweeps *all* feasible
single configurations and reports the best (Section 6.2), and Seesaw picks
a prefill-optimal and a decode-optimal configuration pair. Ranking is
analytic (cheap); ``simulate_top`` optionally re-ranks the analytic top-k
with short engine runs on a workload subsample for fidelity.

What the ranking optimizes is a :class:`~repro.autotuner.objective.ServingObjective`:
the default (``throughput``) reproduces the seed's offline-throughput
ordering bit-exactly, while ``slo`` ranks by queueing-corrected goodput
under an offered request rate and re-ranks the simulated top-k by measured
SLO attainment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.autotuner.objective import ServingObjective
from repro.autotuner.predictor import predict_request_rate
from repro.engines.base import EngineOptions
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.enumerate import feasible_configs
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.options import SeesawOptions
    from repro.exec import CellExecutor


@dataclass(frozen=True)
class RankedConfig:
    """One configuration with its predicted request rate (and, under an
    SLO objective, its predicted attainment and goodput)."""

    config: ParallelConfig
    predicted_rps: float
    predicted_attainment: float = 1.0
    predicted_goodput_rps: float | None = None


@dataclass(frozen=True)
class RankedPair:
    """One Seesaw (prefill, decode) pair with its predicted request rate
    (and, under an SLO objective, attainment and goodput)."""

    prefill_config: ParallelConfig
    decode_config: ParallelConfig
    predicted_rps: float
    predicted_attainment: float = 1.0
    predicted_goodput_rps: float | None = None

    def label(self) -> str:
        return f"{self.prefill_config.label()}->{self.decode_config.label()}"


def _workload_averages(workload: WorkloadSpec) -> tuple[float, float]:
    n = workload.num_requests
    return workload.total_input_tokens / n, workload.total_output_tokens / n


def rank_static_configs(
    model: ModelConfig,
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    *,
    allow_dp: bool = True,
    max_num_seqs: int = 512,
    objective: ServingObjective | None = None,
) -> list[RankedConfig]:
    """All feasible static configs, best first under ``objective`` (the
    default throughput objective reproduces the seed ordering)."""
    objective = objective or ServingObjective()
    avg_in, avg_out = _workload_averages(workload)
    ranked: list[tuple[tuple[float, ...], RankedConfig]] = []
    for cfg in feasible_configs(model, cluster, allow_dp=allow_dp):
        try:
            rates = predict_request_rate(
                model, cluster, cfg, cfg, avg_in, avg_out, max_num_seqs,
                concurrency=workload.num_requests,
            )
        except CapacityError:
            continue
        pred = objective.predict(rates, avg_in, avg_out)
        ranked.append(
            (
                objective.rank_key(rates, pred),
                RankedConfig(
                    config=cfg,
                    predicted_rps=rates.request_rate,
                    predicted_attainment=pred.attainment,
                    predicted_goodput_rps=pred.goodput_rps,
                ),
            )
        )
    if not ranked:
        raise CapacityError(
            f"no feasible configuration for {model.name} on {cluster.describe()}"
        )
    ranked.sort(key=lambda kr: kr[0], reverse=True)
    return [r for _, r in ranked]


def rank_seesaw_pairs(
    model: ModelConfig,
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    *,
    allow_dp: bool = True,
    max_num_seqs: int = 512,
    objective: ServingObjective | None = None,
) -> list[RankedPair]:
    """All (cp, cd) pairs with matching DP, best first under ``objective``.

    Seesaw keeps DP fixed across the transition (Section 4.1), so pairs are
    formed within each DP group.
    """
    objective = objective or ServingObjective()
    avg_in, avg_out = _workload_averages(workload)
    configs = feasible_configs(model, cluster, allow_dp=allow_dp)
    pairs: list[tuple[tuple[float, ...], RankedPair]] = []
    for cp in configs:
        for cd in configs:
            if cp.dp != cd.dp:
                continue
            try:
                rates = predict_request_rate(
                    model, cluster, cp, cd, avg_in, avg_out, max_num_seqs,
                    concurrency=workload.num_requests,
                )
            except CapacityError:
                continue
            pred = objective.predict(rates, avg_in, avg_out)
            pairs.append(
                (
                    objective.rank_key(rates, pred),
                    RankedPair(
                        prefill_config=cp,
                        decode_config=cd,
                        predicted_rps=rates.request_rate,
                        predicted_attainment=pred.attainment,
                        predicted_goodput_rps=pred.goodput_rps,
                    ),
                )
            )
    if not pairs:
        raise CapacityError(
            f"no feasible Seesaw pair for {model.name} on {cluster.describe()}"
        )
    pairs.sort(key=lambda kp: kp[0], reverse=True)
    return [p for _, p in pairs]


def best_static_config(
    model: ModelConfig,
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    *,
    allow_dp: bool = True,
    simulate_top: int = 0,
    sample_requests: int = 64,
    options: EngineOptions | None = None,
    objective: ServingObjective | None = None,
    executor: "CellExecutor | None" = None,
) -> ParallelConfig:
    """Best static configuration; optionally re-rank analytic top-k by
    simulating a workload subsample with the vLLM-like engine. Under an
    ``slo`` objective the simulated score is measured SLO attainment
    (throughput breaking ties), not raw throughput.

    ``executor`` fans the top-k validation runs across worker processes
    (and through the result cache when one is attached); ``None`` keeps
    the exact serial loop. Both paths score identical results, so the
    pick is identical."""
    objective = objective or ServingObjective()
    ranked = rank_static_configs(
        model, cluster, workload, allow_dp=allow_dp, objective=objective
    )
    if simulate_top <= 1:
        return ranked[0].config
    sample = workload.subset(min(sample_requests, workload.num_requests))
    if executor is not None:
        from repro.exec import CellSpec

        specs = [
            CellSpec(
                engine="vllm",
                model=model,
                cluster=cluster,
                config=cand.config.label(),
                options=options if options is not None else EngineOptions(),
                workload=sample,
            )
            for cand in ranked[:simulate_top]
        ]
        runs = executor.run(specs)
    else:
        from repro.engines.vllm_like import VllmLikeEngine

        runs = [
            VllmLikeEngine(model, cluster, cand.config, options).run(sample)
            for cand in ranked[:simulate_top]
        ]
    best_cfg, best_key = None, None
    for cand, result in zip(ranked[:simulate_top], runs, strict=True):
        key = objective.result_key(result)
        if best_key is None or key > best_key:
            best_cfg, best_key = cand.config, key
    assert best_cfg is not None
    return best_cfg


def best_seesaw_pair(
    model: ModelConfig,
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    *,
    allow_dp: bool = True,
    simulate_top: int = 0,
    sample_requests: int = 64,
    options: "SeesawOptions | None" = None,
    objective: ServingObjective | None = None,
    executor: "CellExecutor | None" = None,
) -> tuple[ParallelConfig, ParallelConfig]:
    """Best (cp, cd) pair; optionally validated by short simulation.

    ``options`` reaches the :class:`~repro.core.engine.SeesawEngine` used
    for that validation (previously the simulated re-ranking silently
    ignored arrival/router engine options). Under an ``slo`` objective the
    engine is also told the predicted arrival rate so its phase loop can
    weigh waiting against re-sharding. ``executor`` parallelizes (and,
    with a cache, memoizes) the validation runs; the pick is identical
    either way.
    """
    objective = objective or ServingObjective()
    ranked = rank_seesaw_pairs(
        model, cluster, workload, allow_dp=allow_dp, objective=objective
    )
    if simulate_top <= 1:
        top = ranked[0]
        return top.prefill_config, top.decode_config
    from repro.core.options import SeesawOptions

    if options is None:
        options = SeesawOptions()
    # The hint never overrides an explicitly-supplied rate (e.g. one
    # measured from a trace) — the validation engines must match what the
    # caller will actually run.
    if options.arrival_rate is None and objective.arrival_rate_hint is not None:
        options = replace(options, arrival_rate=objective.arrival_rate_hint)
    sample = workload.subset(min(sample_requests, workload.num_requests))
    if executor is not None:
        from repro.exec import CellSpec

        specs = [
            CellSpec(
                engine="seesaw",
                model=model,
                cluster=cluster,
                config=cand.label(),
                options=options,
                workload=sample,
            )
            for cand in ranked[:simulate_top]
        ]
        runs = executor.run(specs)
    else:
        from repro.core.engine import SeesawEngine

        runs = [
            SeesawEngine(
                model, cluster, cand.prefill_config, cand.decode_config, options
            ).run(sample)
            for cand in ranked[:simulate_top]
        ]
    best, best_key = None, None
    for cand, result in zip(ranked[:simulate_top], runs, strict=True):
        key = objective.result_key(result)
        if best_key is None or key > best_key:
            best, best_key = cand, key
    assert best is not None
    return best.prefill_config, best.decode_config


def tune_chunk_size(
    model: ModelConfig,
    cluster: ClusterSpec,
    config: ParallelConfig,
    workload: WorkloadSpec,
    *,
    candidates: tuple[int, ...] = (512, 1024, 2048, 4096),
    sample_requests: int = 48,
    executor: "CellExecutor | None" = None,
) -> int:
    """Pick the chunked-prefill chunk size by short simulation.

    The paper tunes vLLM's chunk size per workload ('otherwise suboptimal
    chunk sizes would cause severe throughput degradation'); this helper is
    that tuning loop. ``executor`` fans the candidate runs out in
    parallel; the pick is identical either way.
    """
    if not candidates:
        raise ConfigurationError("need at least one chunk-size candidate")
    sample = workload.subset(min(sample_requests, workload.num_requests))
    if executor is not None:
        from repro.exec import CellSpec

        specs = [
            CellSpec(
                engine="vllm",
                model=model,
                cluster=cluster,
                config=config.label(),
                options=EngineOptions(chunked_prefill=True, chunk_size=size),
                workload=sample,
            )
            for size in candidates
        ]
        runs = executor.run(specs)
    else:
        from repro.engines.vllm_like import VllmLikeEngine

        runs = [
            VllmLikeEngine(
                model,
                cluster,
                config,
                EngineOptions(chunked_prefill=True, chunk_size=size),
            ).run(sample)
            for size in candidates
        ]
    best_size, best_rps = candidates[0], -1.0
    for size, result in zip(candidates, runs, strict=True):
        rps = result.throughput_rps
        if rps > best_rps:
            best_size, best_rps = size, rps
    return best_size
