"""Configuration autotuning: analytic prediction plus simulated validation.

The predictor implements the paper's equation (2) (inverse-throughput
model) on top of the step cost model; the search sweeps the feasible
configuration space the way the paper's evaluation does — every static
(DP, TP, PP) for the baseline, and every (cp, cd) pair with matching DP for
Seesaw — optionally validating the analytic top-k by short simulation.
"""

from repro.autotuner.objective import (
    OBJECTIVES,
    ServingObjective,
    ServingPrediction,
)
from repro.autotuner.predictor import (
    predict_prefill_rate,
    predict_decode_rate,
    predict_request_rate,
    PredictedRates,
)
from repro.autotuner.search import (
    best_static_config,
    best_seesaw_pair,
    tune_chunk_size,
    rank_static_configs,
    rank_seesaw_pairs,
)

__all__ = [
    "OBJECTIVES",
    "ServingObjective",
    "ServingPrediction",
    "predict_prefill_rate",
    "predict_decode_rate",
    "predict_request_rate",
    "PredictedRates",
    "best_static_config",
    "best_seesaw_pair",
    "tune_chunk_size",
    "rank_static_configs",
    "rank_seesaw_pairs",
]
