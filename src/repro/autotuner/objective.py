"""Serving objectives: what the configuration search optimizes *for*.

The seed autotuner ranks by offline throughput alone — the right target
for batch jobs, but online serving is judged by SLO attainment under an
offered load. :class:`ServingObjective` makes the target explicit:

- ``throughput`` — the seed behaviour: rank by predicted request rate
  (and, under simulated re-ranking, measured ``throughput_rps``).
- ``slo``        — SLO-constrained goodput: an analytic queueing
  correction on top of :func:`~repro.autotuner.predictor.predict_request_rate`
  estimates each configuration's TTFT distribution and TPOT under the
  offered rate, converts them into a predicted attainment, and ranks by
  the goodput (attainment x served rate) it implies. Simulated re-ranking
  then scores measured ``slo_attainment`` instead of throughput.

The queueing correction is deliberately first-order, in the spirit of
first-principles infrastructure modeling: the cluster is an M/M/c
station — ``c`` data-parallel replicas, each serving at ``mu / c`` where
``mu`` is the configuration's aggregate analytic request capacity. At
offered rate ``lambda`` (utilization ``rho = lambda / mu``), with
``C = ErlangC(c, lambda / (mu / c))`` the probability an arrival waits:

- mean queue wait      ``W_q = C / (mu - lambda)``        (infinite at rho >= 1)
- wait distribution    ``P(W_q <= t) = 1 - C * exp(-(mu - lambda) t)``
- TTFT                 queue wait + this request's prefill on one replica
- TPOT                 one decode iteration of the capacity-bound batch

At ``c = 1`` Erlang C reduces to ``C = rho`` and both formulas are the
classic M/M/1 expressions the seed objective used (bit-for-bit — the
``dp == 1`` ranking is unchanged); at ``c > 1`` the pooled model's wait
probability ``rho`` is replaced by Erlang C — an arrival queues only
when *every* replica is busy, which the pooled single-server fiction
could not express (it overstated queueing at moderate load while
pretending service itself ran ``c`` times faster). TTFT attainment is
the closed-form probability the queue wait leaves enough slack for the
prefill; TPOT is deterministic in the analytic model, so its bound is a
hard gate. Both are exactly the cheap-search trade: rank the whole space
analytically, then (optionally) validate the top-k with short
simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.autotuner.predictor import PredictedRates
from repro.errors import ConfigurationError
from repro.runtime.metrics import EngineResult

OBJECTIVES = ("throughput", "slo")


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang C: probability an M/M/c arrival waits in queue.

    ``offered_load`` is ``a = lambda / mu_server`` in erlangs. Returns 1.0
    for an unstable queue (``a >= servers``). Computed with the stable
    partial-sum recurrence (no factorials); ``servers == 1`` returns
    exactly ``a`` — the M/M/1 probability-of-wait ``rho`` — so single-
    replica rankings are bit-identical to the M/M/1 formulation.
    """
    if servers < 1:
        raise ConfigurationError("servers must be >= 1")
    if offered_load < 0:
        raise ConfigurationError("offered_load must be >= 0")
    if offered_load == 0:
        return 0.0
    if offered_load >= servers:
        return 1.0
    if servers == 1:
        return offered_load
    # sum_{k<c} a^k/k! via the running term; the c-th term feeds the tail.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered_load / k
        total += term
    tail = term * offered_load / servers / (1.0 - offered_load / servers)
    return tail / (total + tail)


@dataclass(frozen=True)
class ServingPrediction:
    """Analytic serving estimate of one configuration under one load."""

    capacity_rps: float  # analytic request capacity (mu)
    offered_rps: float  # offered request rate (lambda; 0 = offline)
    utilization: float  # rho = lambda / mu
    queue_wait_mean_s: float  # mean M/M/1 queue wait (inf when rho >= 1)
    ttft_mean_s: float  # queue wait + prefill latency
    tpot_s: float  # decode iteration time per output token
    attainment: float  # predicted fraction of requests meeting the SLOs
    goodput_rps: float  # attainment x served rate

    @property
    def stable(self) -> bool:
        """Whether the queue is stable (offered below capacity)."""
        return self.utilization < 1.0


@dataclass(frozen=True)
class ServingObjective:
    """Ranking target for static configs and Seesaw (cp, cd) pairs.

    Attributes:
        kind: ``throughput`` (the seed's offline target, the default) or
            ``slo`` (SLO-constrained goodput under ``request_rate``).
        request_rate: Offered request rate in req/s; 0 models an offline
            run (no queueing term — attainment reflects service latency
            alone).
        ttft_slo: TTFT bound in seconds (``None`` = unconstrained).
        tpot_slo: TPOT bound in seconds per output token (``None`` =
            unconstrained).
    """

    kind: str = "throughput"
    request_rate: float = 0.0
    ttft_slo: float | None = None
    tpot_slo: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVES:
            raise ConfigurationError(
                f"unknown objective {self.kind!r}; one of {OBJECTIVES}"
            )
        if self.request_rate < 0:
            raise ConfigurationError("request_rate must be >= 0")
        for name, slo in (("ttft_slo", self.ttft_slo), ("tpot_slo", self.tpot_slo)):
            if slo is not None and slo <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def arrival_rate_hint(self) -> float | None:
        """Offered rate to hand engines whose schedulers can consult it
        (Seesaw's wait-vs-re-shard decision); ``None`` unless tuning for
        SLOs under a real load."""
        if self.kind == "slo" and self.request_rate > 0:
            return self.request_rate
        return None

    # ------------------------------------------------------------------ #
    # Analytic layer
    # ------------------------------------------------------------------ #

    def predict(
        self, rates: PredictedRates, avg_input_len: float, avg_output_len: float
    ) -> ServingPrediction:
        """Queueing-corrected serving estimate for one configuration."""
        mu = rates.request_rate
        lam = self.request_rate
        rho = lam / mu if mu > 0 else math.inf
        prefill_cfg = rates.prefill_config or rates.config
        dp = max(1, prefill_cfg.dp)
        # One request prefills on a single replica; the aggregate rate
        # divides across the *prefill* side's DP group (which can differ
        # from the decode side's when callers pass an unmatched pair).
        prefill_latency = avg_input_len * dp / rates.prefill_tokens_per_s
        # One decode iteration advances every sequence of the batch one
        # token, so the per-sequence inter-token time is the iteration —
        # preferring the context-growth-aware estimate (mean iteration
        # time over the in -> in+out context trajectory, overhead
        # included) over the first-order batch/rate quotient, which
        # under-predicts measured inter-token time at high batch.
        if rates.tpot_s is not None:
            tpot = rates.tpot_s
        else:
            tpot = rates.max_batch_size / rates.decode_tokens_per_s

        # M/M/c over the dp replicas (each serving at mu / dp): the wait
        # probability is Erlang C on the offered load in erlangs. dp == 1
        # reduces to the M/M/1 expressions bit-exactly (erlang_c(1, a) == a
        # == rho, with the same divisions).
        if lam <= 0:
            wait_prob = 0.0
            queue_wait = 0.0
        elif rho >= 1.0:
            wait_prob = 1.0
            queue_wait = math.inf
        else:
            wait_prob = erlang_c(dp, lam / (mu / dp))
            queue_wait = wait_prob / (mu - lam)

        attainment = self._ttft_attainment(wait_prob, rho, mu, lam, prefill_latency)
        if self.tpot_slo is not None and tpot > self.tpot_slo:
            attainment = 0.0
        served = mu if lam <= 0 else min(lam, mu)
        return ServingPrediction(
            capacity_rps=mu,
            offered_rps=lam,
            utilization=rho,
            queue_wait_mean_s=queue_wait,
            ttft_mean_s=queue_wait + prefill_latency,
            tpot_s=tpot,
            attainment=attainment,
            goodput_rps=attainment * served,
        )

    def _ttft_attainment(
        self,
        wait_prob: float,
        rho: float,
        mu: float,
        lam: float,
        prefill_latency: float,
    ) -> float:
        """P(TTFT <= ttft_slo) under the M/M/c waiting-time distribution:
        ``P(W_q <= t) = 1 - C * exp(-(c*mu_server - lam) t)`` with
        ``c * mu_server = mu`` and ``C`` the Erlang C wait probability
        (``rho`` at c=1, recovering the M/M/1 curve exactly)."""
        if self.ttft_slo is None:
            return 1.0
        slack = self.ttft_slo - prefill_latency
        if slack < 0:
            return 0.0  # even an empty queue misses the bound
        if lam <= 0 or rho <= 0:
            return 1.0
        if rho >= 1.0:
            return 0.0  # unstable: the queue (and every TTFT) diverges
        return 1.0 - wait_prob * math.exp(-(mu - lam) * slack)

    # ------------------------------------------------------------------ #
    # Ranking keys
    # ------------------------------------------------------------------ #

    def rank_key(
        self, rates: PredictedRates, prediction: ServingPrediction
    ) -> tuple[float, ...]:
        """Sort key (descending) for the analytic ranking stage."""
        if self.kind == "throughput":
            return (rates.request_rate,)
        # Goodput first; attainment then raw capacity break ties (e.g.
        # several saturated configs all serving lambda at attainment 1).
        return (prediction.goodput_rps, prediction.attainment, rates.request_rate)

    def result_key(self, result: EngineResult) -> tuple[float, ...]:
        """Sort key (descending) for simulated re-ranking of the top-k."""
        if self.kind == "throughput":
            return (result.throughput_rps,)
        if result.latency is None:
            return (0.0, result.throughput_rps)
        attainment = result.latency.slo_attainment(
            ttft_slo=self.ttft_slo, tpot_slo=self.tpot_slo
        )
        return (attainment, result.throughput_rps)

    def describe(self) -> str:
        parts = [self.kind]
        if self.request_rate > 0:
            parts.append(f"{self.request_rate:g} req/s")
        if self.ttft_slo is not None:
            parts.append(f"ttft<={self.ttft_slo:g}s")
        if self.tpot_slo is not None:
            parts.append(f"tpot<={self.tpot_slo * 1e3:g}ms")
        return " ".join(parts)
