"""Analytic throughput prediction (the paper's Appendix A, eq. 1-2).

Rates are predicted from workload length statistics alone — no simulation —
which is what makes exhaustive configuration ranking cheap. The model:

- **prefill rate** (tokens/s): a pipeline stage processes one micro-batch
  of ``B`` prompt tokens per stage period, so the replica streams
  ``B / T_stage`` tokens/s; DP replicas add up.
- **decode rate** (tokens/s): the replica advances ``b_max`` sequences per
  iteration period, where ``b_max`` is the KV-capacity-bound batch size of
  Appendix A.3 — this is where TP/PP's super-linear and DP's linear batch
  scaling enters.
- **request rate**: one request costs ``in_len`` prefill tokens and
  ``out_len`` decoded tokens; the stages serialize in a throughput-oriented
  run, so the times add.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.step import ITERATION_OVERHEAD, StepCostModel
from repro.errors import CapacityError
from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.memory import kv_capacity_tokens

# Token budget of one prefill micro-batch used for rate prediction; matches
# the engines' default ``max_batched_tokens``.
PREFILL_MICROBATCH_TOKENS = 8192


@dataclass(frozen=True)
class PredictedRates:
    """Analytic rates for one configuration on one workload shape.

    ``config`` is the decode-side configuration (the seed convention);
    ``prefill_config`` carries the prefill side so consumers that need the
    prefill DP group (the serving objective's per-replica prefill latency)
    do not have to assume the pair is DP-matched. ``tpot_s`` is the
    context-growth-aware mean inter-token time of one request
    (:func:`predict_decode_tpot`); ``None`` falls back to the first-order
    batch/rate quotient in consumers that predate it.
    """

    config: ParallelConfig
    prefill_tokens_per_s: float
    decode_tokens_per_s: float
    request_rate: float
    max_batch_size: int
    prefill_config: ParallelConfig | None = None
    tpot_s: float | None = None


def predict_prefill_rate(
    model: ModelConfig, cluster: ClusterSpec, cfg: ParallelConfig
) -> float:
    """Steady-state prefill token rate of the full configuration."""
    from dataclasses import replace

    replica = replace(cfg, dp=1)
    costs = StepCostModel(model, cluster, replica)
    b = PREFILL_MICROBATCH_TOKENS
    stage = costs.prefill_stage_time([b])
    return cfg.dp * b / stage.total


def predict_decode_rate(
    model: ModelConfig,
    cluster: ClusterSpec,
    cfg: ParallelConfig,
    avg_context_len: float,
    max_num_seqs: int = 512,
    concurrency: int | None = None,
) -> tuple[float, int]:
    """Steady-state decode token rate and the batch size achieving it.

    ``concurrency`` caps the batch at the replica's share of the in-flight
    request population — with few requests the KV-capacity bound is not the
    binding one, and the comm-vs-weight trade-off shifts (all-reduce volume
    scales with batch; weight streaming does not).
    """
    from dataclasses import replace

    replica = replace(cfg, dp=1)
    costs = StepCostModel(model, cluster, replica)
    capacity = kv_capacity_tokens(model, cluster, replica)
    b_max = max(1, min(int(capacity / avg_context_len), max_num_seqs))
    if concurrency is not None:
        b_max = max(1, min(b_max, -(-concurrency // cfg.dp)))
    iteration = costs.decode_iteration_time(b_max, int(b_max * avg_context_len))
    return cfg.dp * b_max / iteration.total, b_max * cfg.dp


def predict_decode_tpot(
    model: ModelConfig,
    cluster: ClusterSpec,
    cfg: ParallelConfig,
    avg_input_len: float,
    avg_output_len: float,
    max_num_seqs: int = 512,
    concurrency: int | None = None,
    samples: int = 9,
) -> float:
    """Context-growth-aware mean inter-token time of one request.

    A request's inter-token gap is the decode iteration time of the batch
    it rides in, and that batch's context *grows* as every sequence
    decodes: at decode step ``j`` the mean context is ``in + j`` tokens,
    not the initial ``in`` — and in the KV-bound regime the sustainable
    batch simultaneously shrinks (``capacity / ctx``), so the per-token
    time drifts over the decode. The estimate here averages the iteration
    time (including the fixed per-iteration overhead the engines pay)
    over evenly spaced points of the ``ctx: in -> in + out`` trajectory,
    instead of evaluating one initial- or mid-point context.
    """
    from dataclasses import replace

    if avg_input_len <= 0 or avg_output_len <= 0:
        raise CapacityError("workload averages must be positive")
    replica = replace(cfg, dp=1)
    costs = StepCostModel(model, cluster, replica)
    capacity = kv_capacity_tokens(model, cluster, replica)
    cap_seqs = max_num_seqs
    if concurrency is not None:
        cap_seqs = min(cap_seqs, -(-concurrency // cfg.dp))
    steps = max(0.0, avg_output_len - 1.0)
    points = min(samples, max(1, int(steps) + 1))
    total = 0.0
    for k in range(points):
        frac = k / (points - 1) if points > 1 else 0.5
        ctx = avg_input_len + frac * steps
        b = max(1, min(int(capacity / ctx), cap_seqs))
        iteration = costs.decode_iteration_time(b, int(b * ctx))
        total += iteration.total + ITERATION_OVERHEAD
    return total / points


def predict_request_rate(
    model: ModelConfig,
    cluster: ClusterSpec,
    prefill_cfg: ParallelConfig,
    decode_cfg: ParallelConfig,
    avg_input_len: float,
    avg_output_len: float,
    max_num_seqs: int = 512,
    concurrency: int | None = None,
) -> PredictedRates:
    """Requests/s when prefilling under one config and decoding under
    another (pass the same config twice for a static engine).

    Decode contexts average input plus half the output (sequences grow as
    they decode). ``concurrency`` is the number of requests available to
    batch (the workload size for offline runs).
    """
    if avg_input_len <= 0 or avg_output_len <= 0:
        raise CapacityError("workload averages must be positive")
    prefill_rate = predict_prefill_rate(model, cluster, prefill_cfg)
    avg_ctx = avg_input_len + avg_output_len / 2.0
    decode_rate, b_max = predict_decode_rate(
        model, cluster, decode_cfg, avg_ctx, max_num_seqs, concurrency
    )
    seconds_per_request = (
        avg_input_len / prefill_rate + max(0.0, avg_output_len - 1) / decode_rate
    )
    return PredictedRates(
        config=decode_cfg,
        prefill_tokens_per_s=prefill_rate,
        decode_tokens_per_s=decode_rate,
        request_rate=1.0 / seconds_per_request,
        max_batch_size=b_max,
        prefill_config=prefill_cfg,
        tpot_s=predict_decode_tpot(
            model,
            cluster,
            decode_cfg,
            avg_input_len,
            avg_output_len,
            max_num_seqs,
            concurrency,
        ),
    )
