"""Figure 13: throughput vs the output:input length ratio (D:P).

LLaMA2-70B on eight A10 GPUs, constant input length 3000, output length
swept. Curves: TP4PP2, TP2PP4, PP8, and Seesaw PP8->TP4PP2, normalized to
the maximum point as the paper does.

Shapes to reproduce:
- at D:P -> 0 (prefill-only), PP8 and Seesaw coincide at the top and
  TP4PP2 trails badly (all-reduce overhead);
- as D:P grows, PP8 collapses (decode weight amplification) and TP4PP2
  takes over, with a region where TP2PP4 is the best static choice;
- Seesaw is at or above every static curve across the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.engine import SeesawEngine
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import parse_config
from repro.utils.tables import ascii_series
from repro.workloads.synthetic import ratio_workload

DEFAULT_RATIOS = (0.0003, 0.0033, 0.01, 0.033, 0.066, 0.1, 0.2, 0.3)
STATIC_LABELS = ("tp4pp2", "tp2pp4", "pp8")
SEESAW_LABEL = "pp8->tp4pp2"


@dataclass(frozen=True)
class Fig13Result:
    ratios: tuple[float, ...]
    # label -> throughput (req/s) per ratio
    throughput: dict[str, list[float]]

    def normalized(self) -> dict[str, list[float]]:
        vmax = max(max(v) for v in self.throughput.values())
        return {k: [x / vmax for x in v] for k, v in self.throughput.items()}

    def best_static_at(self, idx: int) -> str:
        return max(STATIC_LABELS, key=lambda k: self.throughput[k][idx])


def run_fig13(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    *,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    num_requests: int = 64,
    prompt_len: int = 3000,
) -> Fig13Result:
    model = model or get_model("70b")
    cluster = cluster or make_cluster("A10", 8)
    throughput: dict[str, list[float]] = {k: [] for k in STATIC_LABELS}
    throughput[SEESAW_LABEL] = []

    for ratio in ratios:
        workload = ratio_workload(num_requests, ratio, prompt_len=prompt_len)
        for label in STATIC_LABELS:
            engine = VllmLikeEngine(model, cluster, parse_config(label))
            throughput[label].append(engine.run(workload).throughput_rps)
        seesaw = SeesawEngine(
            model, cluster, parse_config("pp8"), parse_config("tp4pp2")
        )
        throughput[SEESAW_LABEL].append(seesaw.run(workload).throughput_rps)
    return Fig13Result(ratios=tuple(ratios), throughput=throughput)


def render_fig13(result: Fig13Result | None = None) -> str:
    result = result if result is not None else run_fig13()
    norm = result.normalized()
    return ascii_series(
        "D:P",
        list(result.ratios),
        norm,
        title="Figure 13: normalized throughput vs output:input ratio "
        "(70B, 8x A10, input 3000)",
    )
