"""Figure 9: input/output length distributions of the datasets.

Renders histogram summaries of the two samplers so their shapes can be
compared against the published densities: arxiv-summarization has long
inputs and short outputs; sharegpt has comparable input/output lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.tables import ascii_table
from repro.workloads.datasets import arxiv_workload, sharegpt_workload
from repro.workloads.spec import WorkloadSpec, WorkloadStats, workload_stats


@dataclass(frozen=True)
class Fig9Result:
    stats: dict[str, WorkloadStats]
    histograms: dict[str, dict[str, np.ndarray]]
    bin_edges: np.ndarray


def run_fig9(
    num_sharegpt: int = 2000,
    num_arxiv: int = 500,
    seed: int = 9,
    max_tokens: int = 6400,
    num_bins: int = 16,
) -> Fig9Result:
    workloads: dict[str, WorkloadSpec] = {
        "arxiv-summarization": arxiv_workload(num_arxiv, seed=seed),
        "sharegpt": sharegpt_workload(num_sharegpt, seed=seed),
    }
    edges = np.linspace(0, max_tokens, num_bins + 1)
    stats = {}
    histograms: dict[str, dict[str, np.ndarray]] = {}
    for name, wl in workloads.items():
        stats[name] = workload_stats(wl)
        ins = np.array([r.prompt_len for r in wl.requests])
        outs = np.array([r.output_len for r in wl.requests])
        histograms[name] = {
            "input": np.histogram(ins, bins=edges, density=True)[0],
            "output": np.histogram(outs, bins=edges, density=True)[0],
        }
    return Fig9Result(stats=stats, histograms=histograms, bin_edges=edges)


def render_fig9(result: Fig9Result | None = None) -> str:
    result = result if result is not None else run_fig9()
    rows = []
    for name, s in result.stats.items():
        rows.append(
            [
                name,
                str(s.num_requests),
                f"{s.input_mean:.0f}",
                f"{s.input_p50:.0f}",
                f"{s.input_p90:.0f}",
                f"{s.output_mean:.0f}",
                f"{s.output_p50:.0f}",
                f"{s.output_p90:.0f}",
                f"{s.decode_prefill_ratio:.2f}",
            ]
        )
    return ascii_table(
        [
            "dataset",
            "n",
            "in mean",
            "in p50",
            "in p90",
            "out mean",
            "out p50",
            "out p90",
            "D:P",
        ],
        rows,
        title="Figure 9: dataset length distributions",
    )
