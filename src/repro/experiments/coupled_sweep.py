"""Planned vs. observed routing: what event-coupling is worth.

The decoupled router (PR 2/3) commits every dispatch against a
*predicted* per-replica load ledger before any replica simulates; the
event-coupled simulator (:mod:`repro.cluster`) interleaves dispatch into
the shared-clock event loop, so every decision sees the replicas'
**observed** state — actual queue depths, KV headroom, and measured
preemptions. This experiment quantifies the difference: the same bursty
workload is served by the same dispatch policies (``jsq``, ``slo``) in
both modes at a sweep of offered loads, reporting p99 TTFT and TTFT-SLO
attainment.

The default cell is engineered to make planning hard: a bimodal workload
(long prompts with sizable outputs) on a KV-tight data-parallel
configuration, with strongly bursty arrivals around the saturation knee.
A burst of long requests overcommits one replica's KV and triggers real
evictions — which only the coupled router can see and route around
(the decoupled ledger drains on analytic rates and predicts none of it).
Expected shape: below the knee the two modes are close (planning is easy
when queues stay shallow); at and above it, observed-load dispatch holds
p99 TTFT and attainment above its planned counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import router_observability_cells
from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig, parse_config
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table
from repro.workloads.arrivals import bursty_arrivals
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import bimodal_workload

DEFAULT_POLICIES = ("jsq", "slo")
DEFAULT_LOAD_FRACTIONS = (0.8, 1.1)
DEFAULT_BURSTINESS = 10.0
DEFAULT_TTFT_SLO = 25.0


@dataclass(frozen=True)
class CoupledSweepPoint:
    """One (load, policy, mode) cell of the sweep."""

    rate_rps: float
    load_fraction: float
    policy: str
    coupled: bool
    result: EngineResult

    @property
    def ttft_p99(self) -> float:
        assert self.result.latency is not None
        return self.result.latency.ttft.p99

    def attainment(self, ttft_slo: float) -> float:
        assert self.result.latency is not None
        return self.result.latency.slo_attainment(ttft_slo=ttft_slo, tpot_slo=None)


@dataclass(frozen=True)
class CoupledSweepResult:
    capacity_rps: float  # measured offline throughput of the config
    burstiness: float
    ttft_slo: float
    points: tuple[CoupledSweepPoint, ...]

    def point(
        self, load_fraction: float, policy: str, coupled: bool
    ) -> CoupledSweepPoint:
        for p in self.points:
            if (
                p.load_fraction == load_fraction
                and p.policy == policy
                and p.coupled == coupled
            ):
                return p
        raise ConfigurationError(
            f"no sweep point ({load_fraction}, {policy}, coupled={coupled})"
        )

    def observed_wins(self) -> list[CoupledSweepPoint]:
        """Coupled points beating their decoupled counterpart on p99 TTFT
        or SLO attainment — the fidelity gap this sweep measures."""
        wins = []
        for p in self.points:
            if not p.coupled:
                continue
            base = self.point(p.load_fraction, p.policy, coupled=False)
            if p.ttft_p99 < base.ttft_p99 or p.attainment(self.ttft_slo) > base.attainment(
                self.ttft_slo
            ):
                wins.append(p)
        return wins


def run_coupled_sweep(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    workload: WorkloadSpec | None = None,
    *,
    config: ParallelConfig | None = None,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    load_fractions: tuple[float, ...] = DEFAULT_LOAD_FRACTIONS,
    burstiness: float = DEFAULT_BURSTINESS,
    ttft_slo: float = DEFAULT_TTFT_SLO,
    num_requests: int = 40,
    seed: int = 0,
    executor=None,
) -> CoupledSweepResult:
    """Serve one bursty workload under every (load, policy, mode) cell.

    ``load_fractions`` are multiples of the configuration's own measured
    offline throughput, bracketing the saturation knee regardless of
    model/cluster scale. ``executor`` fans the capacity probe and the
    sweep cells over worker processes and the result cache; results are
    bit-identical either way.
    """
    model = model or get_model("13b")
    cluster = cluster or make_cluster("A10", 8)
    config = config or parse_config("D4T2")
    workload = workload or bimodal_workload(
        num_requests, long_prompt=6144, short_prompt=512, output_len=768
    )
    if config.dp < 2:
        raise ConfigurationError("coupled sweep needs a data-parallel config")
    if executor is not None:
        from repro.exec import CellSpec

        def cell(opts: EngineOptions, wl) -> CellSpec:
            return CellSpec(
                engine="vllm", model=model, cluster=cluster,
                config=config.label(), options=opts, workload=wl, seed=seed,
            )

        (offline,) = executor.run([cell(EngineOptions(), workload)])
        capacity = offline.throughput_rps
        cells = [
            (frac, frac * capacity, policy, coupled, online)
            for frac in load_fractions
            for online in (
                bursty_arrivals(
                    workload, frac * capacity, burstiness=burstiness, seed=seed
                ),
            )
            for policy in policies
            for coupled in (False, True)
        ]
        results = executor.run(
            cell(
                EngineOptions(
                    router=policy,
                    router_seed=seed,
                    ttft_slo=ttft_slo,
                    coupled=coupled,
                ),
                online,
            )
            for _, _, policy, coupled, online in cells
        )
        points = [
            CoupledSweepPoint(
                rate_rps=rate,
                load_fraction=frac,
                policy=policy,
                coupled=coupled,
                result=result,
            )
            for (frac, rate, policy, coupled, _), result in zip(
                cells, results, strict=True
            )
        ]
        return CoupledSweepResult(
            capacity_rps=capacity,
            burstiness=burstiness,
            ttft_slo=ttft_slo,
            points=tuple(points),
        )
    offline = VllmLikeEngine(model, cluster, config).run(workload)
    capacity = offline.throughput_rps

    points = []
    for frac in load_fractions:
        rate = frac * capacity
        online = bursty_arrivals(
            workload, rate, burstiness=burstiness, seed=seed
        )
        for policy in policies:
            for coupled in (False, True):
                opts = EngineOptions(
                    router=policy,
                    router_seed=seed,
                    ttft_slo=ttft_slo,
                    coupled=coupled,
                )
                result = VllmLikeEngine(model, cluster, config, opts).run(online)
                points.append(
                    CoupledSweepPoint(
                        rate_rps=rate,
                        load_fraction=frac,
                        policy=policy,
                        coupled=coupled,
                        result=result,
                    )
                )
    return CoupledSweepResult(
        capacity_rps=capacity,
        burstiness=burstiness,
        ttft_slo=ttft_slo,
        points=tuple(points),
    )


def render_coupled_sweep(result: CoupledSweepResult | None = None) -> str:
    result = result if result is not None else run_coupled_sweep()
    rows = []
    for p in result.points:
        r = p.result
        lat, stats = r.latency, r.router
        assert lat is not None and stats is not None
        preempt, moved, idle = router_observability_cells(stats)
        rows.append(
            [
                f"{p.load_fraction:g}x",
                p.policy,
                "coupled" if p.coupled else "planned",
                f"{r.throughput_rps:.3f}",
                f"{lat.ttft.p50:.2f}",
                f"{p.ttft_p99:.2f}",
                f"{p.attainment(result.ttft_slo) * 100:.0f}%",
                preempt,
                moved,
                idle,
            ]
        )
    return ascii_table(
        [
            "load",
            "policy",
            "mode",
            "req/s",
            "ttft-p50",
            "ttft-p99",
            "slo-att",
            "preempt",
            "moved",
            "idle",
        ],
        rows,
        title=(
            f"Planned vs observed routing (capacity {result.capacity_rps:.2f} "
            f"req/s, bursty cv2={result.burstiness:g}, "
            f"ttft<={result.ttft_slo:g}s)"
        ),
    )
