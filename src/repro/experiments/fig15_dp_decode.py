"""Figure 15 (appendix): how data parallelism affects decode throughput.

Sweep TP x DP over one node (TP1DP8 ... TP8DP1), measuring for each the
maximum decode batch size and the per-request decode iteration breakdown.
Shapes to reproduce: DP-heavy configs OOM or get tiny batches (weight
duplicates crowd out KV), so weight-loading per request blows up; TP-heavy
configs shard weights and batch super-linearly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.costmodel.step import StepCostModel
from repro.errors import CapacityError
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig
from repro.parallel.memory import kv_capacity_tokens
from repro.utils.tables import ascii_table


@dataclass(frozen=True)
class Fig15Row:
    label: str
    fits: bool
    max_batch: int
    # Per-request decode-iteration time components (seconds), i.e. the
    # iteration breakdown divided by the batch it advances.
    load_weight: float
    compute: float
    allreduce: float

    @property
    def runtime_per_request(self) -> float:
        return self.load_weight + self.compute + self.allreduce


@dataclass(frozen=True)
class Fig15Result:
    rows: list[Fig15Row]

    def row(self, label: str) -> Fig15Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)


def run_fig15(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    *,
    context_len: int = 1024,
    max_num_seqs: int = 4096,
) -> Fig15Result:
    model = model or get_model("llama2-13b")
    cluster = cluster or make_cluster("L4", 8)
    n = cluster.num_gpus
    rows: list[Fig15Row] = []
    tp = 1
    while tp <= n:
        dp = n // tp
        cfg = ParallelConfig(tp=tp, pp=1, dp=dp)
        label = f"TP{tp}DP{dp}"
        try:
            replica = replace(cfg, dp=1)
            capacity = kv_capacity_tokens(model, cluster, replica)
            b_replica = max(1, min(int(capacity / context_len), max_num_seqs))
            costs = StepCostModel(model, cluster, replica)
            iteration = costs.decode_iteration_time(
                b_replica, b_replica * context_len
            )
            att = iteration.attributed()
            per_req = 1.0 / b_replica  # replica advances b_replica requests
            rows.append(
                Fig15Row(
                    label=label,
                    fits=True,
                    max_batch=b_replica * dp,
                    load_weight=att["weight_transfer"] * per_req,
                    compute=att["compute"] * per_req,
                    allreduce=att["communication"] * per_req,
                )
            )
        except CapacityError:
            rows.append(
                Fig15Row(
                    label=label,
                    fits=False,
                    max_batch=0,
                    load_weight=0.0,
                    compute=0.0,
                    allreduce=0.0,
                )
            )
        tp *= 2
    return Fig15Result(rows=rows)


def render_fig15(result: Fig15Result | None = None) -> str:
    result = result if result is not None else run_fig15()
    table_rows = []
    for r in result.rows:
        if not r.fits:
            table_rows.append([r.label, "OOM", "-", "-", "-", "-"])
            continue
        table_rows.append(
            [
                r.label,
                str(r.max_batch),
                f"{r.load_weight * 1e3:.3f}",
                f"{r.compute * 1e3:.3f}",
                f"{r.allreduce * 1e3:.3f}",
                f"{r.runtime_per_request * 1e3:.3f}",
            ]
        )
    return ascii_table(
        ["config", "batch", "load wt (ms/req)", "compute", "allreduce", "total"],
        table_rows,
        title="Figure 15: decode runtime per request and batch size, TP x DP",
    )
