"""Figure 10: end-to-end throughput on PCIe systems (A10 and L4).

For each (GPU, model, dataset) cell the harness does what the paper's
evaluation does:

- sweep every feasible static configuration for the vLLM-like baseline
  (chunked prefill enabled, chunk size tuned) and keep the best;
- pick Seesaw's (cp, cd) pair by the same search;
- report normalized throughput with the winning labels.

The paper uses 4 GPUs for the 15B model and 8 for 34B/70B; 500 arxiv
requests and 2000 sharegpt requests (scaled down by default here — pass
``full_scale=True`` to match the paper's counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotuner.search import best_seesaw_pair, best_static_config, tune_chunk_size
from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.runtime.metrics import EngineResult
from repro.utils.stats import geomean
from repro.utils.tables import ascii_table
from repro.workloads.datasets import arxiv_workload, sharegpt_workload


@dataclass(frozen=True)
class Fig10Cell:
    """One bar pair of Fig. 10."""

    gpu: str
    model: str
    dataset: str
    vllm: EngineResult
    seesaw: EngineResult

    @property
    def speedup(self) -> float:
        return self.seesaw.throughput_rps / self.vllm.throughput_rps


@dataclass(frozen=True)
class Fig10Result:
    cells: list[Fig10Cell]

    def speedups(self) -> dict[str, float]:
        return {
            f"{c.gpu}/{c.model}/{c.dataset}": c.speedup for c in self.cells
        }

    @property
    def geomean_speedup(self) -> float:
        return geomean([c.speedup for c in self.cells])

    @property
    def max_speedup(self) -> float:
        return max(c.speedup for c in self.cells)


_MODEL_GPUS = {"15b": 4, "34b": 8, "70b": 8}


def run_fig10_cell(
    gpu: str,
    model_name: str,
    dataset: str,
    *,
    num_requests: int | None = None,
    simulate_top: int = 3,
    seed: int = 10,
) -> Fig10Cell:
    """Run one (GPU, model, dataset) cell of Fig. 10."""
    model = get_model(model_name)
    cluster = make_cluster(gpu, _MODEL_GPUS[model_name])
    if dataset == "arxiv":
        workload = arxiv_workload(num_requests or 100, seed=seed)
    else:
        workload = sharegpt_workload(num_requests or 200, seed=seed)

    static_cfg = best_static_config(
        model, cluster, workload, simulate_top=simulate_top
    )
    chunk = tune_chunk_size(model, cluster, static_cfg, workload)
    vllm = VllmLikeEngine(
        model,
        cluster,
        static_cfg,
        EngineOptions(chunked_prefill=True, chunk_size=chunk),
    ).run(workload)
    # The paper reports the best vLLM variant; chunked prefill is not always
    # a win, so compare against the plain engine too.
    vllm_plain = VllmLikeEngine(model, cluster, static_cfg, EngineOptions()).run(
        workload
    )
    if vllm_plain.throughput_rps > vllm.throughput_rps:
        vllm = vllm_plain

    cp, cd = best_seesaw_pair(model, cluster, workload, simulate_top=simulate_top)
    seesaw = SeesawEngine(model, cluster, cp, cd, SeesawOptions()).run(workload)
    return Fig10Cell(
        gpu=gpu, model=model_name, dataset=dataset, vllm=vllm, seesaw=seesaw
    )


def run_fig10(
    gpus: tuple[str, ...] = ("A10", "L4"),
    models: tuple[str, ...] = ("15b", "34b", "70b"),
    datasets: tuple[str, ...] = ("arxiv", "sharegpt"),
    *,
    full_scale: bool = False,
    num_requests: int | None = None,
    simulate_top: int = 3,
) -> Fig10Result:
    """Run the full grid. ``full_scale`` uses the paper's request counts."""
    cells = []
    for gpu in gpus:
        for dataset in datasets:
            n = num_requests
            if n is None:
                n = (500 if dataset == "arxiv" else 2000) if full_scale else None
            for model_name in models:
                cells.append(
                    run_fig10_cell(
                        gpu,
                        model_name,
                        dataset,
                        num_requests=n,
                        simulate_top=simulate_top,
                    )
                )
    return Fig10Result(cells=cells)


def render_fig10(result: Fig10Result) -> str:
    rows = []
    for c in result.cells:
        rows.append(
            [
                c.gpu,
                c.dataset,
                c.model,
                c.vllm.label,
                f"{c.vllm.throughput_rps:.4f}",
                c.seesaw.label,
                f"{c.seesaw.throughput_rps:.4f}",
                f"{c.speedup:.2f}x",
            ]
        )
    table = ascii_table(
        ["gpu", "dataset", "model", "vllm cfg", "vllm rps", "seesaw cfg", "seesaw rps", "speedup"],
        rows,
        title="Figure 10: end-to-end throughput on PCIe systems",
    )
    return (
        table
        + f"\ngeomean speedup: {result.geomean_speedup:.2f}x, "
        + f"max: {result.max_speedup:.2f}x"
    )
