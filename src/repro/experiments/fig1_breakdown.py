"""Figure 1: prefill/decode execution-time breakdown across TP x PP.

LLaMA2-13B on eight L4 GPUs, global batch 16 (pipeline parallelism divides
into micro-batches of 16/PP). For each configuration we measure, via the
cost model, the wall time of (a) prefilling the batch and (b) one decode
iteration, attributed into Fig. 1's categories: communication, compute,
weight transfer.

Paper shape to reproduce: prefill time *increases* with TP (communication
dominated); decode time *decreases* with TP (weight transfer dominated
under PP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.pipeline import pipeline_time
from repro.costmodel.step import StepCostModel
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig
from repro.utils.tables import ascii_table


@dataclass(frozen=True)
class Fig1Row:
    """One configuration's stage times and attribution."""

    label: str
    prefill_time: float
    prefill_parts: dict[str, float]
    decode_time: float
    decode_parts: dict[str, float]


@dataclass(frozen=True)
class Fig1Result:
    rows: list[Fig1Row]

    def normalized(self, stage: str) -> dict[str, float]:
        """Stage times divided by the slowest configuration's (the paper
        normalizes each subplot to its maximum)."""
        times = {
            r.label: (r.prefill_time if stage == "prefill" else r.decode_time)
            for r in self.rows
        }
        vmax = max(times.values())
        return {k: v / vmax for k, v in times.items()}


def run_fig1(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    *,
    global_batch: int = 16,
    prompt_len: int = 1024,
) -> Fig1Result:
    """Measure the Fig. 1 sweep: TP1PP8 ... TP8PP1."""
    model = model or get_model("llama2-13b")
    cluster = cluster or make_cluster("L4", 8)
    n = cluster.num_gpus
    rows: list[Fig1Row] = []
    tp = 1
    while tp <= n:
        pp = n // tp
        cfg = ParallelConfig(tp=tp, pp=pp)
        costs = StepCostModel(model, cluster, cfg)

        # Prefill: the batch splits into PP micro-batches that pipeline.
        micro_seqs = max(1, global_batch // pp)
        num_micro = max(1, global_batch // micro_seqs)
        stage = costs.prefill_stage_time([prompt_len] * micro_seqs)
        prefill_time = pipeline_time(stage.total, pp, num_micro)
        prefill_parts = stage.scale(num_micro).attributed()

        # Decode: one iteration advancing the whole batch (context = prompt).
        iteration = costs.decode_iteration_time(
            global_batch, global_batch * prompt_len
        )
        rows.append(
            Fig1Row(
                label=f"TP{tp}PP{pp}",
                prefill_time=prefill_time,
                prefill_parts=prefill_parts,
                decode_time=iteration.total,
                decode_parts=iteration.attributed(),
            )
        )
        tp *= 2
    return Fig1Result(rows=rows)


def render_fig1(result: Fig1Result | None = None) -> str:
    result = result if result is not None else run_fig1()
    sections = []
    for stage in ("prefill", "decode"):
        norm = result.normalized(stage)
        rows = []
        for r in result.rows:
            parts = r.prefill_parts if stage == "prefill" else r.decode_parts
            total = sum(parts.values())
            rows.append(
                [
                    r.label,
                    f"{norm[r.label]:.2f}",
                    f"{parts['communication'] / total:.2f}",
                    f"{parts['compute'] / total:.2f}",
                    f"{parts['weight_transfer'] / total:.2f}",
                ]
            )
        sections.append(
            ascii_table(
                ["config", "norm time", "comm", "compute", "weight xfer"],
                rows,
                title=f"Figure 1 ({stage}) - LLaMA2-13B, 8x L4, batch 16",
            )
        )
    return "\n\n".join(sections)
