"""Figure 12: speedup breakdown — how Seesaw merges both parallelisms.

CodeLLaMA-34B, arxiv-summarization, four A10 GPUs. Four runs:

- ``TP4``   (chunked prefill off): best decode, terrible prefill;
- ``PP4``   (chunked prefill off): best prefill, slow decode;
- ``P4->T4`` (Seesaw): prefill like PP4 plus decode like TP4;
- ``TP2PP2+chunked``: the best single vLLM configuration.

Each run reports end-to-end time split into prefill / mixed / decode /
other (re-shard + swap stalls), the stacked bars of the figure. Expected
shape: Seesaw's prefill segment is close to PP4's and its decode segment
close to TP4's, beating TP2PP2+chunked overall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotuner.search import tune_chunk_size
from repro.core.engine import SeesawEngine
from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.parallel.config import parse_config
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table
from repro.workloads.datasets import arxiv_workload
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class Fig12Result:
    runs: dict[str, EngineResult]

    def segment(self, run: str, phase: str) -> float:
        return self.runs[run].phase_time.get(phase, 0.0)

    def other_time(self, run: str) -> float:
        r = self.runs[run]
        known = sum(
            r.phase_time.get(p, 0.0) for p in ("prefill", "mixed", "decode")
        )
        return max(0.0, r.total_time - known)


def run_fig12(
    workload: WorkloadSpec | None = None,
    *,
    num_requests: int = 120,
    seed: int = 12,
) -> Fig12Result:
    model = get_model("34b")
    cluster = make_cluster("A10", 4)
    workload = workload or arxiv_workload(num_requests, seed=seed)

    runs: dict[str, EngineResult] = {}
    runs["tp4"] = VllmLikeEngine(model, cluster, parse_config("T4")).run(workload)
    runs["pp4"] = VllmLikeEngine(model, cluster, parse_config("P4")).run(workload)
    runs["p4->t4"] = SeesawEngine(
        model, cluster, parse_config("P4"), parse_config("T4")
    ).run(workload)
    chunk = tune_chunk_size(model, cluster, parse_config("T2P2"), workload)
    runs["tp2pp2+chunked"] = VllmLikeEngine(
        model,
        cluster,
        parse_config("T2P2"),
        EngineOptions(chunked_prefill=True, chunk_size=chunk),
    ).run(workload)
    return Fig12Result(runs=runs)


def render_fig12(result: Fig12Result | None = None) -> str:
    result = result if result is not None else run_fig12()
    rows = []
    for name, r in result.runs.items():
        rows.append(
            [
                name,
                f"{r.phase_time.get('prefill', 0.0):.1f}",
                f"{r.phase_time.get('mixed', 0.0):.1f}",
                f"{r.phase_time.get('decode', 0.0):.1f}",
                f"{result.other_time(name):.1f}",
                f"{r.total_time:.1f}",
            ]
        )
    return ascii_table(
        ["run", "prefill", "mix", "decode", "other", "total (s)"],
        rows,
        title="Figure 12: speedup breakdown - 34B, arxiv, 4x A10",
    )
