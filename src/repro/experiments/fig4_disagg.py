"""Figure 4: disaggregation's restricted search space and throughput mismatch.

Deploying LLaMA2-70B (140 GiB of fp16 weights) on eight 40 GiB GPUs admits
exactly one disaggregation split — four GPUs for prefill, four for decode
(at least four GPUs are needed to hold one replica). The figure shows the
resulting throughput mismatch between the pools, and that the 4-GPU decode
pool reaches only a small fraction of 8-GPU decode throughput because the
duplicated weights crowd out KV space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.engines.base import EngineOptions
from repro.engines.disaggregated import (
    DisaggregatedEngine,
    DisaggregationPlan,
    _DecodeOnlyEngine,
)
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import parse_config
from repro.parallel.enumerate import enumerate_configs
from repro.parallel.memory import fits
from repro.utils.tables import ascii_table
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import constant_workload


@dataclass(frozen=True)
class Fig4Result:
    feasible_splits: list[str]
    prefill_rps_4gpu: float
    decode_rps_4gpu: float
    decode_rps_8gpu: float

    @property
    def mismatch_ratio(self) -> float:
        """Prefill-pool over decode-pool throughput (paper: > 6x)."""
        return self.prefill_rps_4gpu / self.decode_rps_4gpu

    @property
    def decode_fraction_of_8gpu(self) -> float:
        """4-GPU decode as a fraction of 8-GPU decode (paper: ~15%)."""
        return self.decode_rps_4gpu / self.decode_rps_8gpu


def feasible_disaggregation_splits(
    model: ModelConfig, cluster: ClusterSpec
) -> list[DisaggregationPlan]:
    """Every way to split the cluster into two pools that each fit the
    model. For 70B on 8x40GiB this returns only 4+4 splits."""
    plans = []
    for n_prefill in range(1, cluster.num_gpus):
        n_decode = cluster.num_gpus - n_prefill
        pre_cluster = replace(cluster, num_gpus=n_prefill)
        dec_cluster = replace(cluster, num_gpus=n_decode)
        pre_cfgs = [
            c
            for c in enumerate_configs(n_prefill, allow_dp=False)
            if fits(model, pre_cluster, c)
        ]
        dec_cfgs = [
            c
            for c in enumerate_configs(n_decode, allow_dp=False)
            if fits(model, dec_cluster, c)
        ]
        for cp in pre_cfgs:
            for cd in dec_cfgs:
                plans.append(DisaggregationPlan(prefill_config=cp, decode_config=cd))
    return plans


def run_fig4(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    workload: WorkloadSpec | None = None,
    *,
    num_requests: int = 400,
) -> Fig4Result:
    model = model or get_model("70b")
    cluster = cluster or make_cluster("A100-PCIE", 8)
    # Decode-heavy chat regime (short prompts, long generations), with
    # enough requests to saturate the 8-GPU decode pool's batch capacity:
    # this is where the 4-GPU pool's tiny KV space hurts most and the
    # paper's ~6x stage mismatch appears. Constant lengths avoid the
    # end-of-run drain tail polluting the steady-state comparison.
    workload = workload or constant_workload(
        num_requests, prompt_len=512, output_len=768
    )

    splits = feasible_disaggregation_splits(model, cluster)
    split_sizes = sorted({(p.prefill_gpus, p.decode_gpus) for p in splits})

    engine = DisaggregatedEngine(
        model,
        cluster,
        DisaggregationPlan(
            prefill_config=parse_config("P4"), decode_config=parse_config("T4")
        ),
    )
    analysis = engine.analyze(workload)

    decode_8 = _DecodeOnlyEngine(
        model, cluster, parse_config("T4P2"), EngineOptions()
    ).run(workload)

    return Fig4Result(
        feasible_splits=[f"{a}+{b}" for a, b in split_sizes],
        prefill_rps_4gpu=analysis.prefill_throughput_rps,
        decode_rps_4gpu=analysis.decode_throughput_rps,
        decode_rps_8gpu=decode_8.throughput_rps,
    )


def render_fig4(result: Fig4Result | None = None) -> str:
    result = result if result is not None else run_fig4()
    rows = [
        ["Prefill (4 GPUs)", f"{result.prefill_rps_4gpu:.3f}"],
        ["Decode (4 GPUs)", f"{result.decode_rps_4gpu:.3f}"],
        ["Decode (8 GPUs)", f"{result.decode_rps_8gpu:.3f}"],
    ]
    table = ascii_table(
        ["stage", "throughput (req/s)"],
        rows,
        title="Figure 4: 70B on 8x40GiB - disaggregation throughput mismatch",
    )
    notes = (
        f"feasible splits: {', '.join(result.feasible_splits)} | "
        f"prefill/decode mismatch: {result.mismatch_ratio:.1f}x | "
        f"4-GPU decode = {result.decode_fraction_of_8gpu * 100:.0f}% of 8-GPU decode"
    )
    return table + "\n" + notes
