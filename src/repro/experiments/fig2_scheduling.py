"""Figure 2: scheduling policies under transition overhead.

The paper's Fig. 2 is a schematic; this experiment makes it quantitative.
The same workload runs under three policies combined with model
re-sharding:

(a) *prefill-prioritizing* — eager transitions (``eager_transitions``
    ablation): many re-shards, high transition overhead;
(b) *decode-prioritizing* — no tiered buffer (``use_cpu_buffer=False``):
    few transitions but the decode batch drains (under-utilization);
(c) *tiered buffering + transition-minimizing* — Seesaw's default: few
    transitions AND a full decode batch.

Expected ordering: (c) has the fewest transitions among eager policies and
the highest throughput of the three.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig, parse_config
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table
from repro.workloads.datasets import sharegpt_workload
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class Fig2Result:
    policies: dict[str, EngineResult]

    @property
    def transition_counts(self) -> dict[str, int]:
        return {k: r.transitions for k, r in self.policies.items()}

    @property
    def throughputs(self) -> dict[str, float]:
        return {k: r.throughput_rps for k, r in self.policies.items()}


def run_fig2(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    workload: WorkloadSpec | None = None,
    *,
    prefill_config: ParallelConfig | None = None,
    decode_config: ParallelConfig | None = None,
    num_requests: int = 600,
) -> Fig2Result:
    # 70B on A10s with several times more requests than GPU KV capacity:
    # decode-prioritizing must drain its batch to zero before the next
    # prefill wave (under-utilization), while tiered buffering keeps the
    # batch topped up from the CPU pool — the regime Fig. 2 illustrates.
    model = model or get_model("70b")
    cluster = cluster or make_cluster("A10", 8)
    workload = workload or sharegpt_workload(num_requests, seed=11)
    cp = prefill_config or parse_config("P8")
    cd = decode_config or parse_config("T4P2")

    policies: dict[str, EngineResult] = {}
    policies["prefill-prioritizing"] = SeesawEngine(
        model, cluster, cp, cd, SeesawOptions(eager_transitions=True)
    ).run(workload)
    policies["decode-prioritizing"] = SeesawEngine(
        model, cluster, cp, cd, SeesawOptions(use_cpu_buffer=False)
    ).run(workload)
    policies["tiered+transition-minimizing"] = SeesawEngine(
        model, cluster, cp, cd, SeesawOptions()
    ).run(workload)
    return Fig2Result(policies=policies)


def render_fig2(result: Fig2Result | None = None) -> str:
    result = result if result is not None else run_fig2()
    rows = []
    for name, r in result.policies.items():
        rows.append(
            [
                name,
                str(r.transitions),
                f"{r.throughput_rps:.4f}",
                f"{r.phase_time.get('reshard', 0.0):.1f}",
                f"{r.total_time:.1f}",
            ]
        )
    return ascii_table(
        ["policy", "transitions", "req/s", "reshard(s)", "total(s)"],
        rows,
        title="Figure 2 (quantified): scheduling policies with model re-sharding",
    )
