"""Table 1: GPU hardware specifications.

Renders the registry entries that parameterize every other experiment, in
the paper's layout (memory size, memory bandwidth, FLOPS, NVLink).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPU_REGISTRY
from repro.utils.tables import ascii_table
from repro.utils.units import GB, GIB


@dataclass(frozen=True)
class Table1Row:
    gpu: str
    memory_gib: float
    bandwidth_gbs: float
    tflops: float
    nvlink: bool


def run_table1() -> list[Table1Row]:
    """Collect the Table 1 rows from the GPU registry."""
    rows = []
    for spec in GPU_REGISTRY.values():
        rows.append(
            Table1Row(
                gpu=spec.name,
                memory_gib=spec.memory_bytes / GIB,
                bandwidth_gbs=spec.hbm_bandwidth / GB,
                tflops=spec.flops / 1e12,
                nvlink=spec.has_nvlink,
            )
        )
    return rows


def render_table1(rows: list[Table1Row] | None = None) -> str:
    rows = rows if rows is not None else run_table1()
    return ascii_table(
        ["GPU Model", "Memory Size", "Memory Bandwidth", "FLOPS", "NVLink"],
        [
            [
                r.gpu,
                f"{r.memory_gib:.0f} GiB",
                f"{r.bandwidth_gbs:.0f} GB/s",
                f"{r.tflops:.0f}T",
                "yes" if r.nvlink else "no",
            ]
            for r in rows
        ],
        title="Table 1. GPU hardware specification",
    )
