"""Attainment-vs-load: throughput-tuned vs. SLO-tuned configurations.

The paper's autotuner (and the seed's) ranks configurations by offline
throughput; this experiment quantifies what that objective costs an
*online* deployment. At each offered load the workload is stamped with
Poisson arrivals and served by two static configurations:

- the **throughput-tuned** pick (the seed objective, chosen once,
  offline — exactly what ``compare`` used to deploy), and
- the **SLO-tuned** pick: the config the SLO-constrained-goodput
  objective selects *for that offered rate* via the analytic queueing
  correction (M/M/1 wait on top of the Appendix A rates).

Reported per point: each pick's measured SLO attainment, p99 TTFT and
goodput (attainment x achieved rate). Expected shape: at low load the two
objectives agree (queueing is negligible, capacity dominates); as load
approaches the throughput pick's capacity the SLO objective trades peak
throughput for headroom/service latency and holds attainment above the
throughput pick's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotuner.objective import ServingObjective
from repro.autotuner.search import best_static_config
from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.datasets import arxiv_workload
from repro.workloads.spec import WorkloadSpec

DEFAULT_LOAD_FRACTIONS = (0.3, 0.6, 1.0)
# Calibrated to the default 34b/A10x8/arxiv cell: the throughput-tuned
# pick (D2T2P2) decodes at ~80-125 ms/token in simulation, so tpot <= 70ms
# is a target it structurally misses while the TP-heavy runner-up meets it
# at ~2/3 the capacity — the trade the SLO objective exists to make.
DEFAULT_TTFT_SLO = 8.0
DEFAULT_TPOT_SLO = 0.07


@dataclass(frozen=True)
class SLOSweepPoint:
    """Both picks' measured behaviour at one offered request rate."""

    rate_rps: float
    throughput_result: EngineResult
    slo_result: EngineResult
    throughput_attainment: float
    slo_attainment: float
    predicted_attainment: float  # the analytic estimate for the SLO pick

    @property
    def throughput_goodput_rps(self) -> float:
        return self.throughput_attainment * self.throughput_result.throughput_rps

    @property
    def slo_goodput_rps(self) -> float:
        return self.slo_attainment * self.slo_result.throughput_rps


@dataclass(frozen=True)
class SLOSweepResult:
    ttft_slo: float
    tpot_slo: float
    capacity_rps: float  # measured offline capacity of the throughput pick
    points: tuple[SLOSweepPoint, ...]

    def attainments(self, system: str) -> list[float]:
        """Attainment per rate for ``throughput`` or ``slo`` (curve data)."""
        return [getattr(p, f"{system}_attainment") for p in self.points]


def run_slo_sweep(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    workload: WorkloadSpec | None = None,
    *,
    load_fractions: tuple[float, ...] = DEFAULT_LOAD_FRACTIONS,
    ttft_slo: float = DEFAULT_TTFT_SLO,
    tpot_slo: float = DEFAULT_TPOT_SLO,
    num_requests: int = 32,
    seed: int = 0,
    executor=None,
) -> SLOSweepResult:
    """Serve the workload at a sweep of loads under both tuning objectives.

    ``load_fractions`` are multiples of the throughput-tuned pick's own
    measured offline throughput, so the sweep brackets its saturation knee
    regardless of model/cluster scale. ``executor`` fans the capacity
    probe and the per-load serving runs over worker processes and the
    result cache; results are bit-identical either way.
    """
    model = model or get_model("34b")
    cluster = cluster or make_cluster("A10", 8)
    workload = workload or arxiv_workload(num_requests, seed=seed)

    throughput_cfg = best_static_config(
        model, cluster, workload, objective=ServingObjective(), executor=executor
    )
    if executor is not None:
        from repro.exec import CellSpec

        def cell(cfg, opts: EngineOptions, wl) -> CellSpec:
            return CellSpec(
                engine="vllm", model=model, cluster=cluster,
                config=cfg.label(), options=opts, workload=wl, seed=seed,
            )

        (offline,) = executor.run(
            [cell(throughput_cfg, EngineOptions(), workload)]
        )
    else:
        offline = VllmLikeEngine(model, cluster, throughput_cfg).run(workload)
    capacity = offline.throughput_rps

    opts = EngineOptions(ttft_slo=ttft_slo, tpot_slo=tpot_slo)
    # The per-load picks and predictions are analytic (cheap, in-process);
    # only the serving runs are fanned out.
    prepared = []
    for frac in load_fractions:
        rate = frac * capacity
        online = poisson_arrivals(workload, rate, seed=seed)
        objective = ServingObjective(
            kind="slo", request_rate=rate, ttft_slo=ttft_slo, tpot_slo=tpot_slo
        )
        slo_cfg = best_static_config(
            model, cluster, workload, objective=objective, executor=executor
        )
        predicted = _predicted_attainment(model, cluster, slo_cfg, workload, objective)
        prepared.append((rate, online, slo_cfg, predicted))
    if executor is not None:
        specs = []
        for rate, online, slo_cfg, _ in prepared:
            specs.append(cell(throughput_cfg, opts, online))
            if slo_cfg != throughput_cfg:
                specs.append(cell(slo_cfg, opts, online))
        results = iter(executor.run(specs))
        points = []
        for rate, online, slo_cfg, predicted in prepared:
            thr_res = next(results)
            slo_res = thr_res if slo_cfg == throughput_cfg else next(results)
            points.append(
                SLOSweepPoint(
                    rate_rps=rate,
                    throughput_result=thr_res,
                    slo_result=slo_res,
                    throughput_attainment=_attainment(thr_res, ttft_slo, tpot_slo),
                    slo_attainment=_attainment(slo_res, ttft_slo, tpot_slo),
                    predicted_attainment=predicted,
                )
            )
        return SLOSweepResult(
            ttft_slo=ttft_slo,
            tpot_slo=tpot_slo,
            capacity_rps=capacity,
            points=tuple(points),
        )
    points = []
    for rate, online, slo_cfg, predicted in prepared:
        thr_res = VllmLikeEngine(model, cluster, throughput_cfg, opts).run(online)
        slo_res = (
            thr_res
            if slo_cfg == throughput_cfg
            else VllmLikeEngine(model, cluster, slo_cfg, opts).run(online)
        )
        points.append(
            SLOSweepPoint(
                rate_rps=rate,
                throughput_result=thr_res,
                slo_result=slo_res,
                throughput_attainment=_attainment(thr_res, ttft_slo, tpot_slo),
                slo_attainment=_attainment(slo_res, ttft_slo, tpot_slo),
                predicted_attainment=predicted,
            )
        )
    return SLOSweepResult(
        ttft_slo=ttft_slo,
        tpot_slo=tpot_slo,
        capacity_rps=capacity,
        points=tuple(points),
    )


def _attainment(result: EngineResult, ttft_slo: float, tpot_slo: float) -> float:
    assert result.latency is not None
    return result.latency.slo_attainment(ttft_slo=ttft_slo, tpot_slo=tpot_slo)


def _predicted_attainment(
    model: ModelConfig,
    cluster: ClusterSpec,
    config,
    workload: WorkloadSpec,
    objective: ServingObjective,
) -> float:
    from repro.autotuner.predictor import predict_request_rate

    n = workload.num_requests
    rates = predict_request_rate(
        model,
        cluster,
        config,
        config,
        workload.total_input_tokens / n,
        workload.total_output_tokens / n,
        concurrency=n,
    )
    avg_in = workload.total_input_tokens / n
    avg_out = workload.total_output_tokens / n
    return objective.predict(rates, avg_in, avg_out).attainment


def render_slo_sweep(result: SLOSweepResult | None = None) -> str:
    result = result if result is not None else run_slo_sweep()
    rows = []
    for p in result.points:
        for name, res, att in (
            ("thr-tuned", p.throughput_result, p.throughput_attainment),
            ("slo-tuned", p.slo_result, p.slo_attainment),
        ):
            lat = res.latency
            assert lat is not None
            rows.append(
                [
                    f"{p.rate_rps:.3f}",
                    f"{name} {res.label}",
                    f"{att * 100:.0f}%",
                    f"{att * res.throughput_rps:.3f}",
                    f"{lat.ttft.p99:.2f}",
                    f"{lat.tpot.p99 * 1e3:.0f}",
                    f"{res.throughput_rps:.3f}",
                ]
            )
    return ascii_table(
        [
            "rate(r/s)",
            "system",
            "slo-att",
            "goodput(r/s)",
            "ttft-p99(s)",
            "tpot-p99(ms)",
            "req/s",
        ],
        rows,
        title=(
            f"SLO sweep (ttft<={result.ttft_slo:g}s, "
            f"tpot<={result.tpot_slo * 1e3:g}ms; "
            f"thr-tuned capacity {result.capacity_rps:.3f} req/s)"
        ),
    )
