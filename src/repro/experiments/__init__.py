"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning a structured result and
a ``render`` helper producing the ASCII equivalent of the paper's artifact.
Request counts default to scaled-down values so the full suite runs in
seconds; pass ``full_scale=True`` (or explicit counts) for the paper's
sizes. EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments.table1_hw import run_table1, render_table1
from repro.experiments.fig1_breakdown import run_fig1, render_fig1
from repro.experiments.fig2_scheduling import run_fig2, render_fig2
from repro.experiments.fig4_disagg import run_fig4, render_fig4
from repro.experiments.fig9_datasets import run_fig9, render_fig9
from repro.experiments.fig10_e2e import run_fig10, render_fig10
from repro.experiments.fig11_a100 import run_fig11, render_fig11
from repro.experiments.fig12_breakdown import run_fig12, render_fig12
from repro.experiments.fig13_dp_ratio import run_fig13, render_fig13
from repro.experiments.fig14_bandwidth import run_fig14, render_fig14
from repro.experiments.fig15_dp_decode import run_fig15, render_fig15
from repro.experiments.latency_sweep import run_latency_sweep, render_latency_sweep
from repro.experiments.routing_sweep import run_routing_sweep, render_routing_sweep
from repro.experiments.slo_sweep import run_slo_sweep, render_slo_sweep
from repro.experiments.coupled_sweep import run_coupled_sweep, render_coupled_sweep
from repro.experiments.autoscale_sweep import (
    run_autoscale_sweep,
    render_autoscale_sweep,
)

__all__ = [
    "run_autoscale_sweep",
    "render_autoscale_sweep",
    "run_coupled_sweep",
    "render_coupled_sweep",
    "run_latency_sweep",
    "render_latency_sweep",
    "run_routing_sweep",
    "render_routing_sweep",
    "run_slo_sweep",
    "render_slo_sweep",
    "run_table1",
    "render_table1",
    "run_fig1",
    "render_fig1",
    "run_fig2",
    "render_fig2",
    "run_fig4",
    "render_fig4",
    "run_fig9",
    "render_fig9",
    "run_fig10",
    "render_fig10",
    "run_fig11",
    "render_fig11",
    "run_fig12",
    "render_fig12",
    "run_fig13",
    "render_fig13",
    "run_fig14",
    "render_fig14",
    "run_fig15",
    "render_fig15",
]
