"""Figure 14: projected throughput vs inter-connection bandwidth.

CodeLLaMA-34B, arxiv-summarization, eight A10s; the all-reduce bandwidth is
scaled from 0.1x to 50x of PCIe (the paper projects this by mutating traced
all-reduce times; we re-run the cost-model-driven engines with a scaled
fabric, which is the same operation).

Shapes to reproduce: at low bandwidth pipeline-heavy configs win; at very
high bandwidth tensor-heavy configs win; Seesaw tracks the upper envelope
across the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.autotuner.search import best_seesaw_pair
from repro.core.engine import SeesawEngine
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import parse_config
from repro.utils.tables import ascii_series
from repro.workloads.datasets import arxiv_workload
from repro.workloads.spec import WorkloadSpec

DEFAULT_SCALES = (0.1, 0.33, 1.0, 3.3, 10.0, 50.0)
STATIC_LABELS = (
    "d2t1p4",
    "d2t2p2",
    "d2t4p1",
    "d1t1p8",
    "d1t2p4",
    "d1t4p2",
    "d1t8p1",
)
SEESAW_LABEL = "d2p4->d2t4"
SEESAW_AUTO_LABEL = "seesaw(auto)"


@dataclass(frozen=True)
class Fig14Result:
    scales: tuple[float, ...]
    throughput: dict[str, list[float]]

    def normalized(self) -> dict[str, list[float]]:
        vmax = max(max(v) for v in self.throughput.values())
        return {k: [x / vmax for x in v] for k, v in self.throughput.items()}

    def best_static_at(self, idx: int) -> str:
        return max(STATIC_LABELS, key=lambda k: self.throughput[k][idx])


def run_fig14(
    model: ModelConfig | None = None,
    base_cluster: ClusterSpec | None = None,
    workload: WorkloadSpec | None = None,
    *,
    scales: Sequence[float] = DEFAULT_SCALES,
    num_requests: int = 64,
    seed: int = 14,
) -> Fig14Result:
    model = model or get_model("34b")
    base_cluster = base_cluster or make_cluster("A10", 8)
    workload = workload or arxiv_workload(num_requests, seed=seed)

    throughput: dict[str, list[float]] = {k: [] for k in STATIC_LABELS}
    throughput[SEESAW_LABEL] = []
    throughput[SEESAW_AUTO_LABEL] = []
    for scale in scales:
        cluster = base_cluster.scaled_bandwidth(scale)
        for label in STATIC_LABELS:
            engine = VllmLikeEngine(model, cluster, parse_config(label))
            throughput[label].append(engine.run(workload).throughput_rps)
        seesaw = SeesawEngine(
            model, cluster, parse_config("d2p4"), parse_config("d2t4")
        )
        throughput[SEESAW_LABEL].append(seesaw.run(workload).throughput_rps)
        # Seesaw's adaptive mode: re-pick the (cp, cd) pair for the fabric
        # at hand (the paper's fixed-pair curve assumes PCIe-era trade-offs;
        # re-sharding itself is what lets the engine follow the optimum —
        # including degenerating to a single config when bandwidth makes
        # stage-specific sharding unnecessary).
        cp, cd = best_seesaw_pair(
            model,
            cluster,
            workload,
            simulate_top=3,
            sample_requests=min(32, workload.num_requests),
        )
        auto = SeesawEngine(model, cluster, cp, cd)
        throughput[SEESAW_AUTO_LABEL].append(auto.run(workload).throughput_rps)
    return Fig14Result(scales=tuple(scales), throughput=throughput)


def render_fig14(result: Fig14Result | None = None) -> str:
    result = result if result is not None else run_fig14()
    norm = result.normalized()
    return ascii_series(
        "bw x",
        list(result.scales),
        norm,
        title="Figure 14: normalized throughput vs all-reduce bandwidth "
        "(34B, arxiv, 8x A10)",
    )
