"""Elastic fleet vs peak provisioning under a diurnal day-shape.

The defining production scenario for an elastic serving fleet: offered
load follows a day curve (``diurnal:`` arrivals — peak near double the
mean, trough near zero), and capacity is billed by the replica-second.
A statically provisioned fleet must hold the peak replica count for the
whole day; an autoscaled fleet rides the curve — paying the cost-model
scale-up latency (weight load over the host link + KV warmup) on every
ramp, and draining replicas into the trough.

The sweep serves the same diurnal workload three ways on the
event-coupled simulator:

- ``static-peak`` — ``max_dp`` replicas, fixed (autoscaler ``none``);
- ``threshold``   — reactive scaling on observed queue depth / idle
  fraction;
- ``predictive``  — Erlang-C right-sizing from the measured arrival rate.

and reports p99-TTFT SLO attainment, billed replica-seconds, and goodput
per replica-second. The acceptance claim (pinned by tests and CI): an
autoscaled fleet matches the peak-provisioned fleet's SLO attainment at
materially (>= 25%) fewer replica-seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig, parse_config
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import constant_workload

DEFAULT_AUTOSCALERS = ("threshold", "predictive")
DEFAULT_TTFT_SLO = 15.0
DEFAULT_PERIODS = 2.0  # day-curve cycles the workload spans
DEFAULT_LOAD_FRACTION = 0.5  # mean offered load vs the peak fleet's capacity


@dataclass(frozen=True)
class AutoscalePoint:
    """One fleet-provisioning mode serving the diurnal workload."""

    autoscaler: str  # "none" = the static peak-provisioned fleet
    result: EngineResult

    @property
    def replica_seconds(self) -> float:
        stats = self.result.router
        assert stats is not None
        if stats.fleet is not None:
            return stats.fleet.replica_seconds
        return stats.num_replicas * self.result.total_time

    def attainment(self, ttft_slo: float) -> float:
        assert self.result.latency is not None
        return self.result.latency.slo_attainment(ttft_slo=ttft_slo, tpot_slo=None)

    def goodput_per_replica_second(self, ttft_slo: float) -> float:
        return (
            self.attainment(ttft_slo)
            * self.result.num_requests
            / self.replica_seconds
        )


@dataclass(frozen=True)
class AutoscaleSweepResult:
    capacity_rps_per_replica: float
    mean_rate_rps: float
    period_s: float
    ttft_slo: float
    max_dp: int
    points: tuple[AutoscalePoint, ...]

    def point(self, autoscaler: str) -> AutoscalePoint:
        for p in self.points:
            if p.autoscaler == autoscaler:
                return p
        raise ConfigurationError(f"no sweep point for autoscaler {autoscaler!r}")

    @property
    def static_peak(self) -> AutoscalePoint:
        return self.point("none")

    def elastic_wins(self) -> list[AutoscalePoint]:
        """Autoscaled points matching the static peak fleet's attainment
        at >= 25% fewer replica-seconds — the acceptance claim."""
        base = self.static_peak
        base_att = base.attainment(self.ttft_slo)
        return [
            p
            for p in self.points
            if p.autoscaler != "none"
            and p.attainment(self.ttft_slo) >= base_att
            and p.replica_seconds <= 0.75 * base.replica_seconds
        ]


def run_autoscale_sweep(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    *,
    replica_config: ParallelConfig | None = None,
    max_dp: int = 4,
    autoscalers: tuple[str, ...] = DEFAULT_AUTOSCALERS,
    ttft_slo: float = DEFAULT_TTFT_SLO,
    load_fraction: float = DEFAULT_LOAD_FRACTION,
    periods: float = DEFAULT_PERIODS,
    num_requests: int | None = None,
    prompt_len: int = 2048,
    output_len: int = 128,
    seed: int = 0,
    executor=None,
) -> AutoscaleSweepResult:
    """Serve one diurnal workload with a static peak fleet and each
    autoscaler.

    The cell is self-scaling: one replica's measured offline throughput
    sets the mean offered rate at ``load_fraction * max_dp`` replicas'
    worth, so the diurnal peak (about ``1.8x`` the mean at the default
    amplitude) needs most of ``max_dp`` while the trough idles most of
    the fleet — the regime where elasticity pays. ``num_requests``
    defaults to whatever spans ``periods`` day-curve cycles; the period
    is derived, keeping run length stable across models. ``executor``
    fans the capacity probe and the fleet runs over worker processes and
    the result cache; results are bit-identical either way.
    """
    model = model or get_model("15b")
    cluster = cluster or make_cluster("A10", 8)
    replica_config = replica_config or parse_config("T2")
    if replica_config.dp != 1:
        raise ConfigurationError("replica_config is one replica; set max_dp")
    if max_dp < 2:
        raise ConfigurationError("autoscale sweep needs max_dp >= 2")
    if max_dp * replica_config.num_gpus > cluster.num_gpus:
        raise ConfigurationError(
            f"max_dp {max_dp} needs {max_dp * replica_config.num_gpus} GPUs, "
            f"cluster has {cluster.num_gpus}"
        )

    probe = constant_workload(24, prompt_len, output_len)
    if executor is not None:
        from repro.exec import CellSpec

        def cell(cfg, opts: EngineOptions, wl) -> CellSpec:
            return CellSpec(
                engine="vllm", model=model, cluster=cluster,
                config=cfg.label(), options=opts, workload=wl, seed=seed,
            )

        (probe_res,) = executor.run(
            [cell(replica_config, EngineOptions(), probe)]
        )
        capacity = probe_res.throughput_rps
    else:
        capacity = (
            VllmLikeEngine(model, cluster, replica_config)
            .run(probe)
            .throughput_rps
        )
    mean_rate = load_fraction * max_dp * capacity
    if num_requests is None:
        num_requests = max(48, int(periods * 120))
    period_s = num_requests / mean_rate / periods
    base = constant_workload(num_requests, prompt_len, output_len)
    workload: WorkloadSpec = diurnal_arrivals(base, mean_rate, period_s, seed=seed)

    peak_config = dc_replace(replica_config, dp=max_dp)
    peak_opts = EngineOptions(router="jsq", coupled=True, ttft_slo=ttft_slo)
    elastic_opts = [
        EngineOptions(
            router="jsq",
            coupled=True,
            ttft_slo=ttft_slo,
            autoscaler=policy,
            min_dp=1,
            max_dp=max_dp,
        )
        for policy in autoscalers
    ]
    if executor is not None:
        fleet_results = executor.run(
            [cell(peak_config, peak_opts, workload)]
            + [cell(replica_config, opts, workload) for opts in elastic_opts]
        )
        points = [
            AutoscalePoint(autoscaler=name, result=result)
            for name, result in zip(
                ("none", *autoscalers), fleet_results, strict=True
            )
        ]
        return AutoscaleSweepResult(
            capacity_rps_per_replica=capacity,
            mean_rate_rps=mean_rate,
            period_s=period_s,
            ttft_slo=ttft_slo,
            max_dp=max_dp,
            points=tuple(points),
        )
    points = [
        AutoscalePoint(
            autoscaler="none",
            result=VllmLikeEngine(
                model, cluster, peak_config, peak_opts
            ).run(workload),
        )
    ]
    for policy, options in zip(autoscalers, elastic_opts, strict=True):
        points.append(
            AutoscalePoint(
                autoscaler=policy,
                result=VllmLikeEngine(
                    model, cluster, replica_config, options
                ).run(workload),
            )
        )
    return AutoscaleSweepResult(
        capacity_rps_per_replica=capacity,
        mean_rate_rps=mean_rate,
        period_s=period_s,
        ttft_slo=ttft_slo,
        max_dp=max_dp,
        points=tuple(points),
    )


def render_autoscale_sweep(result: AutoscaleSweepResult | None = None) -> str:
    result = result if result is not None else run_autoscale_sweep()
    base = result.static_peak
    rows = []
    for p in result.points:
        r = p.result
        lat, stats = r.latency, r.router
        assert lat is not None and stats is not None
        fleet = stats.fleet
        savings = 1.0 - p.replica_seconds / base.replica_seconds
        rows.append(
            [
                "static-peak" if p.autoscaler == "none" else p.autoscaler,
                str(fleet.peak_dp if fleet else stats.num_replicas),
                f"{fleet.mean_dp:.2f}" if fleet else f"{stats.num_replicas:.2f}",
                f"+{fleet.scale_ups}/-{fleet.scale_downs}" if fleet else "+0/-0",
                f"{lat.ttft.p99:.2f}",
                f"{p.attainment(result.ttft_slo) * 100:.0f}%",
                f"{p.replica_seconds:.1f}",
                f"{savings * 100:+.0f}%",
                f"{p.goodput_per_replica_second(result.ttft_slo):.4f}",
            ]
        )
    return ascii_table(
        [
            "fleet",
            "peak-dp",
            "mean-dp",
            "scale",
            "ttft-p99",
            "slo-att",
            "replica-s",
            "saved",
            "goodput/replica-s",
        ],
        rows,
        title=(
            f"Elastic fleet vs peak provisioning (diurnal "
            f"{result.mean_rate_rps:.2f} req/s mean, T={result.period_s:.0f}s, "
            f"ttft<={result.ttft_slo:g}s, max dp {result.max_dp})"
        ),
    )
