"""Figure 11: throughput on A100 — PCIe vs NVLink.

LLaMA2-70B on eight A100-40G GPUs, both interconnect variants, both
datasets. Shapes to reproduce:

- on PCIe, Seesaw clearly beats vLLM (the paper: +46% arxiv, +30% sharegpt);
- on NVLink the all-reduce is cheap, so the gap narrows (paper: +13% on
  sharegpt, parity on arxiv);
- Seesaw lifts the PCIe machine much closer to NVLink-level throughput
  (paper: vLLM PCIe ~60% of NVLink; Seesaw ~82-89%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotuner.search import best_seesaw_pair, best_static_config, tune_chunk_size
from repro.core.engine import SeesawEngine
from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table
from repro.workloads.datasets import arxiv_workload, sharegpt_workload


@dataclass(frozen=True)
class Fig11Result:
    """results[(dataset, interconnect)] -> {'vllm': ..., 'seesaw': ...}"""

    results: dict[tuple[str, str], dict[str, EngineResult]]

    def speedup(self, dataset: str, interconnect: str) -> float:
        cell = self.results[(dataset, interconnect)]
        return cell["seesaw"].throughput_rps / cell["vllm"].throughput_rps

    def pcie_recovery(self, dataset: str, engine: str) -> float:
        """Engine's PCIe throughput as a fraction of the same engine class's
        NVLink *vLLM* throughput (the paper normalizes to vLLM+NVLink)."""
        base = self.results[(dataset, "nvlink")]["vllm"].throughput_rps
        return self.results[(dataset, "pcie")][engine].throughput_rps / base


def run_fig11(
    *,
    num_arxiv: int = 80,
    num_sharegpt: int = 160,
    simulate_top: int = 3,
    seed: int = 11,
) -> Fig11Result:
    model = get_model("70b")
    clusters = {
        "pcie": make_cluster("A100-PCIE", 8),
        "nvlink": make_cluster("A100-SXM", 8),
    }
    workloads = {
        "arxiv": arxiv_workload(num_arxiv, seed=seed),
        "sharegpt": sharegpt_workload(num_sharegpt, seed=seed),
    }
    results: dict[tuple[str, str], dict[str, EngineResult]] = {}
    for ds_name, workload in workloads.items():
        for ic_name, cluster in clusters.items():
            static_cfg = best_static_config(
                model, cluster, workload, simulate_top=simulate_top
            )
            chunk = tune_chunk_size(model, cluster, static_cfg, workload)
            vllm = VllmLikeEngine(
                model,
                cluster,
                static_cfg,
                EngineOptions(chunked_prefill=True, chunk_size=chunk),
            ).run(workload)
            vllm_plain = VllmLikeEngine(
                model, cluster, static_cfg, EngineOptions()
            ).run(workload)
            if vllm_plain.throughput_rps > vllm.throughput_rps:
                vllm = vllm_plain
            cp, cd = best_seesaw_pair(
                model, cluster, workload, simulate_top=simulate_top
            )
            seesaw = SeesawEngine(model, cluster, cp, cd).run(workload)
            results[(ds_name, ic_name)] = {"vllm": vllm, "seesaw": seesaw}
    return Fig11Result(results=results)


def render_fig11(result: Fig11Result) -> str:
    rows = []
    for (dataset, ic), cell in result.results.items():
        base = result.results[(dataset, "nvlink")]["vllm"].throughput_rps
        for engine_name, r in cell.items():
            rows.append(
                [
                    dataset,
                    ic,
                    engine_name,
                    r.label,
                    f"{r.throughput_rps:.4f}",
                    f"{r.throughput_rps / base:.2f}",
                ]
            )
    return ascii_table(
        ["dataset", "link", "engine", "config", "req/s", "norm (vllm+nvlink=1)"],
        rows,
        title="Figure 11: LLaMA2-70B on 8x A100 - PCIe vs NVLink",
    )
