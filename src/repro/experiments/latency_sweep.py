"""Load-latency curves: Seesaw vs. the best static config under live traffic.

The paper evaluates offline throughput only; this experiment asks the
online question its Section 7 leaves open — what Seesaw's re-sharding
stalls cost in *latency* as the request rate grows. The same base workload
is stamped with Poisson (or bursty) arrivals at a sweep of request rates
and served by (a) the best static vLLM-style configuration and (b) the
best Seesaw (cp, cd) pair. Per rate we record TTFT/TPOT/E2E percentiles,
queue delay, and SLO attainment.

Expected shape: at low rates both systems are arrival-bound (latency flat,
throughput = offered rate); past each system's capacity the queue grows
and TTFT blows up. Seesaw's extra transitions make its TTFT knee appear at
*lower* rates than its offline throughput advantage would suggest — the
re-sharding stall sits directly on the critical path of whoever arrives
mid-decode-phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotuner.search import best_seesaw_pair, best_static_config
from repro.core.engine import SeesawEngine
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table
from repro.workloads.arrivals import make_arrivals
from repro.workloads.datasets import sharegpt_workload
from repro.workloads.spec import WorkloadSpec

DEFAULT_RATES = (0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class LatencySweepPoint:
    """Both systems' results at one offered request rate."""

    rate_rps: float
    static: EngineResult
    seesaw: EngineResult


@dataclass(frozen=True)
class LatencySweepResult:
    points: tuple[LatencySweepPoint, ...]

    def ttft_p99(self, system: str) -> list[float]:
        """p99 TTFT per rate for ``static`` or ``seesaw`` (curve data)."""
        out = []
        for p in self.points:
            r = getattr(p, system)
            assert r.latency is not None
            out.append(r.latency.ttft.p99)
        return out


def run_latency_sweep(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    workload: WorkloadSpec | None = None,
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    arrival: str = "poisson",
    burstiness: float = 4.0,
    num_requests: int = 60,
    seed: int = 0,
    executor=None,
) -> LatencySweepResult:
    """``executor`` (a :class:`~repro.exec.CellExecutor`) fans the
    (rate, system) cells over worker processes and the result cache;
    ``None`` keeps the exact serial loop. Results are bit-identical."""
    model = model or get_model("34b")
    cluster = cluster or make_cluster("A10", 8)
    workload = workload or sharegpt_workload(num_requests, seed=seed)

    # Tune both systems once, offline, as the paper does; the sweep then
    # measures how those fixed choices behave under increasing load.
    static_cfg = best_static_config(model, cluster, workload, executor=executor)
    cp, cd = best_seesaw_pair(model, cluster, workload, executor=executor)

    onlines = [
        make_arrivals(workload, arrival, rate, burstiness=burstiness, seed=seed)
        for rate in rates
    ]
    if executor is not None:
        from repro.core.options import SeesawOptions
        from repro.engines.base import EngineOptions
        from repro.exec import CellSpec

        specs = []
        for online in onlines:
            specs.append(
                CellSpec(
                    engine="vllm", model=model, cluster=cluster,
                    config=static_cfg.label(), options=EngineOptions(),
                    workload=online, seed=seed,
                )
            )
            specs.append(
                CellSpec(
                    engine="seesaw", model=model, cluster=cluster,
                    config=f"{cp.label()}->{cd.label()}",
                    options=SeesawOptions(), workload=online, seed=seed,
                )
            )
        results = executor.run(specs)
        points = [
            LatencySweepPoint(
                rate_rps=rate, static=results[2 * i], seesaw=results[2 * i + 1]
            )
            for i, rate in enumerate(rates)
        ]
        return LatencySweepResult(points=tuple(points))
    points = []
    for rate, online in zip(rates, onlines, strict=True):
        static = VllmLikeEngine(model, cluster, static_cfg).run(online)
        seesaw = SeesawEngine(model, cluster, cp, cd).run(online)
        points.append(
            LatencySweepPoint(rate_rps=rate, static=static, seesaw=seesaw)
        )
    return LatencySweepResult(points=tuple(points))


def render_latency_sweep(result: LatencySweepResult | None = None) -> str:
    result = result if result is not None else run_latency_sweep()
    rows = []
    for p in result.points:
        for name, r in (("static", p.static), ("seesaw", p.seesaw)):
            lat = r.latency
            assert lat is not None
            rows.append(
                [
                    f"{p.rate_rps:g}",
                    f"{name} {r.label}",
                    f"{r.throughput_rps:.3f}",
                    f"{lat.ttft.p50:.2f}",
                    f"{lat.ttft.p99:.2f}",
                    f"{lat.tpot.p50 * 1e3:.0f}",
                    f"{lat.tpot.p99 * 1e3:.0f}",
                    f"{lat.e2e.p99:.1f}",
                    f"{lat.queue_delay.mean:.2f}",
                    str(r.transitions),
                ]
            )
    return ascii_table(
        [
            "rate(r/s)",
            "system",
            "req/s",
            "ttft-p50",
            "ttft-p99",
            "tpot-p50(ms)",
            "tpot-p99(ms)",
            "e2e-p99",
            "queue(s)",
            "transitions",
        ],
        rows,
        title="Load-latency sweep: Seesaw vs. best static config",
    )
