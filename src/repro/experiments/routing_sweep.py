"""Routing-policy comparison under Poisson vs. bursty arrivals.

The paper partitions requests across DP replicas once, at t=0; PR 2's
routing subsystem replaces that with arrival-time dispatch. This
experiment quantifies what the dispatch policy is worth: the same
workload is stamped with a Poisson and a bursty (Gamma-modulated)
arrival process at the *same offered rate* and served under every
routing policy on a data-parallel configuration.

The default workload is bimodal (long prompts on one submission-index
parity) — the adversarial-but-realistic shape for static round-robin,
which deals every long prompt to the same replica. Expected result:
under Poisson arrivals the policies are close (round-robin is a fine
balancer for memoryless traffic), while under bursty arrivals ``jsq``
and ``least-work`` hold p99 TTFT well below ``static`` because they
steer arrivals away from the replica still digesting the long-prompt
backlog; ``po2`` lands between (with two replicas it degenerates to
JSQ exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig, parse_config
from repro.routing import ROUTER_POLICIES
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table
from repro.workloads.arrivals import make_arrivals
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import bimodal_workload

ARRIVALS = ("poisson", "bursty")


@dataclass(frozen=True)
class RoutingSweepPoint:
    """One (arrival process, routing policy) cell."""

    arrival: str
    policy: str
    result: EngineResult


@dataclass(frozen=True)
class RoutingSweepResult:
    rate_rps: float
    burstiness: float
    points: tuple[RoutingSweepPoint, ...]

    def result(self, arrival: str, policy: str) -> EngineResult:
        for p in self.points:
            if p.arrival == arrival and p.policy == policy:
                return p.result
        raise ConfigurationError(f"no sweep point ({arrival}, {policy})")

    def ttft_p99(self, arrival: str, policy: str) -> float:
        r = self.result(arrival, policy)
        assert r.latency is not None
        return r.latency.ttft.p99


def run_routing_sweep(
    model: ModelConfig | None = None,
    cluster: ClusterSpec | None = None,
    workload: WorkloadSpec | None = None,
    *,
    config: ParallelConfig | None = None,
    policies: tuple[str, ...] = ROUTER_POLICIES,
    rate_rps: float | None = None,
    burstiness: float = 8.0,
    num_requests: int = 48,
    seed: int = 0,
    executor=None,
) -> RoutingSweepResult:
    """Serve one workload under every (arrival process, policy) pair.

    ``rate_rps=None`` drives the cluster at its own offline throughput —
    the knee of the load-latency curve, where dispatch quality matters —
    measured with one untimed offline run of the same configuration.
    ``executor`` fans the capacity probe and the sweep cells over worker
    processes and the result cache; results are bit-identical either way.
    """
    model = model or get_model("13b")
    cluster = cluster or make_cluster("A10", 8)
    config = config or parse_config("D4T2")
    workload = workload or bimodal_workload(num_requests)
    if config.dp < 2:
        raise ConfigurationError("routing sweep needs a data-parallel config")
    if executor is not None:
        from repro.exec import CellSpec

        def cell(opts: EngineOptions, wl) -> CellSpec:
            return CellSpec(
                engine="vllm", model=model, cluster=cluster,
                config=config.label(), options=opts, workload=wl, seed=seed,
            )

        if rate_rps is None:
            (offline,) = executor.run([cell(EngineOptions(), workload)])
            rate_rps = offline.throughput_rps
        cells = [
            (arrival, policy, online)
            for arrival in ARRIVALS
            for online in (
                make_arrivals(
                    workload, arrival, rate_rps, burstiness=burstiness, seed=seed
                ),
            )
            for policy in policies
        ]
        results = executor.run(
            cell(EngineOptions(router=policy, router_seed=seed), online)
            for _, policy, online in cells
        )
        points = [
            RoutingSweepPoint(arrival=arrival, policy=policy, result=result)
            for (arrival, policy, _), result in zip(cells, results, strict=True)
        ]
        return RoutingSweepResult(
            rate_rps=rate_rps, burstiness=burstiness, points=tuple(points)
        )
    if rate_rps is None:
        offline = VllmLikeEngine(model, cluster, config).run(workload)
        rate_rps = offline.throughput_rps
    points = []
    for arrival in ARRIVALS:
        online = make_arrivals(
            workload, arrival, rate_rps, burstiness=burstiness, seed=seed
        )
        for policy in policies:
            opts = EngineOptions(router=policy, router_seed=seed)
            result = VllmLikeEngine(model, cluster, config, opts).run(online)
            points.append(
                RoutingSweepPoint(arrival=arrival, policy=policy, result=result)
            )
    return RoutingSweepResult(
        rate_rps=rate_rps, burstiness=burstiness, points=tuple(points)
    )


def render_routing_sweep(result: RoutingSweepResult | None = None) -> str:
    result = result if result is not None else run_routing_sweep()
    rows = []
    for p in result.points:
        r = p.result
        lat, stats = r.latency, r.router
        assert lat is not None and stats is not None
        rows.append(
            [
                p.arrival,
                p.policy,
                f"{r.throughput_rps:.3f}",
                f"{lat.ttft.p50:.3f}",
                f"{lat.ttft.p99:.3f}",
                f"{lat.queue_delay.mean:.3f}",
                f"{stats.token_imbalance:.2f}",
                f"{stats.peak_queue_imbalance:.2f}",
                str(stats.rebalanced_requests),
            ]
        )
    return ascii_table(
        [
            "arrival",
            "policy",
            "req/s",
            "ttft-p50",
            "ttft-p99",
            "queue(s)",
            "tok-imbal",
            "queue-imbal",
            "rebalanced",
        ],
        rows,
        title=(
            f"Routing policies at {result.rate_rps:.2f} req/s "
            f"(bursty cv2={result.burstiness:g})"
        ),
    )
