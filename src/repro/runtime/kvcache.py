"""Paged GPU KV-cache manager (vLLM-style block allocator, simulated).

Tracks, at block granularity, which sequences occupy the device KV cache of
one DP replica. Engines allocate a sequence's current context at admission
and grow it one token per decode step; the allocator enforces capacity and
exposes the free-token headroom schedulers use for admission control.

The byte math comes from :mod:`repro.parallel.memory`; the allocator works
in *tokens of one replica* (every GPU of the replica holds its shard of
each cached token, so replica capacity is the per-GPU capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, SimulationError

DEFAULT_BLOCK_SIZE = 16


@dataclass
class KVCacheManager:
    """Block-granular KV accounting for one replica's GPUs.

    Attributes:
        capacity_tokens: Total tokens the replica can cache.
        block_size: Tokens per page (vLLM default 16).
    """

    capacity_tokens: int
    block_size: int = DEFAULT_BLOCK_SIZE
    _blocks: dict[int, int] = field(default_factory=dict, repr=False)
    _reserved_blocks: dict[int, int] = field(default_factory=dict, repr=False)
    # Running total of allocated + reserved blocks, kept in lock-step with
    # the two dicts so ``used_blocks`` is O(1) instead of O(sequences).
    _used: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_tokens < self.block_size:
            raise CapacityError(
                f"KV capacity {self.capacity_tokens} tokens is below one block"
            )
        if self.block_size < 1:
            raise CapacityError("block_size must be >= 1")
        self._used = sum(self._blocks.values()) + sum(self._reserved_blocks.values())

    # ------------------------------------------------------------------ #
    # Capacity queries
    # ------------------------------------------------------------------ #

    @property
    def total_blocks(self) -> int:
        return self.capacity_tokens // self.block_size

    @property
    def used_blocks(self) -> int:
        return self._used

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self.used_blocks

    @property
    def free_tokens(self) -> int:
        return self.free_blocks * self.block_size

    @property
    def num_sequences(self) -> int:
        return len(self._blocks)

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` (ceil)."""
        return -(-tokens // self.block_size)

    def can_allocate(self, tokens: int) -> bool:
        return self.blocks_for(tokens) <= self.free_blocks

    # ------------------------------------------------------------------ #
    # Allocation lifecycle
    # ------------------------------------------------------------------ #

    def allocate(self, seq_id: int, tokens: int) -> None:
        """Admit a sequence with ``tokens`` of context."""
        if seq_id in self._blocks:
            raise SimulationError(f"sequence {seq_id} already allocated")
        need = self.blocks_for(tokens)
        reserved = self._reserved_blocks.pop(seq_id, 0)
        if need > self.free_blocks + reserved:
            self._reserved_blocks[seq_id] = reserved  # restore before raising
            raise CapacityError(
                f"sequence {seq_id}: need {need} blocks, only "
                f"{self.free_blocks + reserved} free"
            )
        self._blocks[seq_id] = need
        self._used += need - reserved

    def grow(self, seq_id: int, new_total_tokens: int) -> None:
        """Grow a sequence's allocation to cover ``new_total_tokens``."""
        if seq_id not in self._blocks:
            raise SimulationError(f"sequence {seq_id} not allocated")
        need = self.blocks_for(new_total_tokens)
        current = self._blocks[seq_id]
        if need <= current:
            return
        extra = need - current
        if extra > self.free_blocks:
            raise CapacityError(
                f"sequence {seq_id}: cannot grow by {extra} blocks "
                f"({self.free_blocks} free)"
            )
        self._blocks[seq_id] = need
        self._used += extra

    def grow_one_block(self, seq_id: int) -> None:
        """Extend a sequence by exactly one block.

        Trusted hook for the vectorized decode path, which detects block
        boundary crossings itself (context grows one token per iteration, so
        a crossing needs exactly one new block) and pre-checks aggregate
        headroom before applying any growth.
        """
        if self._used >= self.total_blocks:
            raise CapacityError(f"sequence {seq_id}: cannot grow by 1 block (0 free)")
        self._blocks[seq_id] += 1
        self._used += 1

    def free(self, seq_id: int) -> int:
        """Release a finished/evicted sequence; returns blocks freed."""
        if seq_id not in self._blocks:
            raise SimulationError(f"sequence {seq_id} not allocated")
        freed = self._blocks.pop(seq_id)
        self._used -= freed
        return freed

    def holds(self, seq_id: int) -> bool:
        return seq_id in self._blocks

    # ------------------------------------------------------------------ #
    # Reservations (admission control for known output lengths)
    # ------------------------------------------------------------------ #

    def reserve(self, seq_id: int, tokens: int) -> None:
        """Pre-book blocks for a swap-in that is in flight so concurrent
        admissions cannot oversubscribe the cache."""
        if seq_id in self._blocks or seq_id in self._reserved_blocks:
            raise SimulationError(f"sequence {seq_id} already present")
        need = self.blocks_for(tokens)
        if need > self.free_blocks:
            raise CapacityError(f"cannot reserve {need} blocks for seq {seq_id}")
        self._reserved_blocks[seq_id] = need
        self._used += need

    def cancel_reservation(self, seq_id: int) -> None:
        if seq_id not in self._reserved_blocks:
            raise SimulationError(f"sequence {seq_id} has no reservation")
        self._used -= self._reserved_blocks.pop(seq_id)
