"""Run metrics, phase accounting and the engine result record.

Every engine produces an :class:`EngineResult`: end-to-end wall time,
request/token throughput, per-phase time (prefill / decode / mixed /
re-shard / swap stall / idle), the accumulated cost-model breakdown, and
counters (iterations, transitions, swapped tokens). The Fig. 12 speedup
breakdown and the EXPERIMENTS.md tables are produced straight from these
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.breakdown import Breakdown
from repro.errors import SimulationError
from repro.routing.stats import RouterStats
from repro.runtime.latency import LatencyStats


@dataclass
class PhaseTimer:
    """Accumulates wall time per engine phase."""

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError(f"negative phase time for {phase!r}")
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        return self.phases.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self.phases.values())


@dataclass
class RunMetrics:
    """Mutable counters an engine updates while it runs."""

    phase_timer: PhaseTimer = field(default_factory=PhaseTimer)
    breakdown: Breakdown = field(default_factory=Breakdown)
    iterations: int = 0
    transitions: int = 0
    swapped_in_tokens: int = 0
    swapped_out_tokens: int = 0
    resharded_bytes: float = 0.0
    # Preemptions this replica actually performed (recompute or swap-out);
    # the O(1) counter behind the coupled router's observed-load view.
    preemptions: int = 0

    def add_phase(self, phase: str, seconds: float, breakdown: Breakdown | None = None) -> None:
        self.phase_timer.add(phase, seconds)
        if breakdown is not None:
            self.breakdown = self.breakdown + breakdown


@dataclass(frozen=True)
class EngineResult:
    """Immutable summary of one engine run."""

    engine: str
    label: str
    num_requests: int
    total_time: float
    input_tokens: int
    output_tokens: int
    phase_time: dict[str, float]
    breakdown: Breakdown
    iterations: int
    transitions: int
    swapped_in_tokens: int = 0
    swapped_out_tokens: int = 0
    # Per-request latency statistics (None for purely analytic results
    # that never simulated individual requests).
    latency: LatencyStats | None = None
    # Cluster-level dispatch statistics from the routing subsystem (None
    # for single-replica paths that never routed).
    router: RouterStats | None = None

    def __post_init__(self) -> None:
        if self.total_time <= 0:
            raise SimulationError("engine run must take positive time")

    @property
    def throughput_rps(self) -> float:
        """End-to-end request throughput (the paper's headline metric)."""
        return self.num_requests / self.total_time

    @property
    def throughput_tokens_per_s(self) -> float:
        """Generated-token throughput."""
        return self.output_tokens / self.total_time

    @property
    def total_tokens_per_s(self) -> float:
        """Processed-token (input+output) throughput."""
        return (self.input_tokens + self.output_tokens) / self.total_time

    def phase_fraction(self, phase: str) -> float:
        return self.phase_time.get(phase, 0.0) / self.total_time

    def describe(self) -> str:
        phases = ", ".join(
            f"{k}={v:.1f}s" for k, v in sorted(self.phase_time.items()) if v > 0
        )
        return (
            f"{self.engine}[{self.label}]: {self.num_requests} reqs in "
            f"{self.total_time:.1f}s -> {self.throughput_rps:.3f} req/s "
            f"({self.throughput_tokens_per_s:.0f} out-tok/s; {phases})"
        )


def merge_dp_results(
    results: list[EngineResult],
    engine: str,
    label: str,
    router: RouterStats | None = None,
    total_time: float | None = None,
) -> EngineResult:
    """Combine per-replica results of a data-parallel run.

    Replicas run concurrently on disjoint request partitions, so *wall*
    quantities take the slowest replica while *work* quantities add up:

    - ``total_time`` and each ``phase_time`` entry are per-replica wall
      clocks and merge with ``max`` (phase time of the merged run is the
      longest any replica spent in that phase — replicas overlap, so
      summing would double-count wall time);
    - ``iterations``, tokens, swap counters and latency records are work
      performed and merge with ``sum``/union;
    - ``transitions`` are lock-step re-shards of the whole replica group
      (Seesaw re-shards every GPU at once), so they merge with ``max``.

    Partial-lifetime replicas (elastic fleets) merge on the same rules:
    every per-replica clock lives on the shared cluster clock, so a
    replica born late or drained early contributes only the phases of
    its own window, and its latency records join the union unchanged.
    The one quantity the replicas cannot answer is the run's end —
    a drained replica's clock stops when *its* work stops — so callers
    that know the cluster makespan pass it as ``total_time`` (defaults
    to the slowest replica, the full-lifetime behaviour).

    ``router`` is the cluster-level dispatch record of the run that
    produced these partitions; it is attached as-is (routing happens once,
    above the replicas, so there is nothing per-replica to merge).
    """
    if not results:
        raise SimulationError("no replica results to merge")
    if total_time is None:
        total_time = max(r.total_time for r in results)
    phase: dict[str, float] = {}
    for r in results:
        for k, v in r.phase_time.items():
            phase[k] = max(phase.get(k, 0.0), v)
    bd = results[0].breakdown
    for r in results[1:]:
        bd = bd + r.breakdown
    latencies = [r.latency for r in results if r.latency is not None]
    return EngineResult(
        engine=engine,
        label=label,
        num_requests=sum(r.num_requests for r in results),
        total_time=total_time,
        input_tokens=sum(r.input_tokens for r in results),
        output_tokens=sum(r.output_tokens for r in results),
        phase_time=phase,
        breakdown=bd,
        iterations=sum(r.iterations for r in results),
        transitions=max(r.transitions for r in results),
        swapped_in_tokens=sum(r.swapped_in_tokens for r in results),
        swapped_out_tokens=sum(r.swapped_out_tokens for r in results),
        latency=LatencyStats.merged(latencies) if latencies else None,
        router=router,
    )
