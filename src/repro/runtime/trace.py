"""Execution traces: per-event records of an engine run.

A :class:`Trace` is an append-only list of :class:`TraceEvent` spans —
each scheduler iteration, re-shard, and swap gets one — captured on the
virtual clock. Traces power the Fig. 2-style schedule timelines (which
phase ran when, how many sequences were resident) and give tests a way to
assert scheduling behaviour rather than just end-to-end totals.

Tracing is opt-in (``EngineOptions.trace``) because long runs generate many
events; engines call :meth:`Trace.record` unconditionally on a
:class:`NullTrace` otherwise, which is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SimulationError

# Event kinds engines emit.
PREFILL = "prefill"
DECODE = "decode"
MIXED = "mixed"
RESHARD = "reshard"
SWAP_IN = "swap_in"
SWAP_OUT = "swap_out"
STALL = "stall"
IDLE = "idle"  # event-driven serving: clock jumped to the next arrival

_KINDS = {PREFILL, DECODE, MIXED, RESHARD, SWAP_IN, SWAP_OUT, STALL, IDLE}


@dataclass(frozen=True)
class TraceEvent:
    """One timed span of engine activity.

    Attributes:
        kind: One of the module-level event kind constants.
        start: Virtual time the span began.
        duration: Span length in seconds.
        num_seqs: Sequences involved (batch size for compute events,
            transferred sequences for swaps; 0 where meaningless).
        tokens: Tokens processed/moved by the event.
        resident_seqs: Sequences resident in GPU KV when the event started
            (the light-green area of Fig. 2).
    """

    kind: str
    start: float
    duration: float
    num_seqs: int = 0
    tokens: int = 0
    resident_seqs: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SimulationError(f"unknown trace event kind {self.kind!r}")
        if self.start < 0 or self.duration < 0:
            raise SimulationError("trace spans must have non-negative time")

    @property
    def end(self) -> float:
        return self.start + self.duration


class Trace:
    """Append-only event log with simple query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    @property
    def enabled(self) -> bool:
        return True

    def record(
        self,
        kind: str,
        start: float,
        duration: float,
        *,
        num_seqs: int = 0,
        tokens: int = 0,
        resident_seqs: int = 0,
    ) -> None:
        self._events.append(
            TraceEvent(
                kind=kind,
                start=start,
                duration=duration,
                num_seqs=num_seqs,
                tokens=tokens,
                resident_seqs=resident_seqs,
            )
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def total_time(self, kind: str) -> float:
        return sum(e.duration for e in self._events if e.kind == kind)

    @property
    def span(self) -> float:
        """Wall-clock extent of the trace (0 for an empty trace)."""
        if not self._events:
            return 0.0
        return max(e.end for e in self._events)

    def phase_segments(self) -> list[tuple[str, float, float]]:
        """Coalesce consecutive same-kind compute events into segments.

        Returns (kind, start, end) tuples for prefill/mixed/decode/reshard
        events — the alternation structure Fig. 2 draws.
        """
        compute = [
            e
            for e in sorted(self._events, key=lambda e: e.start)
            if e.kind in (PREFILL, DECODE, MIXED, RESHARD)
        ]
        segments: list[tuple[str, float, float]] = []
        for e in compute:
            if segments and segments[-1][0] == e.kind and e.start <= segments[-1][2] + 1e-9:
                kind, start, _ = segments[-1]
                segments[-1] = (kind, start, max(segments[-1][2], e.end))
            else:
                segments.append((e.kind, e.start, e.end))
        return segments


class NullTrace(Trace):
    """Free no-op trace used when tracing is disabled."""

    @property
    def enabled(self) -> bool:
        return False

    def record(self, *args: object, **kwargs: object) -> None:  # noqa: D102
        return None


def render_timeline(trace: Trace, width: int = 72) -> str:
    """ASCII timeline of phase segments (a measured Fig. 2).

    One row per phase kind; ``#`` marks the intervals where that phase was
    active. The header shows the time extent.
    """
    segments = trace.phase_segments()
    if not segments:
        return "(empty trace)"
    span = trace.span
    kinds = []
    for kind in (PREFILL, MIXED, DECODE, RESHARD):
        if any(s[0] == kind for s in segments):
            kinds.append(kind)
    label_w = max(len(k) for k in kinds)
    lines = [f"timeline over {span:.1f}s ({width} cols)"]
    for kind in kinds:
        row = [" "] * width
        for seg_kind, start, end in segments:
            if seg_kind != kind:
                continue
            lo = int(start / span * (width - 1))
            hi = max(lo, int(end / span * (width - 1)))
            for i in range(lo, hi + 1):
                row[i] = "#"
        lines.append(f"{kind.ljust(label_w)} |{''.join(row)}|")
    return "\n".join(lines)
