"""Simulated execution substrate shared by all engines.

Provides the pieces a real inference engine owns, in simulated form:
request/sequence state machines, a paged GPU KV-cache allocator, the tiered
CPU KV buffer, serialized transfer channels (the PCIe links the async
swap pipeline runs over), and metrics/trace accounting. Engines in
:mod:`repro.engines` drive these against the cost model's virtual clock.
"""

from repro.runtime.request import Request, Sequence, SequenceState
from repro.runtime.kvcache import KVCacheManager
from repro.runtime.cpu_buffer import CPUKVBuffer
from repro.runtime.channel import TransferChannel
from repro.runtime.latency import LatencyStats, RequestLatency
from repro.runtime.metrics import RunMetrics, EngineResult, PhaseTimer
from repro.runtime.trace import Trace, TraceEvent, NullTrace, render_timeline

__all__ = [
    "Request",
    "Sequence",
    "SequenceState",
    "KVCacheManager",
    "CPUKVBuffer",
    "TransferChannel",
    "RequestLatency",
    "LatencyStats",
    "RunMetrics",
    "EngineResult",
    "PhaseTimer",
    "Trace",
    "TraceEvent",
    "NullTrace",
    "render_timeline",
]
