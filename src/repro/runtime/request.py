"""Requests and sequence state.

A :class:`Request` is one offline-inference job: a prompt of known length
and a number of output tokens (the simulator knows the output length ahead
of time — the oracle a real engine discovers at EOS — and engines are
careful to use it only where a real engine would observe the same
information, e.g. a sequence finishing).

A :class:`Sequence` tracks one request's progress through the engine state
machine::

    WAITING -> PREFILLING -> (PREFILLED_GPU | PREFILLED_CPU)
            -> SWAPPING_IN -> RUNNING -> FINISHED

The CPU states only occur under tiered KV buffering (Seesaw); static
engines go straight from prefill to RUNNING.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class SequenceState(enum.Enum):
    WAITING = "waiting"
    PREFILLING = "prefilling"  # partially prefilled (chunked prefill)
    PREFILLED_GPU = "prefilled_gpu"  # KV resident on GPU, ready to decode
    PREFILLED_CPU = "prefilled_cpu"  # KV parked in the CPU buffer
    SWAPPING_IN = "swapping_in"  # prefetcher transfer in flight
    RUNNING = "running"  # decoding on GPU
    FINISHED = "finished"


@dataclass(frozen=True)
class Request:
    """One offline inference request."""

    request_id: int
    prompt_len: int
    output_len: int
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if self.prompt_len < 1:
            raise ConfigurationError(f"request {self.request_id}: prompt_len must be >= 1")
        if self.output_len < 1:
            raise ConfigurationError(f"request {self.request_id}: output_len must be >= 1")
        if self.arrival_time < 0:
            raise ConfigurationError(f"request {self.request_id}: arrival_time must be >= 0")

    @property
    def total_tokens(self) -> int:
        """Final context length when generation completes."""
        return self.prompt_len + self.output_len


@dataclass(eq=False)
class Sequence:
    """Mutable engine-side view of one request.

    Equality is identity — two sequences are never "the same" just because
    their counters coincide (schedulers keep sequences in lists and rely on
    identity membership).
    """

    request: Request
    state: SequenceState = SequenceState.WAITING
    prefilled_tokens: int = 0
    generated_tokens: int = 0
    prefill_target: int = field(default=-1)
    prefill_end_time: float = field(default=float("nan"))
    finish_time: float = field(default=float("nan"))

    def __post_init__(self) -> None:
        if self.prefill_target < 0:
            self.prefill_target = self.request.prompt_len

    @property
    def seq_id(self) -> int:
        return self.request.request_id

    @property
    def prompt_len(self) -> int:
        return self.request.prompt_len

    @property
    def context_len(self) -> int:
        """Tokens currently in this sequence's KV cache.

        Prefill counts the first generated token against the prompt pass,
        so context is prompt + generated during decode.
        """
        if self.state in (SequenceState.WAITING, SequenceState.PREFILLING):
            return self.prefilled_tokens
        return self.prompt_len + self.generated_tokens

    @property
    def final_context_len(self) -> int:
        """Context length at completion (used for KV reservations)."""
        return self.request.total_tokens

    @property
    def remaining_prefill(self) -> int:
        """Prompt tokens still to prefill. After a recompute preemption the
        target includes previously generated tokens whose KV must be
        rebuilt."""
        return max(0, self.prefill_target - self.prefilled_tokens)

    @property
    def remaining_decode(self) -> int:
        """Decode iterations left. Prefill produces the first output token,
        so a request with ``output_len`` tokens needs ``output_len - 1``
        decode steps."""
        return max(0, self.request.output_len - 1 - self.generated_tokens)

    @property
    def is_prefill_complete(self) -> bool:
        return self.prefilled_tokens >= self.prefill_target

    @property
    def is_finished(self) -> bool:
        return self.state == SequenceState.FINISHED

    def advance_prefill(self, tokens: int) -> None:
        """Record ``tokens`` of the prompt being prefilled."""
        if tokens < 0:
            raise ConfigurationError("prefill advance must be >= 0")
        self.prefilled_tokens = min(self.prompt_len, self.prefilled_tokens + tokens)

    def advance_decode(self) -> None:
        """Record one generated token."""
        self.generated_tokens += 1

    def mark_finished(self, now: float) -> None:
        self.state = SequenceState.FINISHED
        self.finish_time = now

    def preempt_recompute(self) -> None:
        """Drop cached KV for recompute-style preemption: the next prefill
        must rebuild the prompt plus everything generated so far."""
        self.prefill_target = self.prompt_len + self.generated_tokens
        self.prefilled_tokens = 0
        self.state = SequenceState.WAITING
