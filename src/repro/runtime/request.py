"""Requests and sequence state.

A :class:`Request` is one offline-inference job: a prompt of known length
and a number of output tokens (the simulator knows the output length ahead
of time — the oracle a real engine discovers at EOS — and engines are
careful to use it only where a real engine would observe the same
information, e.g. a sequence finishing).

A :class:`Sequence` tracks one request's progress through the engine state
machine::

    WAITING -> PREFILLING -> (PREFILLED_GPU | PREFILLED_CPU)
            -> SWAPPING_IN -> RUNNING -> FINISHED

The CPU states only occur under tiered KV buffering (Seesaw); static
engines go straight from prefill to RUNNING.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class SequenceState(enum.Enum):
    WAITING = "waiting"
    PREFILLING = "prefilling"  # partially prefilled (chunked prefill)
    PREFILLED_GPU = "prefilled_gpu"  # KV resident on GPU, ready to decode
    PREFILLED_CPU = "prefilled_cpu"  # KV parked in the CPU buffer
    SWAPPING_IN = "swapping_in"  # prefetcher transfer in flight
    RUNNING = "running"  # decoding on GPU
    FINISHED = "finished"


@dataclass(frozen=True)
class Request:
    """One offline inference request."""

    request_id: int
    prompt_len: int
    output_len: int
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if self.prompt_len < 1:
            raise ConfigurationError(f"request {self.request_id}: prompt_len must be >= 1")
        if self.output_len < 1:
            raise ConfigurationError(f"request {self.request_id}: output_len must be >= 1")
        if self.arrival_time < 0:
            raise ConfigurationError(f"request {self.request_id}: arrival_time must be >= 0")

    @property
    def total_tokens(self) -> int:
        """Final context length when generation completes."""
        return self.prompt_len + self.output_len


@dataclass(eq=False)
class Sequence:
    """Mutable engine-side view of one request.

    Equality is identity — two sequences are never "the same" just because
    their counters coincide (schedulers keep sequences in lists and rely on
    identity membership).
    """

    request: Request
    state: SequenceState = SequenceState.WAITING
    prefilled_tokens: int = 0
    generated_tokens: int = 0
    prefill_target: int = field(default=-1)
    prefill_end_time: float = field(default=float("nan"))
    finish_time: float = field(default=float("nan"))
    # Online-serving timestamps: when the scheduler first touched this
    # sequence and when its first output token was produced. Both are
    # sticky (set once) so recompute preemptions don't rewrite history.
    first_schedule_time: float = field(default=float("nan"))
    first_token_time: float = field(default=float("nan"))
    num_preemptions: int = 0

    def __post_init__(self) -> None:
        if self.prefill_target < 0:
            self.prefill_target = self.request.prompt_len

    @property
    def seq_id(self) -> int:
        return self.request.request_id

    @property
    def arrival_time(self) -> float:
        return self.request.arrival_time

    @property
    def prompt_len(self) -> int:
        return self.request.prompt_len

    @property
    def context_len(self) -> int:
        """Tokens currently in this sequence's KV cache.

        Prefill counts the first generated token against the prompt pass,
        so context is prompt + generated during decode.
        """
        if self.state in (SequenceState.WAITING, SequenceState.PREFILLING):
            return self.prefilled_tokens
        return self.prompt_len + self.generated_tokens

    @property
    def final_context_len(self) -> int:
        """Context length at completion (used for KV reservations)."""
        return self.request.total_tokens

    @property
    def remaining_prefill(self) -> int:
        """Prompt tokens still to prefill. After a recompute preemption the
        target includes previously generated tokens whose KV must be
        rebuilt."""
        return max(0, self.prefill_target - self.prefilled_tokens)

    @property
    def remaining_decode(self) -> int:
        """Decode iterations left. Prefill produces the first output token,
        so a request with ``output_len`` tokens needs ``output_len - 1``
        decode steps."""
        return max(0, self.request.output_len - 1 - self.generated_tokens)

    @property
    def is_prefill_complete(self) -> bool:
        return self.prefilled_tokens >= self.prefill_target

    @property
    def is_finished(self) -> bool:
        return self.state == SequenceState.FINISHED

    def advance_prefill(self, tokens: int) -> None:
        """Record ``tokens`` of the prompt being prefilled."""
        if tokens < 0:
            raise ConfigurationError("prefill advance must be >= 0")
        self.prefilled_tokens = min(self.prompt_len, self.prefilled_tokens + tokens)

    def advance_decode(self) -> None:
        """Record one generated token."""
        self.generated_tokens += 1

    def mark_scheduled(self, now: float) -> None:
        """Record the first time the scheduler admitted this sequence.

        Sticky: later admissions (after preemption) do not move it, so
        queue delay measures arrival to *first* service.
        """
        if math.isnan(self.first_schedule_time):
            self.first_schedule_time = now

    def mark_first_token(self, now: float) -> None:
        """Record the first output token (end of the producing prefill
        pass). Sticky across recompute preemptions."""
        if math.isnan(self.first_token_time):
            self.first_token_time = now

    def mark_finished(self, now: float) -> None:
        self.state = SequenceState.FINISHED
        self.finish_time = now
        # A request whose only token came from prefill finishes without a
        # separate first-token event; backfill so latency records close.
        self.mark_first_token(now)

    def preempt_recompute(self) -> None:
        """Drop cached KV for recompute-style preemption: the next prefill
        must rebuild the prompt plus everything generated so far."""
        self.prefill_target = self.prompt_len + self.generated_tokens
        self.prefilled_tokens = 0
        self.state = SequenceState.WAITING
