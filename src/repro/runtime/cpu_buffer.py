"""Tiered CPU KV buffer (Section 4.2 of the paper).

Host memory acts as auxiliary KV storage: prefill phases push each
sequence's KV here (sharded by the prefill config, re-assembled in shared
memory), and the decode-phase prefetcher pops sequences FIFO as GPU blocks
free up. The buffer is shared across all GPUs — re-sharding of the KV cache
happens implicitly because each GPU writes/reads its own shard of the
common pool (Fig. 7).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import CapacityError, SimulationError


@dataclass
class CPUKVBuffer:
    """FIFO token-accounted KV pool in host memory.

    Attributes:
        capacity_tokens: Total tokens the host allocation can hold
            (cluster CPU memory / model KV bytes per token).
    """

    capacity_tokens: int
    _entries: "OrderedDict[int, int]" = field(default_factory=OrderedDict, repr=False)
    _used: int = 0

    def __post_init__(self) -> None:
        if self.capacity_tokens < 0:
            raise CapacityError("CPU buffer capacity must be >= 0")

    @property
    def used_tokens(self) -> int:
        return self._used

    @property
    def free_tokens(self) -> int:
        return self.capacity_tokens - self._used

    @property
    def num_sequences(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def fits(self, tokens: int) -> bool:
        return tokens <= self.free_tokens

    def push(self, seq_id: int, tokens: int) -> None:
        """Park a prefilled sequence's KV (``tokens`` of context)."""
        if seq_id in self._entries:
            raise SimulationError(f"sequence {seq_id} already buffered")
        if tokens < 0:
            raise SimulationError("tokens must be >= 0")
        if not self.fits(tokens):
            raise CapacityError(
                f"CPU buffer overflow: {tokens} tokens > {self.free_tokens} free"
            )
        self._entries[seq_id] = tokens
        self._used += tokens

    def peek(self) -> tuple[int, int]:
        """Oldest (seq_id, tokens) without removing it."""
        if not self._entries:
            raise SimulationError("peek on empty CPU buffer")
        seq_id = next(iter(self._entries))
        return seq_id, self._entries[seq_id]

    def pop(self) -> tuple[int, int]:
        """Remove and return the oldest (seq_id, tokens) — FIFO swap-in
        order preserves prefill order, bounding queueing delay."""
        seq_id, tokens = self.peek()
        del self._entries[seq_id]
        self._used -= tokens
        return seq_id, tokens

    def remove(self, seq_id: int) -> int:
        """Remove a specific sequence (e.g. cancelled); returns tokens."""
        if seq_id not in self._entries:
            raise SimulationError(f"sequence {seq_id} not in CPU buffer")
        tokens = self._entries.pop(seq_id)
        self._used -= tokens
        return tokens

    def __contains__(self, seq_id: int) -> bool:
        return seq_id in self._entries
