"""Per-request latency records and aggregate serving statistics.

Offline throughput (the paper's headline metric) collapses a run into one
number; online serving is judged by the latency each request observed.
This module holds the two records that carry that information out of the
engines:

- :class:`RequestLatency` — the timestamps of one request's life cycle
  (arrival, first schedule, first token, finish) and the standard derived
  metrics: queue delay, TTFT (time-to-first-token), TPOT (time-per-output-
  token) and E2E latency.
- :class:`LatencyStats` — an immutable bag of records with the aggregate
  views reports need (mean/p50/p90/p99 per metric, SLO attainment) and a
  merge operation for data-parallel runs.

Engines populate timestamps on :class:`~repro.runtime.request.Sequence`
as they schedule, and convert finished sequences into records via
:meth:`RequestLatency.from_sequence`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence as TypingSequence

from repro.errors import SimulationError
from repro.utils.stats import Summary, summarize


@dataclass(frozen=True)
class RequestLatency:
    """Life-cycle timestamps and derived latencies of one served request.

    All times are on the engine's virtual clock, in seconds. ``finish_time``
    is when the last output token was produced; ``first_token_time`` is when
    the prefill pass that produced the first output token completed.
    """

    request_id: int
    arrival_time: float
    first_schedule_time: float
    first_token_time: float
    finish_time: float
    output_len: int
    num_preemptions: int = 0

    def __post_init__(self) -> None:
        stamps = (
            self.arrival_time,
            self.first_schedule_time,
            self.first_token_time,
            self.finish_time,
        )
        if any(math.isnan(t) for t in stamps):
            raise SimulationError(
                f"request {self.request_id}: latency record has unset timestamps"
            )
        # Each comparison tolerates the admission epsilon: engines admit
        # arrivals within 1e-12 of the clock, so a stamp can precede the
        # arrival by that much without the life cycle being wrong.
        eps = 1e-9
        if not (
            self.arrival_time <= self.first_schedule_time + eps
            and self.first_schedule_time <= self.first_token_time + eps
            and self.first_token_time <= self.finish_time + eps
        ):
            raise SimulationError(
                f"request {self.request_id}: non-monotone life cycle "
                f"({self.arrival_time} -> {self.first_schedule_time} -> "
                f"{self.first_token_time} -> {self.finish_time})"
            )
        if self.output_len < 1:
            raise SimulationError(
                f"request {self.request_id}: output_len must be >= 1"
            )

    @classmethod
    def from_sequence(cls, seq: "object") -> "RequestLatency":
        """Build a record from a finished engine sequence (duck-typed to
        avoid a circular import with :mod:`repro.runtime.request`)."""
        return cls(
            request_id=seq.seq_id,
            arrival_time=seq.request.arrival_time,
            first_schedule_time=seq.first_schedule_time,
            first_token_time=seq.first_token_time,
            finish_time=seq.finish_time,
            output_len=seq.request.output_len,
            num_preemptions=seq.num_preemptions,
        )

    @property
    def queue_delay(self) -> float:
        """Arrival to first being scheduled (pure queueing). Clamped at 0
        to absorb the admission epsilon."""
        return max(0.0, self.first_schedule_time - self.arrival_time)

    @property
    def ttft(self) -> float:
        """Arrival to first output token (queueing + prefill)."""
        return max(0.0, self.first_token_time - self.arrival_time)

    @property
    def e2e(self) -> float:
        """Arrival to last output token."""
        return max(0.0, self.finish_time - self.arrival_time)

    @property
    def has_decode_phase(self) -> bool:
        """Whether any token was produced by decode (not just prefill)."""
        return self.output_len > 1

    @property
    def tpot(self) -> float | None:
        """Mean inter-token time over the decode phase. A request whose
        only token came from prefill has no decode phase, so its TPOT is
        undefined (``None``) — not 0, which would trivially satisfy any
        TPOT SLO and inflate attainment."""
        if not self.has_decode_phase:
            return None
        return max(
            0.0, (self.finish_time - self.first_token_time) / (self.output_len - 1)
        )


@dataclass(frozen=True)
class LatencyStats:
    """Aggregate latency view over a set of request records.

    Holding the raw records (rather than pre-reduced summaries) keeps the
    data-parallel merge exact: percentiles over the union of replicas are
    computed from the union, not approximated from per-replica summaries.
    """

    records: tuple[RequestLatency, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise SimulationError("LatencyStats needs at least one record")

    @property
    def num_requests(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # Per-metric summaries (mean / p50 / p90 / p99 via utils.stats)
    # ------------------------------------------------------------------ #

    @property
    def ttft(self) -> Summary:
        return summarize([r.ttft for r in self.records])

    @property
    def tpot(self) -> Summary:
        """Summary over records that have a decode phase (single-token
        requests have no TPOT and would drag every percentile toward 0).
        All-prefill runs yield an empty (all-zero, count=0) summary."""
        values = [r.tpot for r in self.records if r.tpot is not None]
        if not values:
            return Summary(
                count=0, mean=0.0, std=0.0, minimum=0.0,
                p50=0.0, p90=0.0, p99=0.0, maximum=0.0,
            )
        return summarize(values)

    @property
    def e2e(self) -> Summary:
        return summarize([r.e2e for r in self.records])

    @property
    def queue_delay(self) -> Summary:
        return summarize([r.queue_delay for r in self.records])

    @property
    def total_preemptions(self) -> int:
        return sum(r.num_preemptions for r in self.records)

    # ------------------------------------------------------------------ #

    def slo_attainment(
        self,
        ttft_slo: float | None = None,
        tpot_slo: float | None = None,
        e2e_slo: float | None = None,
    ) -> float:
        """Fraction of requests meeting every given SLO (in [0, 1]).

        ``None`` bounds are not enforced; with no bounds at all, attainment
        is trivially 1.0. The TPOT bound only applies to records with a
        decode phase: a single-token request has no TPOT, so it is judged
        on the remaining bounds — and excluded from the population entirely
        when the TPOT bound is the only one given (rather than counted as
        trivially meeting it). An all-excluded population is vacuously 1.0.
        """
        for name, slo in (("ttft", ttft_slo), ("tpot", tpot_slo), ("e2e", e2e_slo)):
            if slo is not None and slo <= 0:
                raise SimulationError(f"{name} SLO must be positive")
        met = 0
        judged = 0
        for r in self.records:
            tpot_applies = tpot_slo is not None and r.tpot is not None
            if ttft_slo is None and e2e_slo is None and tpot_slo is not None:
                if not tpot_applies:
                    continue  # no applicable bound for this record
            judged += 1
            if ttft_slo is not None and r.ttft > ttft_slo:
                continue
            if tpot_applies and r.tpot > tpot_slo:
                continue
            if e2e_slo is not None and r.e2e > e2e_slo:
                continue
            met += 1
        if judged == 0:
            return 1.0
        return met / judged

    @classmethod
    def from_sequences(cls, seqs: Iterable[object]) -> "LatencyStats":
        """Records from finished engine sequences."""
        return cls(records=tuple(RequestLatency.from_sequence(s) for s in seqs))

    @classmethod
    def merged(cls, parts: TypingSequence["LatencyStats"]) -> "LatencyStats":
        """Exact union of several replicas' records (DP merge).

        Replicas own disjoint request partitions — including elastic
        fleets, where a request re-dispatched away from a draining or
        storming replica must finish on exactly one survivor — so a
        request id appearing twice means some replica double-counted a
        request it no longer owned; that is rejected rather than silently
        skewing every percentile.
        """
        if not parts:
            raise SimulationError("no latency stats to merge")
        records: list[RequestLatency] = []
        for p in parts:
            records.extend(p.records)
        records.sort(key=lambda r: r.request_id)
        seen: set[int] = set()
        for r in records:
            if r.request_id in seen:
                raise SimulationError(
                    f"request {r.request_id} finished on two replicas "
                    "(duplicate record in DP latency merge)"
                )
            seen.add(r.request_id)
        return cls(records=tuple(records))

    def describe(self) -> str:
        t, p, e, q = self.ttft, self.tpot, self.e2e, self.queue_delay
        return (
            f"ttft p50={t.p50:.3f}s p99={t.p99:.3f}s | "
            f"tpot p50={p.p50 * 1e3:.1f}ms p99={p.p99 * 1e3:.1f}ms | "
            f"e2e p50={e.p50:.3f}s p99={e.p99:.3f}s | "
            f"queue mean={q.mean:.3f}s"
        )
