"""Serialized transfer channels for the async swap pipeline.

A :class:`TransferChannel` models one direction of the PCIe host link as a
single-server FIFO queue in virtual time: jobs submitted at time ``t`` start
at ``max(t, channel_free)`` and complete after their duration. This is how
the simulator reproduces Section 5.2's overlap behaviour — swap-outs drain
behind prefill compute, and the decode-phase prefetcher's swap-ins complete
at channel time, gating when a sequence may join the running batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class TransferChannel:
    """One FIFO transfer resource with a virtual-time busy horizon."""

    name: str
    _free_at: float = 0.0
    _busy_time: float = field(default=0.0)
    _jobs: int = 0

    @property
    def free_at(self) -> float:
        """Virtual time at which the channel next becomes idle."""
        return self._free_at

    @property
    def busy_time(self) -> float:
        """Total seconds the channel has spent transferring."""
        return self._busy_time

    @property
    def jobs_completed(self) -> int:
        return self._jobs

    def submit(self, now: float, duration: float) -> float:
        """Enqueue a transfer at ``now`` lasting ``duration`` seconds.

        Returns the completion time. Transfers serialize: a job starts when
        the channel is free or at submission, whichever is later.
        """
        if duration < 0:
            raise SimulationError("transfer duration must be >= 0")
        if now < 0:
            raise SimulationError("now must be >= 0")
        start = max(now, self._free_at)
        end = start + duration
        self._free_at = end
        self._busy_time += duration
        self._jobs += 1
        return end

    def idle_until(self, t: float) -> None:
        """Advance the free horizon to at least ``t`` (e.g. the channel is
        repurposed after a phase change and cannot start work earlier)."""
        self._free_at = max(self._free_at, t)
