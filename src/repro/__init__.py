"""Seesaw reproduction: high-throughput LLM inference via model re-sharding.

A complete, executable reproduction of *Seesaw: High-throughput LLM
Inference via Model Re-sharding* (MLSys 2025) on a simulated multi-GPU
cluster. The package provides:

- :mod:`repro.core` — the Seesaw engine (dynamic model re-sharding, tiered
  KV cache buffering, transition-minimizing scheduling, async swap
  pipeline);
- :mod:`repro.engines` — the baselines (vLLM-like static engine with
  continuous batching and chunked prefill, decode-prioritized engine,
  DistServe-style disaggregation);
- :mod:`repro.hardware` / :mod:`repro.models` / :mod:`repro.parallel` /
  :mod:`repro.costmodel` / :mod:`repro.runtime` — the simulated substrate;
- :mod:`repro.workloads` — dataset-shaped and synthetic workloads;
- :mod:`repro.autotuner` — configuration search;
- :mod:`repro.experiments` — one harness per paper table/figure.

Quickstart::

    from repro import (
        SeesawEngine, VllmLikeEngine, make_cluster, get_model, parse_config,
        sharegpt_workload,
    )

    model = get_model("34b")
    cluster = make_cluster("A10", 8)
    workload = sharegpt_workload(200, seed=0)
    baseline = VllmLikeEngine(model, cluster, parse_config("T4P2")).run(workload)
    seesaw = SeesawEngine(
        model, cluster, parse_config("P8"), parse_config("T4P2")
    ).run(workload)
    print(seesaw.throughput_rps / baseline.throughput_rps)
"""

from repro.core import SeesawEngine, SeesawOptions
from repro.engines import (
    DecodePrioritizedEngine,
    DisaggregatedEngine,
    EngineOptions,
    VllmLikeEngine,
)
from repro.engines.disaggregated import DisaggregationPlan
from repro.hardware import ClusterSpec, GPU_REGISTRY, GPUSpec, get_gpu
from repro.hardware.cluster import make_cluster
from repro.models import MODEL_REGISTRY, ModelConfig, get_model
from repro.parallel import ParallelConfig, parse_config, parse_transition
from repro.runtime import EngineResult, Request
from repro.workloads import (
    WorkloadSpec,
    arxiv_workload,
    constant_workload,
    ratio_workload,
    sample_dataset,
    sharegpt_workload,
    uniform_workload,
)
from repro.autotuner import best_seesaw_pair, best_static_config, tune_chunk_size

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SeesawEngine",
    "SeesawOptions",
    "VllmLikeEngine",
    "DecodePrioritizedEngine",
    "DisaggregatedEngine",
    "DisaggregationPlan",
    "EngineOptions",
    "ClusterSpec",
    "GPUSpec",
    "GPU_REGISTRY",
    "get_gpu",
    "make_cluster",
    "ModelConfig",
    "MODEL_REGISTRY",
    "get_model",
    "ParallelConfig",
    "parse_config",
    "parse_transition",
    "EngineResult",
    "Request",
    "WorkloadSpec",
    "arxiv_workload",
    "sharegpt_workload",
    "constant_workload",
    "uniform_workload",
    "ratio_workload",
    "sample_dataset",
    "best_static_config",
    "best_seesaw_pair",
    "tune_chunk_size",
]
