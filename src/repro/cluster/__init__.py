"""Event-coupled cluster simulation.

The decoupled serving path (PR 2/3) routes every arrival against a
*predicted* per-replica load ledger, then simulates each replica in
isolation; dispatch can never react to what actually happened. This
package couples the component models on **one shared virtual clock** —
the first-principles-simulator move that turns per-part models into a
system model:

- :class:`~repro.cluster.replica.ReplicaSim` — one replica's engine loop
  behind an incremental ``next_event_time()`` / ``advance(until)`` /
  ``inject(request)`` interface (built on the engines' event-loop
  generators, so the per-replica numerics are identical to the
  decoupled path).
- :class:`~repro.cluster.replica.ObservedLoad` — the routing policies'
  load-view API answered from live replica state: actual queued tokens,
  real KV headroom, **measured** preemption counts.
- :class:`~repro.cluster.simulator.ClusterSimulator` — the shared-clock
  event loop: replicas advance to each arrival, the policy dispatches
  against observed load, and measured preemption storms trigger
  re-dispatch of still-pending requests.
- :class:`~repro.cluster.fleet.ReplicaFleet` — lifecycle-managed elastic
  membership (``provisioning -> warming -> active -> draining ->
  stopped``) with cost-model scale-up latency (weight load + KV warmup);
  the dispatch policies rank whatever membership is active at each
  decision instant.
- :mod:`repro.cluster.autoscaler` — pluggable scaling policies on the
  shared clock (``none`` / ``threshold`` / ``predictive`` Erlang-C
  right-sizing / ``threshold:burn_rate`` SLO burn-rate fast path),
  driving the fleet through ``EngineOptions.autoscaler``.

Enabled with ``EngineOptions(coupled=True)`` / the ``--coupled`` CLI
flag; the ``static`` policy with ``autoscaler="none"`` stays bit-exact
with the decoupled path on offline workloads.
"""

from repro.cluster.autoscaler import (
    AUTOSCALER_POLICIES,
    Autoscaler,
    BurnRateThresholdAutoscaler,
    PredictiveAutoscaler,
    ThresholdAutoscaler,
    make_autoscaler,
)
from repro.cluster.fleet import ReplicaFleet, ReplicaHandle, ReplicaLifecycle
from repro.cluster.replica import ObservedLoad, ReplicaSim
from repro.cluster.simulator import ClusterSimulator

__all__ = [
    "AUTOSCALER_POLICIES",
    "Autoscaler",
    "BurnRateThresholdAutoscaler",
    "ClusterSimulator",
    "ObservedLoad",
    "PredictiveAutoscaler",
    "ReplicaFleet",
    "ReplicaHandle",
    "ReplicaLifecycle",
    "ReplicaSim",
    "ThresholdAutoscaler",
    "make_autoscaler",
]
