"""Autoscaling policies driving :class:`~repro.cluster.fleet.ReplicaFleet`.

The autoscaler runs on the cluster's shared clock: it is consulted at
every arrival (the only instants dispatch decisions exist), rate-limited
by its evaluation interval, and its verdict is a *target replica count*
the fleet then moves toward — scale-ups pay the cost-model provisioning
latency before the new replica joins the membership, scale-downs drain.

Policies:

- ``none``       — the fixed fleet: never scales; the coupled path stays
  bit-exact with the fixed-membership simulator.
- ``threshold``  — reactive rules on *observed* signals: scale up when
  the mean queued-prefill depth per active replica exceeds one prefill
  budget (every replica has at least a full batch of work waiting);
  scale down when the fleet spent most of the last window idle with
  near-empty queues.
- ``predictive`` — the serving objective's M/M/c model run in reverse:
  estimate the recent offered rate from an arrival window, then pick the
  smallest replica count whose Erlang-C wait keeps the predicted TTFT
  attainment above target (utilization below ``max_utilization`` when no
  TTFT SLO is configured).
- ``threshold:burn_rate`` — the threshold rules plus an SLO burn-rate
  fast path: requests already waiting long enough that their TTFT is a
  *guaranteed* miss burn error budget now, a window before queued tokens
  pile past the depth threshold — so the scale-up fires one evaluation
  earlier under a rising diurnal edge.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.fleet import ReplicaFleet

AUTOSCALER_POLICIES = ("none", "threshold", "predictive", "threshold:burn_rate")

# Error budget of the burn-rate signal: the fraction of requests allowed
# to miss the TTFT SLO (matches the telemetry SLO attainment target of
# 99%). Burn rate 1.0 = spending the budget exactly as fast as allowed.
BURN_RATE_SLO_BUDGET = 0.01

# Default seconds between autoscaler evaluations (and the observation
# window of the threshold policy's idle signal).
DEFAULT_EVAL_INTERVAL_S = 5.0


class Autoscaler(abc.ABC):
    """Shared cadence logic; subclasses implement :meth:`target_dp`."""

    name: str = "base"

    def __init__(
        self,
        min_dp: int,
        max_dp: int,
        *,
        interval_s: float = DEFAULT_EVAL_INTERVAL_S,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError("autoscaler interval must be positive")
        self.min_dp = min_dp
        self.max_dp = max_dp
        self.interval_s = interval_s
        self._last_eval_at: float | None = None
        # Human-readable record of the latest non-None verdict: the
        # triggering signal, its window values and the chosen target.
        # Consumed by the fleet's scale events (FleetEvent.reason).
        self.last_reason = ""

    def note_arrival(self, now: float) -> None:
        """Observe one arrival (predictive rate estimation hook)."""

    def decide(self, now: float, fleet: "ReplicaFleet") -> int | None:
        """Target replica count, or ``None`` between evaluation instants."""
        if (
            self._last_eval_at is not None
            and now - self._last_eval_at < self.interval_s
        ):
            return None
        target = self.target_dp(now, fleet)
        self._last_eval_at = now
        if target is None:
            return None
        return max(self.min_dp, min(self.max_dp, target))

    @abc.abstractmethod
    def target_dp(self, now: float, fleet: "ReplicaFleet") -> int | None:
        """Desired replica count at ``now`` (``None`` = no opinion)."""


class ThresholdAutoscaler(Autoscaler):
    """Reactive scaling on observed queue depth and idle fraction."""

    name = "threshold"

    def __init__(
        self,
        min_dp: int,
        max_dp: int,
        *,
        up_queue_tokens: float,
        down_idle_fraction: float = 0.6,
        interval_s: float = DEFAULT_EVAL_INTERVAL_S,
    ) -> None:
        super().__init__(min_dp, max_dp, interval_s=interval_s)
        if up_queue_tokens <= 0:
            raise ConfigurationError("up_queue_tokens must be positive")
        if not 0 < down_idle_fraction <= 1:
            raise ConfigurationError("down_idle_fraction must be in (0, 1]")
        self.up_queue_tokens = up_queue_tokens
        self.down_idle_fraction = down_idle_fraction
        # Per-replica idle snapshots anchoring the observation window.
        self._idle_marks: dict[int, tuple[float, float]] = {}

    def _window_idle_fraction(self, now: float, fleet: "ReplicaFleet") -> float:
        """Mean idle fraction of the active replicas since each replica's
        last snapshot (new replicas anchor at their activation).

        Two kinds of idleness add up: arrival gaps the engine slept
        through (its ``idle`` phase timer) and the *drained* tail — a
        replica whose clock stopped short of ``now`` has had nothing at
        all to do since, which the phase timer only books once a later
        arrival makes it jump.

        A replica only votes once its window spans a full evaluation
        interval: the degenerate startup window (activation to the first
        arrival) is trivially 100% idle on *any* fleet — acting on it
        would drain a healthy replica before traffic has said anything.
        """
        fractions = []
        for h in fleet.active_handles():
            sim = h.sim
            assert sim is not None
            mark_t, mark_idle = self._idle_marks.get(
                h.replica_id, (h.active_at, 0.0)
            )
            span = now - mark_t
            if span >= self.interval_s:
                slept = max(0.0, sim.idle_time() - mark_idle)
                drained = max(0.0, now - max(sim.clock, mark_t))
                fractions.append(min(1.0, (slept + drained) / span))
                # The anchor accumulates everything ever counted (booked
                # sleep plus drained tails): the engine books a drained
                # gap as idle phase time only at its next idle_advance
                # jump — possibly several windows later — and measuring
                # future sleep against this running baseline keeps that
                # late booking from being counted a second time.
                self._idle_marks[h.replica_id] = (
                    now,
                    mark_idle + slept + drained,
                )
        if not fractions:
            return 0.0
        return sum(fractions) / len(fractions)

    def target_dp(self, now: float, fleet: "ReplicaFleet") -> int | None:
        loads = fleet.dispatch_loads()
        if not loads:
            return None
        mean_queue = sum(l.queued_prefill_tokens(now) for l in loads) / len(loads)
        idle = self._window_idle_fraction(now, fleet)
        committed = fleet.target_count
        if mean_queue > self.up_queue_tokens:
            self.last_reason = (
                f"mean queued prefill {mean_queue:.0f} tok/replica > "
                f"up threshold {self.up_queue_tokens:.0f} tok -> dp {committed + 1}"
            )
            return committed + 1
        if idle > self.down_idle_fraction and mean_queue < 0.1 * self.up_queue_tokens:
            self.last_reason = (
                f"window idle {idle:.0%} > {self.down_idle_fraction:.0%} with "
                f"mean queue {mean_queue:.0f} tok -> dp {committed - 1}"
            )
            return committed - 1
        return None


class BurnRateThresholdAutoscaler(ThresholdAutoscaler):
    """Threshold scaling with an SLO burn-rate scale-up fast path.

    The queue-depth rule only fires once a *full prefill budget* of
    tokens has piled up per replica; on a rising arrival edge that takes
    an extra evaluation window during which requests are already
    doomed to miss their TTFT SLO. This policy reads the same windowed
    burn rate the telemetry SLO report surfaces: count the queued
    requests whose TTFT is already a guaranteed miss — they have waited
    so long that even an immediate prefill lands past the SLO — and
    divide by the window's arrivals and the error budget. Burn above 1.0
    means the fleet is spending error budget faster than the SLO target
    permits, and the policy scales up immediately instead of waiting for
    the queue-depth threshold; otherwise it defers to the plain
    threshold rules (including scale-down).
    """

    name = "threshold:burn_rate"

    def __init__(
        self,
        min_dp: int,
        max_dp: int,
        *,
        up_queue_tokens: float,
        ttft_slo: float,
        prefill_latency_s: float = 0.0,
        slo_budget: float = BURN_RATE_SLO_BUDGET,
        down_idle_fraction: float = 0.6,
        interval_s: float = DEFAULT_EVAL_INTERVAL_S,
    ) -> None:
        super().__init__(
            min_dp,
            max_dp,
            up_queue_tokens=up_queue_tokens,
            down_idle_fraction=down_idle_fraction,
            interval_s=interval_s,
        )
        if ttft_slo is None or ttft_slo <= 0:
            raise ConfigurationError(
                "threshold:burn_rate needs a positive TTFT SLO"
            )
        if not 0 < slo_budget < 1:
            raise ConfigurationError("slo_budget must be in (0, 1)")
        self.ttft_slo = ttft_slo
        self.prefill_latency_s = prefill_latency_s
        self.slo_budget = slo_budget
        self._arrivals: deque[float] = deque()

    def note_arrival(self, now: float) -> None:
        window = self._arrivals
        window.append(now)
        cutoff = now - self.interval_s
        while window and window[0] < cutoff:
            window.popleft()

    def _guaranteed_misses(self, now: float, fleet: "ReplicaFleet") -> int:
        """Queued requests whose TTFT is already unattainable: even an
        immediate prefill at the analytic latency lands past the SLO."""
        misses = 0
        slack = self.ttft_slo - self.prefill_latency_s
        for h in fleet.active_handles():
            sim = h.sim
            # The fluid fleet models no per-request queues (its replicas
            # answer for themselves and carry only drain horizons); the
            # burn-rate signal degrades to the plain threshold rules.
            run = getattr(sim, "run", None)
            if run is None:
                continue
            state = run.state
            for seq in list(state.pending) + list(state.waiting):
                t = seq.first_schedule_time
                if t == t:  # already scheduled: TTFT is decided elsewhere
                    continue
                if now - seq.arrival_time > slack:
                    misses += 1
        return misses

    def target_dp(self, now: float, fleet: "ReplicaFleet") -> int | None:
        misses = self._guaranteed_misses(now, fleet)
        if misses:
            arrivals = max(1, len(self._arrivals))
            burn = misses / arrivals / self.slo_budget
            if burn > 1.0:
                committed = fleet.target_count
                self.last_reason = (
                    f"slo burn rate {burn:.1f}x budget ({misses} guaranteed "
                    f"ttft misses / {arrivals} arrivals in "
                    f"{self.interval_s:.0f}s window) -> dp {committed + 1}"
                )
                return committed + 1
        return super().target_dp(now, fleet)


class PredictiveAutoscaler(Autoscaler):
    """Erlang-C right-sizing from the measured recent arrival rate.

    The serving objective (:mod:`repro.autotuner.objective`) models the
    fleet as an M/M/c station; this policy inverts it: given the offered
    rate ``lambda`` measured over the last ``window`` arrivals and the
    analytic per-replica capacity ``mu1``, pick the smallest ``c`` whose
    predicted TTFT attainment ``1 - ErlangC(c, lambda/mu1) *
    exp(-(c*mu1 - lambda) * slack)`` meets the target. Without a TTFT
    SLO the criterion degrades to bounded utilization.
    """

    name = "predictive"

    def __init__(
        self,
        min_dp: int,
        max_dp: int,
        *,
        capacity_rps_per_replica: float,
        prefill_latency_s: float = 0.0,
        ttft_slo: float | None = None,
        attainment_target: float = 0.95,
        max_utilization: float = 0.8,
        window: int = 32,
        interval_s: float = DEFAULT_EVAL_INTERVAL_S,
    ) -> None:
        super().__init__(min_dp, max_dp, interval_s=interval_s)
        if capacity_rps_per_replica <= 0:
            raise ConfigurationError("per-replica capacity must be positive")
        if not 0 < attainment_target <= 1:
            raise ConfigurationError("attainment_target must be in (0, 1]")
        if not 0 < max_utilization < 1:
            raise ConfigurationError("max_utilization must be in (0, 1)")
        if window < 2:
            raise ConfigurationError("rate window needs at least 2 arrivals")
        self.mu1 = capacity_rps_per_replica
        self.prefill_latency_s = prefill_latency_s
        self.ttft_slo = ttft_slo
        self.attainment_target = attainment_target
        self.max_utilization = max_utilization
        self._arrivals: deque[float] = deque(maxlen=window)

    def note_arrival(self, now: float) -> None:
        self._arrivals.append(now)

    def _offered_rate(self) -> float | None:
        if len(self._arrivals) < 2:
            return None
        span = self._arrivals[-1] - self._arrivals[0]
        if span <= 0:
            return None
        return (len(self._arrivals) - 1) / span

    def _meets_slo(self, servers: int, lam: float) -> bool:
        # Imported lazily: the autoscaler registry is consumed by
        # EngineOptions validation, and a module-level import would close
        # an engines -> cluster -> autotuner -> engines cycle.
        from repro.autotuner.objective import erlang_c

        mu = servers * self.mu1
        if lam >= mu:
            return False
        if self.ttft_slo is None:
            return lam / mu <= self.max_utilization
        slack = self.ttft_slo - self.prefill_latency_s
        if slack < 0:
            return False
        wait_prob = erlang_c(servers, lam / self.mu1)
        attainment = 1.0 - wait_prob * math.exp(-(mu - lam) * slack)
        return attainment >= self.attainment_target

    def target_dp(self, now: float, fleet: "ReplicaFleet") -> int | None:
        lam = self._offered_rate()
        if lam is None:
            return None
        goal = (
            f"ttft attainment >= {self.attainment_target:.0%}"
            if self.ttft_slo is not None
            else f"utilization <= {self.max_utilization:.0%}"
        )
        for c in range(self.min_dp, self.max_dp + 1):
            if self._meets_slo(c, lam):
                self.last_reason = (
                    f"offered {lam:.2f} rps @ {self.mu1:.2f} rps/replica -> "
                    f"smallest c={c} with {goal}"
                )
                return c
        self.last_reason = (
            f"offered {lam:.2f} rps @ {self.mu1:.2f} rps/replica: no "
            f"c <= {self.max_dp} meets {goal} -> dp {self.max_dp}"
        )
        return self.max_dp


def make_autoscaler(
    policy: str,
    min_dp: int,
    max_dp: int,
    *,
    up_queue_tokens: float,
    capacity_rps_per_replica: float,
    prefill_latency_s: float = 0.0,
    ttft_slo: float | None = None,
    interval_s: float = DEFAULT_EVAL_INTERVAL_S,
) -> Autoscaler | None:
    """Instantiate an autoscaling policy by CLI name (``None`` for
    ``none`` — the fixed fleet needs no policy object at all)."""
    if policy == "none":
        return None
    if policy == "threshold":
        return ThresholdAutoscaler(
            min_dp,
            max_dp,
            up_queue_tokens=up_queue_tokens,
            interval_s=interval_s,
        )
    if policy == "threshold:burn_rate":
        if ttft_slo is None:
            raise ConfigurationError(
                "autoscaler 'threshold:burn_rate' needs --ttft-slo: the "
                "burn-rate signal is defined against a TTFT budget"
            )
        return BurnRateThresholdAutoscaler(
            min_dp,
            max_dp,
            up_queue_tokens=up_queue_tokens,
            ttft_slo=ttft_slo,
            prefill_latency_s=prefill_latency_s,
            interval_s=interval_s,
        )
    if policy == "predictive":
        return PredictiveAutoscaler(
            min_dp,
            max_dp,
            capacity_rps_per_replica=capacity_rps_per_replica,
            prefill_latency_s=prefill_latency_s,
            ttft_slo=ttft_slo,
            interval_s=interval_s,
        )
    raise ConfigurationError(
        f"unknown autoscaler policy {policy!r}; one of {AUTOSCALER_POLICIES}"
    )
