"""Calibrated fluid (mean-field) fast path for the coupled cluster.

The event-coupled :class:`~repro.cluster.simulator.ClusterSimulator`
executes every engine iteration of every replica — exact, but its cost
grows with generated tokens. At million-request cluster scale the
questions being asked (p99 TTFT under a diurnal arrival process, replica
seconds billed by an autoscaler) do not need token-level resolution, so
:class:`FluidSimulator` replaces each replica's engine with a calibrated
mean-field model and processes one *arrival* per event instead of one
*iteration*:

- each replica's prefill stream is a work-conserving fluid queue draining
  at the analytic prefill rate of the cost model (the same Appendix-A
  rate the routers' :class:`~repro.routing.load.RouterContext` carries);
  a request's queueing delay is the backlog-seconds ahead of it;
- decode is modeled in aggregate: a request's inter-token time comes from
  a fixed point of the cost model's ``decode_iteration_time`` under
  Little's law — the resident batch implied by the measured arrival rate
  determines the iteration time, which determines the resident batch —
  re-solved as the measured rate moves (diurnal load sees a different
  operating point at peak than in the trough);
- the boundary-quantization penalty of a real engine (an arrival waits
  for the in-flight iteration to finish before its prefill can start) is
  charged as half an iteration at the current operating point;
- the autoscaler runs unmodified on its usual cadence against a
  duck-typed fleet view; scale-ups pay the cost model's provisioning
  latency, scale-downs drain their fluid backlog before stopping.

What the model deliberately drops: KV-pressure preemptions (and with
them storm re-dispatch), per-iteration scheduling detail, and tracing.
The calibration tests pin the residual error — fluid p99 TTFT and billed
replica-seconds must track the event path within tolerance on reference
cells — and ``fidelity="auto"`` switches to this path only above
:data:`AUTO_FLUID_WORK_ITEMS` work items, where the event path stops
being interactive.
"""

from __future__ import annotations

import math
from typing import Sequence as TypingSequence, TYPE_CHECKING

import numpy as np

from repro.cluster.autoscaler import make_autoscaler
from repro.cluster.fleet import provision_times
from repro.cluster.simulator import (
    _capacity_rps_from,
    _prefill_latency_from,
    _workload_averages,
)
from repro.costmodel.breakdown import Breakdown
from repro.costmodel.step import ITERATION_OVERHEAD
from repro.errors import ConfigurationError, SimulationError
from repro.routing.stats import FleetEvent, FleetStats, RouterStats
from repro.runtime.latency import LatencyStats, RequestLatency
from repro.runtime.metrics import EngineResult
from repro.runtime.request import Request
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.base import BaseEngine

# fidelity="auto" switches from the event path to the fluid path when
# requests x replica ceiling crosses this many work items.
AUTO_FLUID_WORK_ITEMS = 500_000

# Recent arrivals used to estimate the offered rate that drives the
# decode operating point (mirrors the predictive autoscaler's window).
_RATE_WINDOW = 64

# Per-replica telemetry series are only sampled for fleets up to this
# size; larger fleets are covered by the cluster.* aggregates (a
# 200-replica timeline is unreadable and costs O(replicas) per sample).
_MAX_SAMPLED_REPLICAS = 32


class _FluidReplica:
    """One replica's fluid state: a prefill stream, a decode tail, and
    the lifecycle timestamps the fleet accounting bills."""

    __slots__ = (
        "replica_id",
        "created_at",
        "active_at",
        "ready",
        "decode_done",
        "idle_seconds",
        "prefill_busy",
        "decode_tokens_total",
        "num_requests",
        "total_tokens",
        "peak_queued",
        "draining",
        "stopped_at",
    )

    def __init__(self, replica_id: int, created_at: float, active_at: float) -> None:
        self.replica_id = replica_id
        self.created_at = created_at
        self.active_at = active_at
        # When the prefill stream drains (absolute time); queued prefill
        # tokens at ``now`` are (ready - now) * prefill rate.
        self.ready = active_at
        self.decode_done = active_at  # last token this replica will emit
        self.idle_seconds = 0.0
        self.prefill_busy = 0.0
        self.decode_tokens_total = 0
        self.num_requests = 0
        self.total_tokens = 0
        self.peak_queued = 0.0
        self.draining = False
        self.stopped_at = math.inf

    # Duck-typed surface the autoscalers touch (``handle.sim`` on the
    # event path; here the replica answers for itself).
    @property
    def sim(self) -> "_FluidReplica":
        return self

    @property
    def clock(self) -> float:
        return max(self.ready, self.decode_done)

    def idle_time(self) -> float:
        return self.idle_seconds

    def end_time(self, makespan: float) -> float:
        return self.stopped_at if math.isfinite(self.stopped_at) else makespan

    def outstanding_seconds(self, now: float) -> float:
        """Seconds until this replica would finish everything dispatched
        to it — the drain horizon a scale-down victim bills for (the
        event fleet's least-outstanding-work rule counts the undecoded
        backlog too, not just the prefill queue)."""
        horizon = self.ready if self.ready > self.decode_done else self.decode_done
        return max(0.0, horizon - now)


class _FluidLoad:
    """The slice of the ObservedLoad view the threshold autoscaler reads."""

    __slots__ = ("replica", "rate")

    def __init__(self, replica: _FluidReplica, prefill_rate: float) -> None:
        self.replica = replica
        self.rate = prefill_rate

    def queued_prefill_tokens(self, now: float) -> float:
        return self.replica.outstanding_seconds(now) * self.rate


class _FluidFleetView:
    """Duck-typed ReplicaFleet facade the autoscaler policies consult."""

    __slots__ = ("sim",)

    def __init__(self, sim: "FluidSimulator") -> None:
        self.sim = sim

    @property
    def target_count(self) -> int:
        return len(self.sim.active) + len(self.sim.provisioning)

    def active_handles(self) -> list[_FluidReplica]:
        return self.sim.active

    def dispatch_loads(self) -> list[_FluidLoad]:
        return [_FluidLoad(r, self.sim.prefill_rate) for r in self.sim.active]


class FluidSimulator:
    """Mean-field co-simulation of a replica fleet, one event per arrival."""

    def __init__(self, engine: "BaseEngine", requests: TypingSequence[Request]) -> None:
        self.engine = engine
        self.requests = list(requests)
        if not self.requests:
            raise ConfigurationError("cannot simulate an empty workload")
        options = engine.options
        context = engine.router_context(self.requests)
        if not context.prefill_tokens_per_s or not context.decode_tokens_per_s:
            raise ConfigurationError(
                "the fluid path needs finite analytic service rates"
            )
        self.prefill_rate = context.prefill_tokens_per_s
        self.decode_rate = context.decode_tokens_per_s
        self.context = context
        self.policy_name = options.router
        self.rng = (
            make_rng(options.router_seed) if options.router == "po2" else None
        )
        avg_in, avg_out = _workload_averages(self.requests)
        self.avg_ctx = avg_in + avg_out / 2.0
        self.avg_in = avg_in
        self.avg_out = avg_out
        # Residency-weighted mean context: a request sits in the decode
        # batch for (out-1) iterations, so the context a random *resident*
        # carries is biased toward long-output requests (heavy-tailed
        # workloads bias it a lot) — using the per-arrival mean here would
        # underestimate every iteration time.
        w_num = 0.0
        w_den = 0.0
        for r in self.requests:
            weight = max(0, r.output_len - 1)
            w_num += weight * (r.prompt_len + r.output_len / 2.0)
            w_den += weight
        self.resident_ctx = w_num / w_den if w_den > 0 else self.avg_ctx
        self.costs = engine.make_costs()
        capacity = context.kv_capacity_tokens or 0
        self.max_batch = max(
            1,
            min(
                int(capacity / self.avg_ctx) if capacity else options.max_num_seqs,
                options.max_num_seqs,
            ),
        )
        # Fixed-point (tpot, drain-tpot) cache, keyed by the bucketed
        # per-replica rate.
        self._tpot_cache: dict[int, tuple[float, float]] = {}
        self._arrival_window: list[float] = []

        min_dp = options.min_dp if options.min_dp is not None else 1
        max_dp = options.max_dp
        if options.autoscaler == "none":
            min_dp = max_dp = engine.config.dp
            self.autoscaler = None
        else:
            self.autoscaler = make_autoscaler(
                options.autoscaler,
                min_dp,
                max_dp if max_dp is not None else engine.config.dp,
                up_queue_tokens=float(options.max_batched_tokens),
                capacity_rps_per_replica=_capacity_rps_from(context, avg_in, avg_out),
                prefill_latency_s=_prefill_latency_from(context, avg_in),
                ttft_slo=options.ttft_slo,
            )
        self.min_dp = min_dp
        self.max_dp = max_dp if max_dp is not None else engine.config.dp
        self.weight_load_s, self.kv_warmup_s = provision_times(engine)

        initial_dp = max(min_dp, min(engine.config.dp, self.max_dp))
        self.replicas: list[_FluidReplica] = [
            _FluidReplica(i, 0.0, 0.0) for i in range(initial_dp)
        ]
        self.active: list[_FluidReplica] = list(self.replicas)
        self.provisioning: list[_FluidReplica] = []
        self.draining: list[_FluidReplica] = []
        self.events: list[FleetEvent] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self._fleet_view = _FluidFleetView(self)
        # Coarse telemetry sampler (repro.obs): same series schema as the
        # event path, sampled on a widened grid so a million-request day
        # stays a few-hundred-point artifact. Per-replica series are only
        # emitted for small fleets; cluster.* always.
        self.telemetry = options.telemetry
        # simsan: the fluid path checks the mean-field analogs — causal
        # per-request timelines inline, aggregate token conservation at
        # drain (there are no per-token events or KV books to sweep).
        self.sanitizer = options.sanitize
        if self.sanitizer is not None:
            self.sanitizer.begin_run()
        # numpy mirror of the active replicas' ready times (the ranking
        # key every queue-depth policy reduces to); rebuilt on membership
        # changes, updated in place on dispatch.
        self._ready = np.array([r.ready for r in self.active], dtype=np.float64)
        self._decode_secs = np.zeros(len(self.active), dtype=np.float64)
        # The membership snapshot the arrays were built against. Scale
        # up/down mutates ``active`` before the rebuild, so carrying
        # per-replica state across a rebuild must key off this snapshot —
        # pairing the *new* membership positionally would hand a removed
        # replica's decode backlog to whoever shifted into its slot.
        self._array_members: list = list(self.active)
        self._decode_last = 0.0

    # ------------------------------------------------------------------ #
    # Fleet membership
    # ------------------------------------------------------------------ #

    def _rebuild_arrays(self, now: float) -> None:
        self._decay_decode(now)
        order = {
            id(r): s
            for r, s in zip(self._array_members, self._decode_secs, strict=True)
        }
        self.active.sort(key=lambda r: r.replica_id)
        self._ready = np.array([r.ready for r in self.active], dtype=np.float64)
        self._decode_secs = np.array(
            [order.get(id(r), 0.0) for r in self.active], dtype=np.float64
        )
        self._array_members = list(self.active)

    def _decay_decode(self, now: float) -> None:
        dt = now - self._decode_last
        if dt > 0:
            np.subtract(self._decode_secs, dt, out=self._decode_secs)
            np.maximum(self._decode_secs, 0.0, out=self._decode_secs)
            self._decode_last = now

    def _poll(self, now: float) -> None:
        if not self.provisioning:
            return
        due = [r for r in self.provisioning if r.active_at <= now]
        if not due:
            return
        self.provisioning = [r for r in self.provisioning if r.active_at > now]
        for r in sorted(due, key=lambda r: r.active_at):
            self.active.append(r)
            self.events.append(
                FleetEvent(
                    r.active_at, "active", r.replica_id, len(self.active),
                    reason=(
                        f"weights loaded {self.weight_load_s:.2f}s + KV warm "
                        f"{self.kv_warmup_s:.2f}s after scale-up"
                    ),
                )
            )
        self._rebuild_arrays(now)

    def _reap(self, now: float) -> None:
        if not self.draining:
            return
        still = []
        for r in self.draining:
            done = max(r.ready, r.decode_done, r.active_at)
            if done <= now:
                r.stopped_at = done
                self.events.append(
                    FleetEvent(
                        done, "stopped", r.replica_id, len(self.active),
                        reason="fluid backlog drained",
                    )
                )
            else:
                still.append(r)
        self.draining = still

    def _resize(self, target: int, now: float, reason: str = "") -> None:
        target = max(self.min_dp, min(self.max_dp, target))
        current = len(self.active) + len(self.provisioning)
        while current < target:
            rid = len(self.replicas)
            replica = _FluidReplica(
                rid, now, now + self.weight_load_s + self.kv_warmup_s
            )
            self.replicas.append(replica)
            self.provisioning.append(replica)
            self.scale_ups += 1
            self.events.append(
                FleetEvent(now, "scale-up", rid, len(self.active), reason=reason)
            )
            current += 1
        while current > target and len(self.active) > 1:
            # Least outstanding work first, youngest on ties (the event
            # fleet's victim rule).
            victim = min(
                self.active,
                key=lambda r: (r.outstanding_seconds(now), -r.replica_id),
            )
            self.active.remove(victim)
            victim.draining = True
            # A draining replica takes no more arrivals, so the prefill
            # interleave that stretched its inter-token time vanishes:
            # its remaining decode tail compresses to the bare iteration
            # time (mirrors the drain-phase correction in run()).
            tpot, tpot_drain = self._tpot_now
            if victim.decode_done > now and tpot_drain < tpot:
                victim.decode_done = now + (victim.decode_done - now) * (
                    tpot_drain / tpot
                )
            self.draining.append(victim)
            self.scale_downs += 1
            self.events.append(
                FleetEvent(
                    now, "scale-down", victim.replica_id, len(self.active),
                    reason=reason,
                )
            )
            current -= 1
            self._rebuild_arrays(now)
        self._reap(now)

    # ------------------------------------------------------------------ #
    # Decode operating point
    # ------------------------------------------------------------------ #

    def _offered_rate(self, now: float) -> float:
        window = self._arrival_window
        window.append(now)
        if len(window) > _RATE_WINDOW:
            del window[0 : len(window) - _RATE_WINDOW]
        span = window[-1] - window[0]
        if len(window) < 2 or span <= 0:
            return 0.0
        return (len(window) - 1) / span

    def _iter_time(self, n: int) -> float:
        """One decode iteration of an ``n``-resident batch at the
        residency-weighted mean context."""
        return (
            self.costs.decode_iteration_time(n, int(n * self.resident_ctx)).total
            + ITERATION_OVERHEAD
        )

    def _tpot(self, lam_per_replica: float) -> tuple[float, float]:
        """Inter-token time at the decode operating point.

        The replica must emit ``lam x E[out-1]`` tokens/s to keep up with
        the offered rate, but decode only owns the fraction of wall time
        prefill leaves behind: the engines run prefill-prioritized, so
        every arriving prompt preempts the decode stream for its prefill
        passes and the decode throughput demand inflates by
        ``1 / (1 - rho_prefill)``. Batch token throughput
        ``n / iter_time(n)`` is monotone in ``n``, so the operating batch
        is the smallest ``n`` that sustains the inflated demand (bisected
        — the naive Little's-law fixed-point iteration stalls where the
        throughput curve runs near-parallel to the demand line), and the
        inter-token time stretches by the same interleaving factor. Past
        ``max_batch`` the replica is saturated and decodes flat out at
        the largest admissible batch.

        Returns ``(tpot, drain_tpot)``: the stretched inter-token time
        under the arrival stream, and the bare iteration time at the same
        batch — once arrivals stop there is no prefill left to interleave
        and the fleet decodes its tail flat out.
        """
        bucket = int(lam_per_replica * 16.0)
        cached = self._tpot_cache.get(bucket)
        if cached is not None:
            return cached
        lam = (bucket + 0.5) / 16.0
        # Fraction of replica wall time the prefill stream owns.
        rho_prefill = min(0.75, lam * self.avg_in / self.prefill_rate)
        stretch = 1.0 / (1.0 - rho_prefill)
        required = lam * max(0.0, self.avg_out - 1.0) * stretch
        lo, hi = 1, self.max_batch
        if required <= 1.0 / self._iter_time(1):
            hi = 1
        elif self.max_batch / self._iter_time(self.max_batch) <= required:
            lo = hi  # saturated
        else:
            while lo < hi:
                mid = (lo + hi) // 2
                if mid / self._iter_time(mid) >= required:
                    hi = mid
                else:
                    lo = mid + 1
        pair = (self._iter_time(hi) * stretch, self._iter_time(hi))
        self._tpot_cache[bucket] = pair
        return pair

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _select(self, index: int, now: float) -> int:
        """Position of the chosen replica within ``self.active``."""
        n = len(self.active)
        if n == 1:
            return 0
        name = self.policy_name
        if name == "static":
            return index % n
        if name == "least-work":
            self._decay_decode(now)
            work = np.maximum(self._ready - now, 0.0) + self._decode_secs
            return int(work.argmin())
        if name == "po2":
            a, b = (int(x) for x in self.rng.choice(n, size=2, replace=False))
            if a > b:
                a, b = b, a  # ties resolve toward the lower replica id
            return a if self._ready[a] <= self._ready[b] else b
        # jsq ranks queued prefill tokens = (ready - now) * rate, and slo
        # ranks predicted TTFT = wait + prompt/rate: both are monotone in
        # the ready time (fluid replicas never preempt), so the argmin of
        # ``ready`` answers either policy; ties go to the lowest replica
        # id because ``active`` is id-sorted.
        return int(self._ready.argmin())

    # ------------------------------------------------------------------ #

    def run(self) -> EngineResult:
        reqs = self.requests
        order = sorted(range(len(reqs)), key=lambda i: (reqs[i].arrival_time, i))
        pf_rate = self.prefill_rate
        active = self.active
        ready_arr = self._ready
        autoscaler = self.autoscaler
        decode_tail = 1.0 / self.decode_rate
        budget_tokens = float(self.engine.options.max_batched_tokens)

        arrival_t = [0.0] * len(reqs)
        sched_t = [0.0] * len(reqs)
        first_t = [0.0] * len(reqs)
        finish_t = [0.0] * len(reqs)
        assigned = [0] * len(reqs)

        arrivals_end = reqs[order[-1]].arrival_time if order else 0.0
        tpot, tpot_drain = self._tpot_now = self._tpot(0.0)
        tel = self.telemetry
        trc = self.engine.options.tracing
        san = self.sanitizer
        sample_step = 0.0
        if tel is not None:
            # Widened sample grid: a full day of arrivals still exports at
            # most MAX_WINDOWS cluster samples.
            from repro.obs.telemetry import MAX_WINDOWS

            sample_step = max(tel.interval_s, arrivals_end / MAX_WINDOWS)
        for i in order:
            req = reqs[i]
            now = req.arrival_time
            if self.provisioning:
                self._poll(now)
                active = self.active
                ready_arr = self._ready
            if autoscaler is not None:
                autoscaler.note_arrival(now)
                target = autoscaler.decide(now, self._fleet_view)
                if target is not None:
                    self._resize(target, now, reason=autoscaler.last_reason)
                    active = self.active
                    ready_arr = self._ready
                lam = self._offered_rate(now)
                tpot, tpot_drain = self._tpot_now = self._tpot(
                    lam / max(1, len(active))
                )
            elif (i & 0x3F) == 0:  # refresh the operating point periodically
                lam = self._offered_rate(now)
                tpot, tpot_drain = self._tpot_now = self._tpot(
                    lam / max(1, len(active))
                )
            else:
                self._offered_rate(now)
            if not active:
                raise SimulationError("fluid fleet has no dispatchable replica")
            if tel is not None:
                for t in tel.boundaries("cluster", now, sample_step):
                    self._sample(tel, t)
            k = self._select(i, now)
            replica = active[k]
            if trc is not None:
                trc.note_dispatch(now, req.request_id, replica.replica_id)
            if san is not None:
                san.note_cluster_clock(now)
                san.note_dispatch(req, replica.replica_id, now)
            ready = replica.ready
            if ready < now:
                # Idle only once the decode tail has drained too — a
                # replica still emitting tokens is busy, not idle (the
                # threshold autoscaler's down-scale signal reads this).
                horizon = replica.decode_done if replica.decode_done > ready else ready
                if horizon < now:
                    replica.idle_seconds += now - horizon
                ready = now
            queued_before = (ready - now) * pf_rate
            # Half an iteration of boundary quantization: a real engine
            # admits the arrival only when the in-flight pass finishes.
            sched = ready + 0.5 * tpot
            prefill_s = req.prompt_len / pf_rate
            # Pass quantization: a prompt admitted into a busy prefill
            # wave gets its first token at the end of the *whole* pass,
            # which also carries prompts queued behind it up to the token
            # budget — half a pass of carry-over at depth, nothing on an
            # empty queue.
            carry = 0.5 * min(queued_before, budget_tokens) / pf_rate
            first = sched + prefill_s + carry
            decode_tokens = req.output_len - 1
            finish = first + decode_tokens * tpot
            if finish > arrivals_end and tpot_drain < tpot:
                # Decode that outlives the arrival stream runs with no
                # prefill to interleave: the tail tokens come out at the
                # bare iteration time, the way a draining fleet sprints.
                head_s = arrivals_end - first
                head_tokens = head_s / tpot if head_s > 0.0 else 0.0
                finish = (
                    first
                    + head_tokens * tpot
                    + (decode_tokens - head_tokens) * tpot_drain
                )
            replica.ready = ready + prefill_s
            ready_arr[k] = replica.ready
            if finish > replica.decode_done:
                replica.decode_done = finish
            replica.prefill_busy += prefill_s
            replica.decode_tokens_total += decode_tokens
            replica.num_requests += 1
            replica.total_tokens += req.total_tokens
            queued = (replica.ready - now) * pf_rate
            if queued > replica.peak_queued:
                replica.peak_queued = queued
            if self._decode_secs.shape[0] > k:
                self._decode_secs[k] += decode_tokens * decode_tail
            arrival_t[i] = now
            sched_t[i] = sched
            first_t[i] = first
            finish_t[i] = finish
            assigned[i] = replica.replica_id
            if san is not None:
                san.note_fluid_request(
                    req.request_id,
                    replica.replica_id,
                    arrival=now,
                    sched=sched,
                    first=first,
                    finish=finish,
                )

        last_arrival = max(arrival_t) if arrival_t else 0.0
        self._reap(last_arrival)
        for r in self.draining:
            r.stopped_at = max(r.ready, r.decode_done, r.active_at)
            self.events.append(
                FleetEvent(
                    r.stopped_at, "stopped", r.replica_id, len(self.active),
                    reason="fluid backlog drained",
                )
            )
        self.draining = []
        makespan = max(
            max(finish_t) if finish_t else 0.0,
            max(
                (r.stopped_at for r in self.replicas if math.isfinite(r.stopped_at)),
                default=0.0,
            ),
        )

        if tel is not None:
            # Close out the timeline through the drain tail.
            for t in tel.boundaries("cluster", makespan, sample_step):
                self._sample(tel, t)

        if trc is not None:
            trc.set_warming_windows(
                tuple(
                    (r.replica_id, r.created_at, r.active_at)
                    for r in self.replicas
                    if r.active_at > r.created_at
                )
            )

        if san is not None:
            san.check_fluid_conservation(
                num_requests=len(reqs),
                dispatched=sum(r.num_requests for r in self.replicas),
                prompt_tokens=sum(r.prompt_len for r in reqs),
                served_prompt_tokens=sum(
                    r.prefill_busy for r in self.replicas
                )
                * pf_rate,
                decode_tokens=sum(r.decode_tokens_total for r in self.replicas),
                expected_decode_tokens=sum(
                    max(0, r.output_len - 1) for r in reqs
                ),
                total_tokens=sum(r.total_tokens for r in self.replicas),
                expected_total_tokens=sum(r.total_tokens for r in reqs),
                now=makespan,
            )

        records = tuple(
            RequestLatency(
                request_id=reqs[i].request_id,
                arrival_time=arrival_t[i],
                first_schedule_time=sched_t[i],
                first_token_time=first_t[i],
                finish_time=finish_t[i],
                output_len=reqs[i].output_len,
            )
            for i in range(len(reqs))
        )
        input_tokens = sum(r.prompt_len for r in reqs)
        output_tokens = sum(r.output_len for r in reqs)
        phase_time = {
            "prefill": max((r.prefill_busy for r in self.replicas), default=0.0),
            "decode": max(
                (r.decode_tokens_total * decode_tail for r in self.replicas),
                default=0.0,
            ),
            "idle": max((r.idle_seconds for r in self.replicas), default=0.0),
        }
        return EngineResult(
            engine=self.engine.name,
            label=f"{self.engine.label()}+fluid",
            num_requests=len(reqs),
            total_time=makespan,
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            phase_time=phase_time,
            breakdown=Breakdown(),
            iterations=0,
            transitions=0,
            latency=LatencyStats(records=records),
            router=self._stats(makespan),
        )

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    def _sample(self, tel, t: float) -> None:
        """One cluster sample at grid boundary ``t`` (fluid queue depths
        are analytic: queued tokens = remaining drain seconds x rate)."""
        pf_rate = self.prefill_rate
        queued = 0.0
        for r in self.active:
            queued += max(0.0, r.ready - t) * pf_rate
        tel.point("cluster.active_dp", t, float(len(self.active)))
        tel.point("cluster.provisioning", t, float(len(self.provisioning)))
        tel.point("cluster.draining", t, float(len(self.draining)))
        tel.point("cluster.queued_prefill_tokens", t, queued)
        if len(self.replicas) <= _MAX_SAMPLED_REPLICAS:
            for r in self.active:
                tel.point(
                    f"replica{r.replica_id}.queued_prefill_tokens",
                    t,
                    max(0.0, r.ready - t) * pf_rate,
                )

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #

    def _stats(self, makespan: float) -> RouterStats:
        replicas = self.replicas
        n = len(replicas)
        fleet_stats = None
        if self.autoscaler is not None:
            fleet_stats = self._fleet_stats(makespan)
        idle = []
        for r in replicas:
            window = max(0.0, r.end_time(makespan) - r.active_at)
            # A drained prefill stream with no decode tail left is idle
            # for the remainder of the replica's window.
            tail = max(0.0, r.end_time(makespan) - max(r.clock, r.active_at))
            idle.append(
                min(1.0, (r.idle_seconds + tail) / window) if window > 0 else 0.0
            )
        return RouterStats(
            policy=self.policy_name,
            num_replicas=n,
            requests_per_replica=tuple(r.num_requests for r in replicas),
            tokens_per_replica=tuple(r.total_tokens for r in replicas),
            peak_queued_prefill_tokens=tuple(r.peak_queued for r in replicas),
            predicted_preemptions=(0,) * n,
            coupled=True,
            observed_preemptions=(0,) * n,  # the fluid model never preempts
            idle_fraction=tuple(idle),
            fleet=fleet_stats,
        )

    def _fleet_stats(self, makespan: float) -> FleetStats:
        deltas: dict[float, int] = {}
        for r in self.replicas:
            end = r.end_time(makespan)
            if end <= r.active_at:
                continue
            deltas[r.active_at] = deltas.get(r.active_at, 0) + 1
            deltas[end] = deltas.get(end, 0) - 1
        peak = level = 0
        active_seconds = 0.0
        last_t: float | None = None
        for t in sorted(deltas):
            if last_t is not None:
                active_seconds += level * (t - last_t)
            level += deltas[t]
            peak = max(peak, level)
            last_t = t
        billed = sum(r.end_time(makespan) - r.created_at for r in self.replicas)
        provision = sum(
            max(0.0, min(r.active_at, makespan) - r.created_at)
            for r in self.replicas
        )
        return FleetStats(
            autoscaler=self.engine.options.autoscaler,
            min_dp=self.min_dp,
            max_dp=self.max_dp,
            num_handles=len(self.replicas),
            peak_dp=peak,
            mean_dp=active_seconds / makespan if makespan > 0 else 0.0,
            replica_seconds=billed,
            active_replica_seconds=active_seconds,
            provision_seconds=provision,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            events=tuple(self.events),
        )
