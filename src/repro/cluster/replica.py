"""One replica as an incrementally steppable simulation, plus its
observed-load view.

:class:`ReplicaSim` wraps an engine's per-replica event-loop generator
(:meth:`repro.engines.base.BaseEngine._replica_loop`) behind the
discrete-event interface the cluster simulator drives:

- ``next_event_time()`` — when this replica next does something: its own
  clock while it has admissible work, the earliest injected arrival while
  it is idle, ``inf`` when it has nothing at all;
- ``advance(until)`` — execute every event starting before ``until``
  (iterations are atomic, so the clock may overshoot ``until`` by the
  tail of the last iteration — exactly like a real engine that cannot
  abort a launched forward pass);
- ``inject(request)`` — dispatch a request to this replica; the engine's
  scheduler admits it when its clock reaches the arrival time.

:class:`ObservedLoad` projects the replica's *actual* scheduling state
(queued tokens, KV headroom, measured preemptions) onto the same view API
as the decoupled :class:`repro.routing.load.ReplicaLoad` ledger, so every
dispatch policy in :mod:`repro.routing.policies` ranks observed replicas
without modification.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import TYPE_CHECKING

from repro.routing.load import RouterContext, _duration
from repro.runtime.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.base import BaseEngine

_EPS = 1e-12


class ReplicaSim:
    """One DP replica driven event-by-event on the shared cluster clock."""

    def __init__(
        self,
        engine: "BaseEngine",
        replica_id: int,
        requests: list[Request] | None = None,
        start_time: float = 0.0,
    ) -> None:
        self.engine = engine
        self.replica_id = replica_id
        self.run = engine._replica_setup(list(requests or []), replica_id)
        # A replica born mid-run (an elastic scale-up) starts its clock at
        # its activation instant: idle/phase accounting then covers only
        # the window in which the replica actually existed.
        self.clock = start_time
        self._events = None
        # Fixed-interval state sampler (repro.obs); None keeps _step on
        # the exact pre-telemetry path.
        tel = engine.options.telemetry
        self._probe = tel.probe(replica_id, start_time) if tel is not None else None
        # Runtime invariant sanitizer (repro.check); None keeps _step on
        # the exact unsanitized path.
        self._san = engine.options.sanitize
        # Observed-preemption watermark of the last storm check (the
        # coupled analog of ReplicaLoad.storm_preemptions resets).
        self.preemption_mark = 0
        # Snapshot taken before the cluster advances to each new arrival
        # instant: preemptions above it happened "just now", the recency
        # window the slo policy penalizes. Refreshing it every arrival
        # step makes the penalty decay naturally instead of branding a
        # replica forever for one long-past eviction.
        self.preemption_snapshot = 0
        self.peak_queued_prefill_tokens = 0.0
        self.redispatched_in = 0
        # Queued-prefill cache, keyed on the state's prefill epoch: the
        # unstarted-prompt token sum plus the completed-but-in-flight
        # prefills as (end_time, suffix-token-sum) arrays, so a dispatch
        # probe is a bisect instead of a walk over every live sequence.
        self._agg_epoch = -1
        self._agg_unstarted = 0
        self._agg_ends: list[float] = []
        self._agg_suffix: list[int] = [0]

    # ------------------------------------------------------------------ #
    # Event interface
    # ------------------------------------------------------------------ #

    def next_event_time(self) -> float:
        """Earliest time this replica acts next (``inf`` when drained)."""
        state = self.run.state
        if not state.unfinished:
            return math.inf
        if state.has_immediate_work:
            return self.clock
        if state.pending:
            arrival = state.pending[0].arrival_time
            return self.clock if arrival <= self.clock + _EPS else arrival
        return self.clock  # defensive: unfinished work of an unknown kind

    def advance(self, until: float) -> None:
        """Execute every event that starts before ``until``.

        Events at exactly ``until`` are left for the next call so an
        arrival being dispatched at ``until`` is visible to the iteration
        that starts there (matching the engines' admission epsilon).
        """
        while True:
            t = self.next_event_time()
            if math.isinf(t) or t + _EPS >= until:
                return
            self._step()

    def finish(self) -> None:
        """Run the replica to completion (no further injections)."""
        while not math.isinf(self.next_event_time()):
            self._step()

    def _step(self) -> None:
        """Execute one event: resume the engine's event-loop generator."""
        if self._events is None:
            self._events = self.engine._replica_loop(self.run, self.clock)
        # Trace events recorded while this replica's generator runs must
        # land in this replica's trace, not another's.
        self.engine._active_trace = self.run.trace
        try:
            t = next(self._events)
            if self._san is not None:
                self._san.note_replica_clock(self.replica_id, self.clock, t)
            self.clock = max(self.clock, t)
            if self._probe is not None:
                self._probe.tick(self.clock, self.run.state, self.run.metrics)
        except StopIteration:
            # Drained for now; a later inject() re-arms the loop from the
            # current clock (all state persists in self.run).
            self._events = None

    # ------------------------------------------------------------------ #
    # Dispatch interface
    # ------------------------------------------------------------------ #

    def inject(self, request: Request) -> None:
        """Dispatch ``request`` to this replica."""
        self.run.add_request(request)

    def steal_pending(self) -> list[Request]:
        """Withdraw every request the scheduler has not yet observed."""
        return self.run.steal_pending()

    # ------------------------------------------------------------------ #
    # Observed state
    # ------------------------------------------------------------------ #

    def queued_prefill_tokens(self, now: float | None = None) -> float:
        """Prompt tokens dispatched here whose prefill is not done by ``now``.

        Iterations are atomic, so the replica's committed state can run
        ahead of the cluster clock; a prompt whose prefill *completes*
        after ``now`` is still in flight from the dispatcher's viewpoint
        and counts at its full prefill size (the honest observation — the
        router cannot see inside a forward pass).
        """
        now = self.clock if now is None else now
        self._refresh_prefill_cache()
        idx = bisect_right(self._agg_ends, now + _EPS)
        return float(self._agg_unstarted + self._agg_suffix[idx])

    def _refresh_prefill_cache(self) -> None:
        """Rebuild the queued-prefill aggregates when the replica's prefill
        epoch moved (queue membership, prefill progress or running-set
        churn since the last probe); pure decode iterations leave the
        epoch alone, so steady-state probes cost one bisect."""
        state = self.run.state
        if state.prefill_epoch == self._agg_epoch:
            return
        self._agg_epoch = state.prefill_epoch
        # Unstarted work is only what sits in the queues: a sequence whose
        # prefill was rebuilt after a recompute preemption keeps a target
        # above its prompt length (it reads as never-complete), but once
        # running again it owes the dispatcher nothing.
        # Inlined Sequence property bodies: this rebuild runs once per
        # (epoch bump x probe) and the attribute reads dominate it.
        unstarted = 0
        for s in state.pending:
            left = s.prefill_target - s.prefilled_tokens
            if left > 0:
                unstarted += left
        for s in state.waiting:
            left = s.prefill_target - s.prefilled_tokens
            if left > 0:
                unstarted += left
        self._agg_unstarted = unstarted
        pairs = []
        for s in state.live_sequences():
            if s.prefilled_tokens >= s.prefill_target:
                end = s.prefill_end_time
                if end == end:  # NaN = never scheduled with a known end
                    pairs.append((end, s.prefill_target))
        pairs.sort()
        ends = [p[0] for p in pairs]
        suffix = [0] * (len(pairs) + 1)
        for i in range(len(pairs) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + pairs[i][1]
        self._agg_ends = ends
        self._agg_suffix = suffix

    def unstarted_prefill_tokens(self) -> int:
        """Prompt tokens the scheduler has not pulled into any pass yet."""
        self._refresh_prefill_cache()
        return self._agg_unstarted

    def decode_backlog_tokens(self) -> float:
        """Output tokens still to decode across every live sequence (an
        exact counter the engine loops maintain incrementally)."""
        return float(self.run.state.decode_backlog)

    def outstanding_tokens(self, now: float | None = None) -> float:
        """Unprefilled prompt plus undecoded output tokens (least-work)."""
        return self.queued_prefill_tokens(now) + self.decode_backlog_tokens()

    def committed_ahead_seconds(self, now: float | None = None) -> float:
        """How far this replica's committed iterations run past ``now`` —
        the in-flight work a dispatcher at ``now`` must wait behind."""
        now = self.clock if now is None else now
        return max(0.0, self.clock - now)

    def observed_preemptions(self) -> int:
        """Preemptions that actually happened on this replica so far
        (the engines' O(1) run-metrics counter — probed on every arrival,
        so scanning sequences here would make the event loop quadratic)."""
        return self.run.metrics.preemptions

    def idle_time(self) -> float:
        """Wall time this replica spent sleeping on an empty queue."""
        return self.run.metrics.phase_timer.get("idle")

    def preempted_recently(self) -> bool:
        """Whether a preemption happened since the cluster last advanced
        to a new arrival instant (the decaying signal ``slo`` consumes)."""
        return self.observed_preemptions() - self.preemption_snapshot > 0

    def note_queue_depth(self, now: float | None = None) -> None:
        """Record the current queued-prefill depth into the peak stat.

        Called right after an inject — between injects an observed queue
        only drains, so this is the only instant a new peak can form."""
        self.peak_queued_prefill_tokens = max(
            self.peak_queued_prefill_tokens, self.queued_prefill_tokens(now)
        )


class ObservedLoad:
    """The :class:`~repro.routing.load.ReplicaLoad` view API, answered
    from a live replica simulation instead of a predicted ledger.

    Queue depths and KV pressure are *measured* (the replica's actual
    pending/waiting/running sequences and allocator headroom); only the
    conversion from observed queued tokens to predicted seconds still
    uses the context's analytic service rates — the router needs a time
    unit, and rates are the one thing it cannot observe ahead of time.
    Notably, :meth:`would_preempt` consumes the replica's **measured**
    preemption counter: a replica that actually evicted KV since the
    cluster last stepped to a new arrival instant is penalized by the
    ``slo`` policy, closing the predicted-only gap of the decoupled
    router.
    """

    def __init__(self, sim: ReplicaSim, context: RouterContext) -> None:
        self.sim = sim
        self.context = context

    @property
    def replica_id(self) -> int:
        return self.sim.replica_id

    def queued_prefill_tokens(self, now: float | None = None) -> float:
        return self.sim.queued_prefill_tokens(now)

    def outstanding_tokens(self, now: float | None = None) -> float:
        return self.sim.outstanding_tokens(now)

    def work_seconds(self, now: float | None = None) -> float:
        """Predicted seconds to drain the *observed* backlog: the tail of
        the committed in-flight iteration (which already covers admitted
        prefills) plus the unstarted work converted at the context's
        analytic rates."""
        prefill = _duration(
            self.sim.unstarted_prefill_tokens(), self.context.prefill_tokens_per_s
        )
        decode = _duration(
            self.sim.decode_backlog_tokens(), self.context.decode_tokens_per_s
        )
        return self.sim.committed_ahead_seconds(now) + prefill + decode

    def predicted_ttft(self, request: Request, now: float | None = None) -> float:
        return self.work_seconds(now) + _duration(
            request.prompt_len, self.context.prefill_tokens_per_s
        )

    def would_preempt(self, request: Request, now: float | None = None) -> bool:
        """KV headroom check plus the *recent* measured-preemption signal
        (preemptions observed since the cluster last advanced to a new
        arrival instant — the window refreshes every arrival, so the
        penalty decays once the replica stops evicting)."""
        state = self.sim.run.state
        if state.kv.free_tokens < request.total_tokens:
            return True
        return self.sim.preempted_recently()
