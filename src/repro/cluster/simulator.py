"""Event-coupled cluster simulation: every DP replica on one shared clock.

The decoupled router (:meth:`repro.routing.policies.Router.route`) commits
every dispatch before any replica simulates, ranking replicas by a
*predicted* load ledger. :class:`ClusterSimulator` instead interleaves
dispatch into the discrete-event loop: it repeatedly pops the earliest
event among {next request arrival, each replica's next iteration
boundary, fleet membership changes}, runs replica iterations up to each
arrival, and only then asks the dispatch policy to place the arrival —
against the replicas' **observed** state (actual queued tokens, measured
preemptions, real idle gaps) via :class:`~repro.cluster.replica.ObservedLoad`.

Replica membership is owned by a :class:`~repro.cluster.fleet.ReplicaFleet`
rather than fixed at t=0: an optional autoscaler
(:mod:`repro.cluster.autoscaler`) is consulted on the shared clock and
its scale decisions become lifecycle events — new replicas pay the
cost-model provisioning latency (weight load + KV warmup) before joining
the dispatch membership, and scaled-down replicas drain their in-flight
work without accepting new dispatches. The routing policies rank whatever
membership is dispatchable at each decision instant.

Storm handling is observed too: when a replica's *measured* preemption
count since its last reset crosses the storm threshold, every request its
scheduler has not yet seen is withdrawn and re-dispatched to the calmest
replica — the coupled analog of the decoupled router's
predicted-preemption rebalancing.

With the ``static`` policy and no autoscaler nothing depends on load or
membership at all, so a coupled run reproduces the decoupled per-replica
results bit-exactly on offline workloads (the golden-equivalence contract
the tests pin).
"""

from __future__ import annotations

from typing import Sequence as TypingSequence, TYPE_CHECKING

import heapq
import math
import warnings

from repro.cluster.autoscaler import make_autoscaler
from repro.cluster.fleet import ReplicaFleet
from repro.cluster.replica import _EPS, ReplicaSim
from repro.errors import ConfigurationError, SimulationError
from repro.routing.load import _duration
from repro.routing.policies import DEFAULT_STORM_PREEMPTIONS
from repro.routing.stats import RouterStats
from repro.runtime.metrics import EngineResult, merge_dp_results
from repro.runtime.request import Request
from repro.runtime.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.base import BaseEngine


class ClusterSimulator:
    """Shared-clock co-simulation of an engine's DP replica fleet."""

    def __init__(
        self,
        engine: "BaseEngine",
        requests: TypingSequence[Request],
        storm_preemptions: int = DEFAULT_STORM_PREEMPTIONS,
        use_heap: bool = True,
    ) -> None:
        self.engine = engine
        self.requests = list(requests)
        if not self.requests:
            raise ConfigurationError("cannot simulate an empty workload")
        if storm_preemptions < 1:
            raise ConfigurationError("storm_preemptions must be >= 1")
        # The policy object supplies select() and the rate context; its
        # predictive ledgers are replaced by observed views of the live
        # replica simulations, narrowed to the dispatchable membership
        # before every decision.
        self.policy = engine.make_router(self.requests)
        options = engine.options
        # Runtime invariant sanitizer (repro.check.Sanitizer); None keeps
        # the event loop on its exact unsanitized instruction path. Reset
        # per-run state before the fleet constructor fires its prewarm
        # lifecycle transitions, so one sanitizer can watch many runs.
        self.sanitizer = options.sanitize
        if self.sanitizer is not None:
            self.sanitizer.begin_run()
        min_dp = options.min_dp if options.min_dp is not None else 1
        max_dp = options.max_dp
        if options.autoscaler == "none":
            # Fixed fleet: exactly the configuration's replica set.
            min_dp = max_dp = engine.config.dp
        initial_dp = max(min_dp, min(engine.config.dp, max_dp or engine.config.dp))
        self.fleet = ReplicaFleet(
            engine,
            initial_dp,
            self.policy.context,
            min_dp=min_dp,
            max_dp=max_dp,
            autoscaler_name=options.autoscaler,
        )
        if options.autoscaler == "none":
            self.autoscaler = None
        else:
            context = self.policy.context
            avg_in, avg_out = _workload_averages(self.requests)
            self.autoscaler = make_autoscaler(
                options.autoscaler,
                self.fleet.min_dp,
                self.fleet.max_dp,
                up_queue_tokens=float(options.max_batched_tokens),
                capacity_rps_per_replica=_capacity_rps_from(context, avg_in, avg_out),
                prefill_latency_s=_prefill_latency_from(context, avg_in),
                ttft_slo=options.ttft_slo,
            )
        self.storm_preemptions = storm_preemptions
        self.redispatched_requests = 0
        self.redispatches = 0
        # Lazy event heap over (next_event_time, replica_id, serial): the
        # newest serial per replica wins, older entries are dropped on
        # pop. ``use_heap=False`` keeps the pre-refactor linear scan over
        # every live replica per arrival (the equivalence oracle).
        self.use_heap = use_heap
        self._heap: list[tuple[float, int, int]] = []
        self._serial: dict[int, int] = {}
        # Telemetry hub: dispatch/storm events and the cluster-wide
        # fixed-interval sampler land here. debug_dispatch_log additionally
        # records the observed queued-prefill tuple per dispatch —
        # O(requests x replicas), bounded by the hub's max_events cap; a
        # debug_dispatch_log run without an explicit hub gets a private
        # one so the deprecated dispatch_log alias keeps working.
        self.debug_dispatch_log = options.debug_dispatch_log
        tel = options.telemetry
        if tel is None and options.debug_dispatch_log:
            from repro.obs.telemetry import Telemetry

            tel = Telemetry()
        self.telemetry = tel
        # Per-request tracer (repro.obs.Tracer); None keeps the dispatch
        # loop on its exact untraced instruction path (same contract as
        # telemetry).
        self.tracing = options.tracing
        self._dispatch_log_warned = False

    @property
    def dispatch_log(self) -> list[tuple[int, int, tuple[float, ...]]]:
        """Deprecated alias over the telemetry event stream: the
        ``(request_id, replica, per-replica queued prefill tokens)``
        tuples of every dispatch that recorded queue depths (i.e. runs
        with ``EngineOptions.debug_dispatch_log``). New consumers should
        read ``telemetry.events_of("dispatch")`` directly."""
        if not self._dispatch_log_warned:
            self._dispatch_log_warned = True
            warnings.warn(
                "ClusterSimulator.dispatch_log is deprecated; read "
                'telemetry.events_of("dispatch") instead',
                DeprecationWarning,
                stacklevel=2,
            )
        if self.telemetry is None:
            return []
        return [
            (e["request_id"], e["replica"], tuple(e["queues"]))
            for e in self.telemetry.events
            if e["event"] == "dispatch" and "queues" in e
        ]

    @property
    def sims(self) -> list[ReplicaSim]:
        """Every replica simulation that exists, in replica-id order."""
        return list(self.fleet.sims())

    @property
    def num_replicas(self) -> int:
        return len(self.fleet.handles)

    # ------------------------------------------------------------------ #
    # Event heap
    # ------------------------------------------------------------------ #

    def _push(self, sim: ReplicaSim) -> None:
        """(Re-)schedule a replica: bump its serial (invalidating every
        older heap entry) and push its next event time if finite."""
        rid = sim.replica_id
        serial = self._serial.get(rid, 0) + 1
        self._serial[rid] = serial
        t = sim.next_event_time()
        if not math.isinf(t):
            heapq.heappush(self._heap, (t, rid, serial))

    def _advance_heap(self, now: float, stepped: set[int]) -> None:
        """Pop and execute every replica event that precedes ``now``."""
        heap = self._heap
        serials = self._serial
        handles = self.fleet.handles
        san = self.sanitizer
        while heap:
            t, rid, serial = heap[0]
            if t + _EPS >= now:
                return
            heapq.heappop(heap)
            if serial != serials.get(rid):
                continue  # superseded by a later push
            handle = handles[rid]
            sim = handle.sim
            if sim is None or not handle.live:
                continue
            if san is not None:
                # S2: a validated pop must not come later than the linear
                # oracle's minimum over every live replica (O(R), the cost
                # of sanitizing).
                oracle = min(
                    (s.next_event_time() for s in self.fleet.live_sims()),
                    default=math.inf,
                )
                san.note_event_pop(t, rid, oracle)
            sim.advance(now)
            stepped.add(rid)
            self._push(sim)

    # ------------------------------------------------------------------ #

    def run(self) -> EngineResult:
        """Co-simulate to completion; returns the merged cluster result."""
        reqs = self.requests
        order = sorted(range(len(reqs)), key=lambda i: (reqs[i].arrival_time, i))
        trace_armed = self.engine.options.trace
        traced_sim: ReplicaSim | None = None
        fleet = self.fleet
        use_heap = self.use_heap
        tel = self.telemetry
        san = self.sanitizer
        last_now = -1.0
        # Replicas that executed events since the last snapshot refresh —
        # every other replica's preemption counter is unchanged, so
        # re-snapshotting it would be a no-op.
        stepped: set[int] = set()
        if use_heap:
            for sim in fleet.live_sims():
                self._push(sim)

        for i in order:
            req = reqs[i]
            now = req.arrival_time
            if san is not None:
                san.note_cluster_clock(now)
            # Commit membership events due by this instant (replicas whose
            # provisioning/warming finished join the dispatchable set).
            for handle in fleet.poll(now):
                if use_heap and handle.sim is not None:
                    self._push(handle.sim)
            if now > last_now:
                # Stepping to a new instant: refresh the recency window so
                # only preemptions committed by *this* advance read as
                # "just happened" (the decaying slo penalty).
                if use_heap:
                    # Sorted for determinism: `stepped` is a set, and while
                    # these snapshot writes commute today, iteration order
                    # must never become load-bearing (simlint R3).
                    for rid in sorted(stepped):
                        sim = fleet.handles[rid].sim
                        if sim is not None:
                            sim.preemption_snapshot = sim.observed_preemptions()
                    stepped.clear()
                else:
                    for sim in fleet.live_sims():
                        sim.preemption_snapshot = sim.observed_preemptions()
                last_now = now
            # Pop every replica event (iteration boundary or idle jump)
            # that precedes this arrival — draining replicas keep working
            # through their in-flight backlog too.
            if use_heap:
                self._advance_heap(now, stepped)
            else:
                for sim in fleet.live_sims():
                    sim.advance(now)
            fleet.reap_drained()
            if self.autoscaler is not None:
                self.autoscaler.note_arrival(now)
                target = self.autoscaler.decide(now, fleet)
                if target is not None:
                    fleet.resize_to(target, now, reason=self.autoscaler.last_reason)
            if tel is not None:
                for t in tel.boundaries("cluster", now):
                    self._sample_cluster(tel, t)
            loads = fleet.dispatch_loads()
            if not loads:
                raise SimulationError("fleet has no dispatchable replica")
            self.policy.loads = loads
            queues = (
                tuple(load.queued_prefill_tokens(now) for load in loads)
                if self.debug_dispatch_log
                else None
            )
            rid = self.policy.select(req, i, now)
            handle = fleet.handle(rid)
            if not handle.dispatchable or handle.sim is None:
                raise SimulationError(
                    f"{self.policy.name} selected non-dispatchable replica {rid}"
                )
            sim = handle.sim
            if trace_armed:
                # Trace the first replica that receives work (the coupled
                # analog of tracing the first non-empty partition).
                sim.run.trace = Trace()
                traced_sim = sim
                trace_armed = False
            if san is not None:
                san.note_dispatch(req, rid, now)
            trc = self.tracing
            if trc is not None:
                trc.note_dispatch(now, req.request_id, rid)
            sim.inject(req)
            sim.note_queue_depth(now)
            if use_heap:
                self._push(sim)
            if tel is not None:
                if queues is not None:
                    tel.event(
                        now, "dispatch",
                        request_id=req.request_id, replica=rid, queues=queues,
                    )
                else:
                    tel.event(now, "dispatch", request_id=req.request_id, replica=rid)
            if self.policy.rebalance_on_storm and len(loads) > 1:
                moved = self._redispatch_storms(now)
                if moved:
                    self.redispatched_requests += moved
                    self.redispatches += 1
                    if tel is not None:
                        tel.event(now, "storm", moved=moved)

        for sim in fleet.live_sims():
            sim.finish()
        fleet.reap_drained()
        if san is not None:
            # Drain-time conservation sweep (S3 token conservation + S4
            # KV balance) over every replica that ever simulated.
            for sim in fleet.sims():
                san.check_drained(sim.replica_id, sim.run.state, sim.clock)
        if traced_sim is not None:
            self.engine.last_trace = traced_sim.run.trace
        trc = self.tracing
        if trc is not None:
            trc.set_warming_windows(fleet.warming_windows())

        makespan = fleet.makespan()
        if tel is not None:
            # Close out the cluster timeline: sample every boundary
            # between the last arrival and the end of the run (the drain
            # tail, where queues empty and draining replicas stop).
            for t in tel.boundaries("cluster", makespan):
                self._sample_cluster(tel, t)
        results = [
            self.engine._replica_result(sim.run, sim.clock)
            for sim in fleet.sims()
            if sim.run.requests
        ]
        if not results:
            raise SimulationError("coupled run produced no replica results")
        return merge_dp_results(
            results,
            engine=self.engine.name,
            label=self.engine.label(),
            router=self._stats(makespan),
            # Partial-lifetime replicas may all have drained before the
            # fleet's last event; the cluster makespan is authoritative.
            total_time=makespan,
        )

    # ------------------------------------------------------------------ #
    # Observed storm re-dispatch
    # ------------------------------------------------------------------ #

    def _redispatch_storms(self, now: float) -> int:
        """Move unseen requests away from replicas in a measured storm.

        A dispatchable replica whose observed preemption count since its
        last reset reached the threshold has every still-pending (never
        admitted) request withdrawn and re-dispatched to the least-loaded
        calm replica — ranked at the shared instant ``now`` so replicas
        whose committed iterations overshot the clock are compared fairly.
        Requiring a calm target keeps two storming replicas from bouncing
        the same requests back and forth; with no calm replica the work
        stays put. Draining replicas neither give up their in-flight
        backlog nor receive new work here.
        """
        sims = [h.sim for h in self.fleet.active_handles() if h.sim is not None]
        storming = [
            sim
            for sim in sims
            if sim.observed_preemptions() - sim.preemption_mark
            >= self.storm_preemptions
        ]
        if not storming:
            return 0
        calm = [sim for sim in sims if sim not in storming]
        if not calm:
            return 0
        # Rank the calm pool once; every inject adds the request's token
        # footprint to the target's total (token counts are integers well
        # below 2**53, so the running float totals are exact and match a
        # recomputed outstanding_tokens bit-for-bit).
        candidates = [(s.outstanding_tokens(now), s.replica_id, s) for s in calm]
        heapq.heapify(candidates)
        san = self.sanitizer
        moved = 0
        for src in storming:
            stolen = src.steal_pending()
            # Re-arm the watermark whether or not anything was stealable:
            # a measured storm is a point-in-time event, and leaving the
            # mark would exclude the replica from the calm pool forever.
            src.preemption_mark = src.observed_preemptions()
            if not stolen:
                continue
            if self.use_heap:
                self._push(src)
            for req in stolen:
                total, rid, target = heapq.heappop(candidates)
                if san is not None:
                    # S5: ownership moves src -> target exactly once.
                    san.note_withdraw(req, src.replica_id, now)
                    san.note_dispatch(req, rid, now)
                trc = self.tracing
                if trc is not None:
                    trc.note_withdraw(now, req.request_id, src.replica_id)
                    trc.note_redispatch(now, req.request_id, rid)
                target.inject(req)
                target.note_queue_depth(now)
                target.redispatched_in += 1
                moved += 1
                if self.use_heap:
                    self._push(target)
                heapq.heappush(
                    candidates,
                    (total + float(req.prompt_len + req.output_len - 1), rid, target),
                )
        return moved

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    def _sample_cluster(self, tel, t: float) -> None:
        """One cluster-wide sample at boundary ``t`` (sample-and-hold of
        the membership/queue state at the instant the boundary was
        crossed — arrivals are the only instants the cluster loop runs,
        so no finer-grained truth exists on this path)."""
        fleet = self.fleet
        queued = 0.0
        for h in fleet.handles:
            if h.dispatchable and h.sim is not None:
                queued += h.sim.queued_prefill_tokens(t)
        tel.point("cluster.active_dp", t, float(fleet.active_count))
        tel.point("cluster.provisioning", t, float(fleet.provisioning_count))
        tel.point("cluster.draining", t, float(fleet.draining_count))
        tel.point("cluster.queued_prefill_tokens", t, queued)

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #

    def _stats(self, makespan: float) -> RouterStats:
        fleet = self.fleet
        handles = fleet.handles
        n = len(handles)

        def per_sim(fn, default):
            return tuple(
                fn(h.sim) if h.sim is not None else default for h in handles
            )

        return RouterStats(
            policy=self.policy.name,
            num_replicas=n,
            requests_per_replica=per_sim(lambda s: len(s.run.requests), 0),
            tokens_per_replica=per_sim(
                lambda s: sum(r.total_tokens for r in s.run.requests), 0
            ),
            peak_queued_prefill_tokens=per_sim(
                lambda s: s.peak_queued_prefill_tokens, 0.0
            ),
            # Nothing is *predicted* on the coupled path; the measured
            # counter rides in observed_preemptions instead.
            predicted_preemptions=(0,) * n,
            coupled=True,
            observed_preemptions=per_sim(lambda s: s.observed_preemptions(), 0),
            # Idle is judged against each replica's *active window*: a
            # replica that drained early and sat unused while others kept
            # working is idle for that tail too, but a replica is not
            # idle before it was provisioned or after it stopped.
            idle_fraction=fleet.idle_fractions(makespan),
            redispatched_requests=self.redispatched_requests,
            redispatches=self.redispatches,
            fleet=fleet.stats(makespan) if fleet.autoscaler_name != "none" else None,
        )


def _workload_averages(requests: list[Request]) -> tuple[float, float]:
    in_tokens = 0
    out_tokens = 0
    for r in requests:
        in_tokens += r.prompt_len
        out_tokens += r.output_len
    n = len(requests)
    return in_tokens / n, out_tokens / n


def _capacity_rps_from(context, avg_in: float, avg_out: float) -> float:
    """Analytic per-replica request capacity from the router context's
    service rates (the predictive autoscaler's ``mu1``)."""
    seconds = _duration(avg_in, context.prefill_tokens_per_s)
    seconds += _duration(max(0.0, avg_out - 1.0), context.decode_tokens_per_s)
    if seconds <= 0 or not math.isfinite(seconds):
        return 1.0  # degenerate context: neutral capacity
    return 1.0 / seconds


def _prefill_latency_from(context, avg_in: float) -> float:
    latency = _duration(avg_in, context.prefill_tokens_per_s)
    return latency if math.isfinite(latency) else 0.0


def _capacity_rps(context, requests: list[Request]) -> float:
    avg_in, avg_out = _workload_averages(requests)
    return _capacity_rps_from(context, avg_in, avg_out)


def _mean_prefill_latency(context, requests: list[Request]) -> float:
    avg_in, _ = _workload_averages(requests)
    return _prefill_latency_from(context, avg_in)
