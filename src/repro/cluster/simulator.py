"""Event-coupled cluster simulation: every DP replica on one shared clock.

The decoupled router (:meth:`repro.routing.policies.Router.route`) commits
every dispatch before any replica simulates, ranking replicas by a
*predicted* load ledger. :class:`ClusterSimulator` instead interleaves
dispatch into the discrete-event loop: it repeatedly pops the earliest
event among {next request arrival, each replica's next iteration
boundary}, runs replica iterations up to each arrival, and only then asks
the dispatch policy to place the arrival — against the replicas'
**observed** state (actual queued tokens, measured preemptions, real idle
gaps) via :class:`~repro.cluster.replica.ObservedLoad`.

Storm handling is observed too: when a replica's *measured* preemption
count since its last reset crosses the storm threshold, every request its
scheduler has not yet seen is withdrawn and re-dispatched to the calmest
replica — the coupled analog of the decoupled router's
predicted-preemption rebalancing.

With the ``static`` policy nothing depends on load at all, so a coupled
run reproduces the decoupled per-replica results bit-exactly on offline
workloads (the golden-equivalence contract the tests pin).
"""

from __future__ import annotations

from typing import Sequence as TypingSequence, TYPE_CHECKING

from repro.cluster.replica import ObservedLoad, ReplicaSim
from repro.errors import ConfigurationError, SimulationError
from repro.routing.policies import DEFAULT_STORM_PREEMPTIONS
from repro.routing.stats import RouterStats
from repro.runtime.metrics import EngineResult, merge_dp_results
from repro.runtime.request import Request
from repro.runtime.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.base import BaseEngine


class ClusterSimulator:
    """Shared-clock co-simulation of an engine's DP replicas."""

    def __init__(
        self,
        engine: "BaseEngine",
        requests: TypingSequence[Request],
        storm_preemptions: int = DEFAULT_STORM_PREEMPTIONS,
    ) -> None:
        self.engine = engine
        self.requests = list(requests)
        if not self.requests:
            raise ConfigurationError("cannot simulate an empty workload")
        if storm_preemptions < 1:
            raise ConfigurationError("storm_preemptions must be >= 1")
        # The policy object supplies select() and the rate context; its
        # predictive ledgers are replaced by observed views of the live
        # replica simulations.
        self.policy = engine.make_router(self.requests)
        self.num_replicas = self.policy.num_replicas
        self.sims = [engine.start_replica(i) for i in range(self.num_replicas)]
        self.loads = [ObservedLoad(sim, self.policy.context) for sim in self.sims]
        self.policy.loads = self.loads
        self.storm_preemptions = storm_preemptions
        self.redispatched_requests = 0
        self.redispatches = 0
        # Per-dispatch decision log: (request_id, replica, observed queued
        # prefill tokens per replica at the decision instant). Consumed by
        # tests and debugging; cheap at simulation scale.
        self.dispatch_log: list[tuple[int, int, tuple[float, ...]]] = []

    # ------------------------------------------------------------------ #

    def run(self) -> EngineResult:
        """Co-simulate to completion; returns the merged cluster result."""
        reqs = self.requests
        order = sorted(range(len(reqs)), key=lambda i: (reqs[i].arrival_time, i))
        trace_armed = self.engine.options.trace
        traced_sim: ReplicaSim | None = None
        last_now = -1.0

        for i in order:
            req = reqs[i]
            now = req.arrival_time
            if now > last_now:
                # Stepping to a new instant: refresh the recency window so
                # only preemptions committed by *this* advance read as
                # "just happened" (the decaying slo penalty).
                for sim in self.sims:
                    sim.preemption_snapshot = sim.observed_preemptions()
                last_now = now
            # Pop every replica event (iteration boundary or idle jump)
            # that precedes this arrival.
            for sim in self.sims:
                sim.advance(now)
            queues = tuple(load.queued_prefill_tokens(now) for load in self.loads)
            rid = self.policy.select(req, i, now)
            if not 0 <= rid < self.num_replicas:
                raise SimulationError(
                    f"{self.policy.name} selected replica {rid} of "
                    f"{self.num_replicas}"
                )
            sim = self.sims[rid]
            if trace_armed:
                # Trace the first replica that receives work (the coupled
                # analog of tracing the first non-empty partition).
                sim.run.trace = Trace()
                traced_sim = sim
                trace_armed = False
            sim.inject(req)
            sim.note_queue_depth(now)
            self.dispatch_log.append((req.request_id, rid, queues))
            if self.policy.rebalance_on_storm and self.num_replicas > 1:
                moved = self._redispatch_storms(now)
                if moved:
                    self.redispatched_requests += moved
                    self.redispatches += 1

        for sim in self.sims:
            sim.finish()
        if traced_sim is not None:
            self.engine.last_trace = traced_sim.run.trace

        results = [
            self.engine._replica_result(sim.run, sim.clock)
            for sim in self.sims
            if sim.run.requests
        ]
        if not results:
            raise SimulationError("coupled run produced no replica results")
        return merge_dp_results(
            results,
            engine=self.engine.name,
            label=self.engine.label(),
            router=self._stats(),
        )

    # ------------------------------------------------------------------ #
    # Observed storm re-dispatch
    # ------------------------------------------------------------------ #

    def _redispatch_storms(self, now: float) -> int:
        """Move unseen requests away from replicas in a measured storm.

        A replica whose observed preemption count since its last reset
        reached the threshold has every still-pending (never admitted)
        request withdrawn and re-dispatched to the least-loaded calm
        replica — ranked at the shared instant ``now`` so replicas whose
        committed iterations overshot the clock are compared fairly.
        Requiring a calm target keeps two storming replicas from bouncing
        the same requests back and forth; with no calm replica the work
        stays put.
        """
        storming = [
            sim
            for sim in self.sims
            if sim.observed_preemptions() - sim.preemption_mark
            >= self.storm_preemptions
        ]
        if not storming:
            return 0
        calm = [sim for sim in self.sims if sim not in storming]
        if not calm:
            return 0
        moved = 0
        for src in storming:
            stolen = src.steal_pending()
            # Re-arm the watermark whether or not anything was stealable:
            # a measured storm is a point-in-time event, and leaving the
            # mark would exclude the replica from the calm pool forever.
            src.preemption_mark = src.observed_preemptions()
            if not stolen:
                continue
            for req in stolen:
                target = min(
                    calm, key=lambda s: (s.outstanding_tokens(now), s.replica_id)
                )
                target.inject(req)
                target.note_queue_depth(now)
                target.redispatched_in += 1
                moved += 1
        return moved

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #

    def _stats(self) -> RouterStats:
        n = self.num_replicas
        # Idle is judged against the cluster makespan: a replica that
        # drained early and sat unused while others kept working is idle
        # for that tail too (that is exactly the imbalance signal).
        makespan = max(s.clock for s in self.sims)
        idle_fraction = tuple(
            min(1.0, (s.idle_time() + (makespan - s.clock)) / makespan)
            if makespan > 0
            else 0.0
            for s in self.sims
        )
        return RouterStats(
            policy=self.policy.name,
            num_replicas=n,
            requests_per_replica=tuple(len(s.run.requests) for s in self.sims),
            tokens_per_replica=tuple(
                sum(r.total_tokens for r in s.run.requests) for s in self.sims
            ),
            peak_queued_prefill_tokens=tuple(
                s.peak_queued_prefill_tokens for s in self.sims
            ),
            # Nothing is *predicted* on the coupled path; the measured
            # counter rides in observed_preemptions instead.
            predicted_preemptions=(0,) * n,
            coupled=True,
            observed_preemptions=tuple(
                s.observed_preemptions() for s in self.sims
            ),
            idle_fraction=idle_fraction,
            redispatched_requests=self.redispatched_requests,
            redispatches=self.redispatches,
        )
