"""Lifecycle-managed elastic replica fleet for the coupled simulator.

Every layer below PR 4 assumed a replica set fixed at t=0. This module
removes that assumption: a :class:`ReplicaFleet` owns one
:class:`ReplicaHandle` per replica that *ever* existed, each moving
through the lifecycle

    provisioning -> warming -> active -> draining -> stopped

on the cluster's shared virtual clock. Scale-up is not free: a new
replica first loads its weight shard over the host link
(:class:`~repro.costmodel.transfer.TransferModel` — GPUs of a replica
load their shards concurrently, so the per-GPU time is the wall time)
and then warms its KV region (one streaming pass over the KV pool at
attainable HBM bandwidth: allocation plus page-touch). Only then does it
become *active* and enter the dispatch membership. Scale-down drains: a
draining replica accepts no new dispatches but finishes everything
already dispatched to it, then stops.

Membership changes are first-class events: activations and stops are
timestamped, logged (:class:`~repro.routing.stats.FleetEvent`) and folded
into the run's :class:`~repro.routing.stats.FleetStats` (peak/mean dp,
replica-seconds, scale counts). With no autoscaler the fleet is simply
the fixed replica set of the engine's configuration, active from t=0 —
bit-exact with the fixed-fleet simulator it replaces.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING, Iterator

from repro.cluster.replica import ObservedLoad, ReplicaSim
from repro.costmodel.transfer import TransferModel
from repro.errors import ConfigurationError, SimulationError
from repro.parallel.memory import kv_capacity_bytes_per_gpu, weight_bytes_per_gpu
from repro.routing.load import RouterContext
from repro.routing.stats import FleetEvent, FleetStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.base import BaseEngine

_EPS = 1e-12


class ReplicaLifecycle(enum.Enum):
    """Where one replica is in its provision/serve/retire life."""

    PROVISIONING = "provisioning"  # loading the weight shard host->GPU
    WARMING = "warming"  # initializing the KV region
    ACTIVE = "active"  # in the dispatch membership
    DRAINING = "draining"  # finishing in-flight work, no new dispatches
    STOPPED = "stopped"  # fully drained and released


def provision_times(engine: "BaseEngine") -> tuple[float, float]:
    """(weight-load seconds, KV-warmup seconds) for one new replica.

    Weight load: each GPU of the replica pulls its shard
    (:func:`weight_bytes_per_gpu`) over its own host link concurrently,
    so the wall time is one shard over the pinned-staging link. KV
    warmup: the freshly allocated KV region is touched once at attainable
    HBM bandwidth (allocation + zeroing — the pool must exist before the
    first prefill can write into it).
    """
    cfg = engine.replica_config
    transfer = TransferModel(engine.cluster, layout=engine.options.kv_layout)
    weight_s = transfer.weight_load_time(weight_bytes_per_gpu(engine.model, cfg))
    kv_bytes = max(0.0, kv_capacity_bytes_per_gpu(engine.model, engine.cluster, cfg))
    warm_s = kv_bytes / engine.cluster.gpu.effective_bandwidth
    return weight_s, warm_s


class ReplicaHandle:
    """One replica's lifecycle record; owns its simulation once active."""

    def __init__(
        self,
        replica_id: int,
        created_at: float,
        weights_ready_at: float,
        active_at: float,
    ) -> None:
        self.replica_id = replica_id
        self.created_at = created_at
        self.weights_ready_at = weights_ready_at
        self.active_at = active_at
        self.state = ReplicaLifecycle.PROVISIONING
        self.sim: ReplicaSim | None = None
        self.load: ObservedLoad | None = None
        self.drain_started_at: float | None = None
        self.stopped_at: float | None = None

    @property
    def dispatchable(self) -> bool:
        return self.state is ReplicaLifecycle.ACTIVE

    @property
    def live(self) -> bool:
        """Whether the replica still executes events (active or draining)."""
        return self.state in (ReplicaLifecycle.ACTIVE, ReplicaLifecycle.DRAINING)

    def end_time(self, makespan: float) -> float:
        """When this replica stopped costing anything (makespan while up)."""
        return self.stopped_at if self.stopped_at is not None else makespan

    def active_window(self, makespan: float) -> float:
        """Seconds this replica spent dispatchable-or-draining."""
        if self.sim is None:
            return 0.0
        return max(0.0, self.end_time(makespan) - self.active_at)


class ReplicaFleet:
    """Dynamic replica membership on the shared cluster clock."""

    def __init__(
        self,
        engine: "BaseEngine",
        initial_dp: int,
        context: RouterContext,
        *,
        min_dp: int = 1,
        max_dp: int | None = None,
        autoscaler_name: str = "none",
    ) -> None:
        if initial_dp < 1:
            raise ConfigurationError("fleet needs at least one initial replica")
        if min_dp < 1:
            raise ConfigurationError("min_dp must be >= 1")
        gpus_per_replica = engine.replica_config.num_gpus
        hard_cap = engine.cluster.num_gpus // gpus_per_replica
        if max_dp is None:
            max_dp = max(initial_dp, hard_cap)
        if max_dp < min_dp:
            raise ConfigurationError(
                f"max_dp ({max_dp}) must be >= min_dp ({min_dp})"
            )
        if max_dp > hard_cap:
            raise ConfigurationError(
                f"max_dp {max_dp} needs {max_dp * gpus_per_replica} GPUs, "
                f"cluster has {engine.cluster.num_gpus}"
            )
        if not min_dp <= initial_dp <= max_dp:
            raise ConfigurationError(
                f"initial dp {initial_dp} outside [{min_dp}, {max_dp}]"
            )
        self.engine = engine
        self.context = context
        self.min_dp = min_dp
        self.max_dp = max_dp
        self.autoscaler_name = autoscaler_name
        self.weight_load_s, self.kv_warmup_s = provision_times(engine)
        # Runtime invariant sanitizer (repro.check.Sanitizer); None keeps
        # lifecycle bookkeeping on the exact unsanitized path.
        self._san = engine.options.sanitize
        self.handles: list[ReplicaHandle] = []
        # Lifecycle worklists so the per-event poll/reap sweeps touch only
        # replicas that can actually transition (id-ordered, like the
        # full-handle scans they replace).
        self._pending: list[ReplicaHandle] = []
        self._draining: list[ReplicaHandle] = []
        self.events: list[FleetEvent] = []
        self.scale_ups = 0
        self.scale_downs = 0
        # The fleet you start with is already resident and warm (the
        # fixed-fleet seed semantics): active at t=0 with no provision
        # latency and no scale event.
        for _ in range(initial_dp):
            handle = self._new_handle(0.0, prewarmed=True)
            # Prewarmed replicas pass through WARMING instantaneously so
            # even the t=0 fleet walks the strict lifecycle order.
            self._transition(handle, ReplicaLifecycle.WARMING, 0.0)
            self._activate(handle)

    # ------------------------------------------------------------------ #
    # Membership views
    # ------------------------------------------------------------------ #

    def active_handles(self) -> list[ReplicaHandle]:
        return [h for h in self.handles if h.dispatchable]

    def dispatch_loads(self) -> list[ObservedLoad]:
        """The membership view the routing policies rank right now."""
        return [h.load for h in self.handles if h.dispatchable and h.load]

    def live_sims(self) -> Iterator[ReplicaSim]:
        """Simulations that still execute events (active + draining)."""
        for h in self.handles:
            if h.live and h.sim is not None:
                yield h.sim

    def sims(self) -> Iterator[ReplicaSim]:
        """Every simulation that ever ran (any lifecycle state)."""
        for h in self.handles:
            if h.sim is not None:
                yield h.sim

    def handle(self, replica_id: int) -> ReplicaHandle:
        if 0 <= replica_id < len(self.handles):
            return self.handles[replica_id]
        raise SimulationError(f"no replica handle with id {replica_id}")

    @property
    def active_count(self) -> int:
        return sum(1 for h in self.handles if h.dispatchable)

    @property
    def provisioning_count(self) -> int:
        return sum(
            1
            for h in self.handles
            if h.state in (ReplicaLifecycle.PROVISIONING, ReplicaLifecycle.WARMING)
        )

    @property
    def draining_count(self) -> int:
        return sum(1 for h in self.handles if h.state is ReplicaLifecycle.DRAINING)

    @property
    def target_count(self) -> int:
        """Replicas already committed: active plus in-flight scale-ups."""
        return self.active_count + self.provisioning_count

    # ------------------------------------------------------------------ #
    # Lifecycle events
    # ------------------------------------------------------------------ #

    def _new_handle(self, now: float, prewarmed: bool = False) -> ReplicaHandle:
        rid = len(self.handles)
        if prewarmed:
            handle = ReplicaHandle(rid, now, now, now)
        else:
            ready = now + self.weight_load_s
            handle = ReplicaHandle(rid, now, ready, ready + self.kv_warmup_s)
        self.handles.append(handle)
        if not prewarmed:
            self._pending.append(handle)
        return handle

    def _transition(
        self, handle: ReplicaHandle, new_state: ReplicaLifecycle, now: float
    ) -> None:
        """Every lifecycle state write funnels through here so the
        sanitizer can assert the edge is legal (S6)."""
        if self._san is not None:
            self._san.note_transition(
                handle.replica_id, handle.state.value, new_state.value, now
            )
        handle.state = new_state

    def _activate(self, handle: ReplicaHandle) -> None:
        self._transition(handle, ReplicaLifecycle.ACTIVE, handle.active_at)
        handle.sim = self.engine.start_replica(
            handle.replica_id, start_time=handle.active_at
        )
        handle.load = ObservedLoad(handle.sim, self.context)

    def poll(self, now: float) -> list[ReplicaHandle]:
        """Commit every lifecycle transition due by ``now`` (the
        membership events of the shared clock); returns the handles that
        became active so the caller can schedule their first events."""
        if not self._pending:
            return []
        activated: list[ReplicaHandle] = []
        for h in self._pending:
            if (
                h.state is ReplicaLifecycle.PROVISIONING
                and h.weights_ready_at <= now + _EPS
            ):
                self._transition(h, ReplicaLifecycle.WARMING, h.weights_ready_at)
            if h.state is ReplicaLifecycle.WARMING and h.active_at <= now + _EPS:
                self._activate(h)
                self.events.append(
                    FleetEvent(
                        h.active_at,
                        "active",
                        h.replica_id,
                        self.active_count,
                        reason=(
                            f"weights loaded {self.weight_load_s:.2f}s + KV warm "
                            f"{self.kv_warmup_s:.2f}s after scale-up"
                        ),
                    )
                )
                activated.append(h)
        if activated:
            self._pending = [h for h in self._pending if h.state is not ReplicaLifecycle.ACTIVE]
        return activated

    def reap_drained(self) -> None:
        """Stop draining replicas whose in-flight work has completed."""
        if not self._draining:
            return
        reaped = False
        for h in sorted(self._draining, key=lambda h: h.replica_id):
            if h.state is not ReplicaLifecycle.DRAINING or h.sim is None:
                continue
            if math.isinf(h.sim.next_event_time()):
                # The drain completes when the last in-flight event did,
                # or at the drain order itself if the replica was already
                # idle when it was told to go.
                assert h.drain_started_at is not None
                h.stopped_at = max(h.drain_started_at, h.sim.clock)
                self._transition(h, ReplicaLifecycle.STOPPED, h.stopped_at)
                reaped = True
                self.events.append(
                    FleetEvent(
                        h.stopped_at,
                        "stopped",
                        h.replica_id,
                        self.active_count,
                        reason="in-flight work drained",
                    )
                )
        if reaped:
            self._draining = [
                h for h in self._draining if h.state is ReplicaLifecycle.DRAINING
            ]

    def scale_up(self, now: float, n: int, reason: str = "") -> int:
        """Provision ``n`` new replicas (bounded by ``max_dp``); returns
        how many were actually started. ``reason`` records the scaling
        decision that ordered them (the autoscaler's triggering signal)."""
        started = 0
        while started < n and self.target_count < self.max_dp:
            handle = self._new_handle(now)
            self.scale_ups += 1
            started += 1
            self.events.append(
                FleetEvent(
                    now, "scale-up", handle.replica_id, self.active_count,
                    reason=reason,
                )
            )
        return started

    def scale_down(self, now: float, n: int, reason: str = "") -> int:
        """Begin draining ``n`` active replicas (never below ``min_dp``
        active-or-provisioning, and never the last active replica).

        Drains the least-loaded replicas first (they finish soonest),
        breaking ties toward the youngest so the long-lived low ids —
        the stable backbone the static deal rotates over — survive.
        """
        drained = 0
        while drained < n:
            active = self.active_handles()
            if len(active) <= 1 or self.target_count <= self.min_dp:
                break
            victim = min(
                active,
                key=lambda h: (
                    h.sim.outstanding_tokens(now) if h.sim else 0.0,
                    -h.replica_id,
                ),
            )
            self._transition(victim, ReplicaLifecycle.DRAINING, now)
            victim.drain_started_at = now
            self._draining.append(victim)
            self.scale_downs += 1
            drained += 1
            self.events.append(
                FleetEvent(
                    now, "scale-down", victim.replica_id, self.active_count,
                    reason=reason,
                )
            )
        if drained:
            self.reap_drained()
        return drained

    def resize_to(self, target: int, now: float, reason: str = "") -> None:
        """Move the committed replica count toward ``target``; ``reason``
        is the scaling decision's recorded cause, stamped onto the
        resulting :class:`FleetEvent` entries."""
        target = max(self.min_dp, min(self.max_dp, target))
        current = self.target_count
        if target > current:
            self.scale_up(now, target - current, reason=reason)
        elif target < current:
            self.scale_down(now, current - target, reason=reason)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def makespan(self) -> float:
        """Latest instant any replica's simulation reached."""
        return max((sim.clock for sim in self.sims()), default=0.0)

    def warming_windows(self) -> tuple[tuple[int, float, float], ...]:
        """``(replica_id, created_at, active_at)`` for every replica that
        paid a provision/warm latency — the windows the tracer overlaps
        with request waits to attribute them to fleet warm-up. Prewarmed
        t=0 replicas have zero-width windows and are excluded."""
        return tuple(
            (h.replica_id, h.created_at, h.active_at)
            for h in self.handles
            if h.active_at > h.created_at + _EPS
        )

    def idle_fractions(self, makespan: float) -> tuple[float, ...]:
        """Idle fraction per handle, normalized by its *active window*.

        A replica is charged the time it slept on an empty queue plus the
        tail between its last event and the end of its window — which is
        the cluster makespan while it stays up, or its stop time once
        drained (a stopped replica is not idle after it stops, and no
        replica is idle before it exists).
        """
        fractions = []
        for h in self.handles:
            window = h.active_window(makespan)
            if h.sim is None or window <= 0:
                fractions.append(0.0)
                continue
            tail = max(0.0, h.end_time(makespan) - h.sim.clock)
            fractions.append(min(1.0, (h.sim.idle_time() + tail) / window))
        return tuple(fractions)

    def stats(self, makespan: float) -> FleetStats:
        """Fold the lifecycle log into the run's fleet summary."""
        # Time-weighted active count / peak via an event sweep over the
        # active windows [active_at, end).
        deltas: dict[float, int] = {}
        for h in self.handles:
            if h.sim is None:
                continue
            end = h.end_time(makespan)
            if end <= h.active_at:
                continue
            deltas[h.active_at] = deltas.get(h.active_at, 0) + 1
            deltas[end] = deltas.get(end, 0) - 1
        peak = 0
        level = 0
        active_seconds = 0.0
        last_t: float | None = None
        for t in sorted(deltas):
            if last_t is not None:
                active_seconds += level * (t - last_t)
            level += deltas[t]
            peak = max(peak, level)
            last_t = t
        billed = sum(h.end_time(makespan) - h.created_at for h in self.handles)
        provision = sum(
            max(0.0, min(h.active_at, makespan) - h.created_at)
            for h in self.handles
        )
        return FleetStats(
            autoscaler=self.autoscaler_name,
            min_dp=self.min_dp,
            max_dp=self.max_dp,
            num_handles=len(self.handles),
            peak_dp=peak,
            mean_dp=active_seconds / makespan if makespan > 0 else 0.0,
            replica_seconds=billed,
            active_replica_seconds=active_seconds,
            provision_seconds=provision,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            events=tuple(self.events),
        )
