"""Perf-trajectory harness: timed reference cells with committed baselines.

``repro bench`` times a fixed set of reference cells — one per hot path
the simulator grew (offline engine loop, event-coupled dispatch,
autoscaled fleets, the fluid fast path) — and reports wall time, work
rate (iterations or requests per second) and peak RSS for each. The
committed baselines under ``benchmarks/perf/BENCH_<cell>.json`` are the
repo's perf trajectory: ``--check`` fails when a cell regresses more
than :data:`REGRESSION_TOLERANCE` against its baseline, and ``--update``
rewrites the baselines after a deliberate perf change.

Wall clocks are not portable across machines, so every run also times a
fixed pure-Python/numpy calibration spin and normalizes the measured
wall by the spin-time ratio before comparing: a machine twice as slow as
the baseline recorder gets twice the budget. The spin is deliberately a
mix of interpreter-bound and numpy-bound work — the same mix the
simulator's hot loops have.

Setup (workload synthesis, engine construction) happens outside the
timed region; only the simulation itself is measured.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import SimulationError
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig
from repro.workloads.arrivals import diurnal_arrivals, poisson_arrivals
from repro.workloads.datasets import sharegpt_workload

# A cell fails --check when its normalized wall exceeds baseline x this.
REGRESSION_TOLERANCE = 1.25

# ``--telemetry-overhead`` fails when the instrumented coupled-JSQ cell
# costs more than this ratio of the telemetry-off run (same process, so
# no calibration needed — the two runs share the machine).
TELEMETRY_OVERHEAD_TOLERANCE = 1.10

# ``--tracing-overhead`` has the same contract for the request tracer:
# the coupled-JSQ cell with p99_exemplars tracing vs tracing off.
TRACING_OVERHEAD_TOLERANCE = 1.10

_BASELINE_PREFIX = "BENCH_"


def default_baseline_dir() -> Path:
    """``benchmarks/perf/`` next to the source tree (the committed
    trajectory), falling back to the working directory for installs
    that carry no repo checkout."""
    repo = Path(__file__).resolve().parents[2]
    candidate = repo / "benchmarks" / "perf"
    if candidate.is_dir():
        return candidate
    return Path.cwd() / "benchmarks" / "perf"


def calibration_spin() -> float:
    """Seconds for a fixed interpreter+numpy workload (machine speed)."""
    t0 = time.perf_counter()
    acc = 0
    for i in range(1_500_000):
        acc += i ^ (i >> 3)
    a = np.arange(100_000, dtype=np.int64)
    for _ in range(40):
        acc += int((a * 3 + 1).sum())
    if acc < 0:  # pragma: no cover - keeps the loop un-eliminable
        raise AssertionError
    return time.perf_counter() - t0


# --------------------------------------------------------------------- #
# Reference cells
# --------------------------------------------------------------------- #


def _cell_offline_static(scale: float):
    """Offline engine inner loop: no arrivals, decoupled static deal."""
    n = max(16, int(2000 * scale))
    wl = sharegpt_workload(num_requests=n, seed=7)
    eng = VllmLikeEngine(
        get_model("15b"),
        make_cluster("A10", 8),
        ParallelConfig(dp=4, tp=2, pp=1),
        EngineOptions(router="static"),
    )
    return lambda: eng.run(wl), "iterations"


def _cell_coupled_jsq(scale: float, telemetry=None, tracing=None):
    """Event-coupled JSQ dispatch on the shared clock (the reference
    cell of the event-path speedup criterion and of the telemetry and
    tracing overhead gates)."""
    n = max(16, int(2000 * scale))
    wl = poisson_arrivals(sharegpt_workload(num_requests=n, seed=7), rate_rps=8.0, seed=7)
    eng = VllmLikeEngine(
        get_model("15b"),
        make_cluster("A10", 8),
        ParallelConfig(dp=4, tp=2, pp=1),
        EngineOptions(router="jsq", coupled=True, telemetry=telemetry, tracing=tracing),
    )
    return lambda: eng.run(wl), "iterations"


def _cell_autoscaled_diurnal(scale: float):
    """Elastic threshold fleet under a diurnal day-shape."""
    n = max(16, int(2000 * scale))
    wl = diurnal_arrivals(
        sharegpt_workload(num_requests=n, seed=11),
        rate_rps=6.0,
        period_s=240.0,
        seed=11,
    )
    eng = VllmLikeEngine(
        get_model("15b"),
        make_cluster("A10", 8),
        ParallelConfig(dp=4, tp=2, pp=1),
        EngineOptions(
            router="jsq", coupled=True, autoscaler="threshold", min_dp=1, max_dp=4
        ),
    )
    return lambda: eng.run(wl), "iterations"


def _cell_fluid_million(scale: float):
    """A million-request diurnal day on a 200-replica fleet, solved by
    the calibrated fluid fast path."""
    n = max(1000, int(1_000_000 * scale))
    wl = diurnal_arrivals(
        sharegpt_workload(num_requests=n, seed=3),
        rate_rps=140.0 * n / 1_000_000,
        period_s=8640.0,
        seed=3,
    )
    eng = VllmLikeEngine(
        get_model("15b"),
        make_cluster("A10", 400),
        ParallelConfig(dp=200, tp=2, pp=1),
        EngineOptions(
            router="jsq",
            coupled=True,
            fidelity="fluid",
            autoscaler="threshold",
            min_dp=20,
            max_dp=200,
        ),
    )
    return lambda: eng.run(wl), "requests"


def run_sweep_parallel(scale: float = 1.0, jobs: int = 2) -> dict:
    """Multi-cell sweep wall: the same 8 coupled-JSQ cells executed
    serially (``--jobs 1``) and through the process pool (``--jobs N``),
    in that order, with the parallel results asserted bit-identical to
    the serial ones before anything is reported. ``wall_s`` (what the
    regression gate budgets) is the *parallel* wall; ``serial_wall_s``
    and ``speedup`` record what the fan-out bought on this machine."""
    from repro.exec import CellExecutor, CellSpec

    n = max(16, int(400 * scale))
    model = get_model("15b")
    cluster = make_cluster("A10", 8)
    specs = [
        CellSpec(
            engine="vllm",
            model=model,
            cluster=cluster,
            config="D4T2",
            options=EngineOptions(router="jsq", router_seed=7 + i, coupled=True),
            workload=poisson_arrivals(
                sharegpt_workload(num_requests=n, seed=7 + i),
                rate_rps=8.0,
                seed=7 + i,
            ),
            seed=7 + i,
        )
        for i in range(8)
    ]
    t0 = time.perf_counter()
    serial = CellExecutor(jobs=1).run(specs)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    outcomes = CellExecutor(jobs=jobs).run_outcomes(specs)
    wall = time.perf_counter() - t0
    parallel = [o.result for o in outcomes]
    if parallel != serial:
        raise SimulationError(
            "parallel sweep diverged from the serial run "
            "(the executor's determinism contract is broken)"
        )
    work = len(specs)
    return {
        "cell": "sweep_parallel",
        "wall_s": round(wall, 4),
        "serial_wall_s": round(serial_wall, 4),
        "speedup": round(serial_wall / wall, 2) if wall > 0 else 0.0,
        "jobs": jobs,
        "work_kind": "cells",
        "work_items": work,
        "work_rate": round(work / wall, 1) if wall > 0 else 0.0,
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
        "child_peak_rss_mb": round(
            max((o.peak_rss_mb for o in outcomes), default=0.0), 1
        ),
        "sim_seconds": round(sum(r.total_time for r in parallel), 2),
    }


CELLS: dict[str, Callable] = {
    "offline_static": _cell_offline_static,
    "coupled_jsq": _cell_coupled_jsq,
    "autoscaled_diurnal": _cell_autoscaled_diurnal,
    "fluid_million": _cell_fluid_million,
    # Special-cased in run_cell: times a serial-vs-pooled executor pair
    # rather than one engine run (the value here is for the listing).
    "sweep_parallel": run_sweep_parallel,
}


def run_cell(
    name: str, scale: float = 1.0, profile_dir: Path | None = None, jobs: int = 2
) -> dict:
    """Time one reference cell; returns the measurement record."""
    if name == "sweep_parallel":
        return run_sweep_parallel(scale, jobs=jobs)
    runner, work_kind = CELLS[name](scale)
    if profile_dir is not None:
        import cProfile

        prof = cProfile.Profile()
        t0 = time.perf_counter()
        result = prof.runcall(runner)
        wall = time.perf_counter() - t0
        profile_dir.mkdir(parents=True, exist_ok=True)
        prof.dump_stats(profile_dir / f"{name}.prof")
    else:
        t0 = time.perf_counter()
        result = runner()
        wall = time.perf_counter() - t0
    if work_kind == "iterations":
        work = result.iterations
    else:
        work = result.latency.num_requests if result.latency is not None else 0
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    child_rss_mb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0
    return {
        "cell": name,
        "wall_s": round(wall, 4),
        "work_kind": work_kind,
        "work_items": int(work),
        "work_rate": round(work / wall, 1) if wall > 0 else 0.0,
        "peak_rss_mb": round(peak_rss_mb, 1),
        "child_peak_rss_mb": round(child_rss_mb, 1),
        "sim_seconds": round(result.total_time, 2),
    }


def run_telemetry_overhead(scale: float = 1.0, repeats: int = 5) -> dict:
    """Telemetry-on vs telemetry-off wall time on the coupled-JSQ cell.

    Both variants run in this process in interleaved off/on rounds (min
    of ``repeats`` each, fresh engine and hub per repetition) so slow
    machine drift hits both sides equally and the ratio needs no
    cross-machine calibration. The gate is the tentpole's cost contract:
    the instrumented run must stay under
    :data:`TELEMETRY_OVERHEAD_TOLERANCE` times the zero-overhead run.
    """
    from repro.obs import Telemetry

    def one_wall(make_telemetry) -> float:
        runner, _ = _cell_coupled_jsq(scale, telemetry=make_telemetry())
        t0 = time.perf_counter()
        runner()
        return time.perf_counter() - t0

    off = on = float("inf")
    for _ in range(repeats):
        off = min(off, one_wall(lambda: None))
        on = min(on, one_wall(Telemetry))
    ratio = on / off if off > 0 else 1.0
    return {
        "cell": "coupled_jsq",
        "off_wall_s": round(off, 4),
        "on_wall_s": round(on, 4),
        "overhead_ratio": round(ratio, 4),
        "tolerance": TELEMETRY_OVERHEAD_TOLERANCE,
        "ok": ratio <= TELEMETRY_OVERHEAD_TOLERANCE,
    }


def run_tracing_overhead(scale: float = 1.0, repeats: int = 5) -> dict:
    """Tracing-on vs tracing-off wall time on the coupled-JSQ cell.

    Same protocol as :func:`run_telemetry_overhead` — interleaved
    off/on rounds in one process, min-of-``repeats`` walls, a fresh
    engine and tracer per repetition — gating the tracer's cost
    contract at :data:`TRACING_OVERHEAD_TOLERANCE`. The instrumented
    side runs the ``p99_exemplars`` sampling mode (the always-on
    production posture: marks for everyone, trace trees only for the
    tail).
    """
    from repro.obs import Tracer

    def one_wall(make_tracer) -> float:
        runner, _ = _cell_coupled_jsq(scale, tracing=make_tracer())
        t0 = time.perf_counter()
        runner()
        return time.perf_counter() - t0

    off = on = float("inf")
    for _ in range(repeats):
        off = min(off, one_wall(lambda: None))
        on = min(on, one_wall(lambda: Tracer("p99_exemplars")))
    ratio = on / off if off > 0 else 1.0
    return {
        "cell": "coupled_jsq",
        "sampling": "p99_exemplars",
        "off_wall_s": round(off, 4),
        "on_wall_s": round(on, 4),
        "overhead_ratio": round(ratio, 4),
        "tolerance": TRACING_OVERHEAD_TOLERANCE,
        "ok": ratio <= TRACING_OVERHEAD_TOLERANCE,
    }


def baseline_path(directory: Path, cell: str) -> Path:
    return directory / f"{_BASELINE_PREFIX}{cell}.json"


def load_baseline(directory: Path, cell: str) -> dict | None:
    path = baseline_path(directory, cell)
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def check_measurement(measurement: dict, baseline: dict, calib_s: float) -> tuple[bool, str]:
    """Normalized-regression verdict for one cell.

    The measured wall is scaled by ``baseline_calib / current_calib`` so
    a slower (or faster) machine is compared in the baseline recorder's
    time units.
    """
    base_wall = float(baseline["wall_s"])
    base_calib = float(baseline["calib_s"])
    factor = base_calib / calib_s if calib_s > 0 else 1.0
    norm_wall = measurement["wall_s"] * factor
    budget = base_wall * REGRESSION_TOLERANCE
    ok = norm_wall <= budget
    detail = (
        f"wall={measurement['wall_s']:.3f}s norm={norm_wall:.3f}s "
        f"budget={budget:.3f}s (baseline {base_wall:.3f}s x {REGRESSION_TOLERANCE})"
    )
    return ok, detail


def cmd_bench(args: argparse.Namespace) -> int:
    directory = Path(args.baseline_dir) if args.baseline_dir else default_baseline_dir()
    if (args.telemetry_overhead or args.tracing_overhead) and args.cells is None:
        names = []  # the overhead gates alone, unless cells were asked for
    else:
        names = args.cells or list(CELLS)
    unknown = [n for n in names if n not in CELLS]
    if unknown:
        print(f"unknown cells: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(CELLS)}", file=sys.stderr)
        return 2
    profile_dir = Path(args.profile) if args.profile else None
    calib = calibration_spin()
    print(f"calibration spin: {calib:.3f}s")
    failed = []
    for name in names:
        measurement = run_cell(
            name, scale=args.scale, profile_dir=profile_dir, jobs=args.jobs
        )
        measurement["calib_s"] = round(calib, 4)
        line = (
            f"{name:20s} wall={measurement['wall_s']:8.3f}s "
            f"{measurement['work_kind']}={measurement['work_items']} "
            f"rate={measurement['work_rate']:.0f}/s "
            f"rss={measurement['peak_rss_mb']:.0f}MB"
        )
        if "speedup" in measurement:
            line += (
                f" speedup={measurement['speedup']:.2f}x"
                f"(jobs={measurement['jobs']})"
            )
        if args.update:
            if args.scale != 1.0:
                print("refusing to --update baselines at --scale != 1", file=sys.stderr)
                return 2
            directory.mkdir(parents=True, exist_ok=True)
            baseline_path(directory, name).write_text(
                json.dumps(measurement, indent=2, sort_keys=True) + "\n"
            )
            line += "  [baseline updated]"
        elif args.check:
            baseline = load_baseline(directory, name)
            if baseline is None:
                failed.append(name)
                line += "  [FAIL: no baseline]"
            elif args.scale != 1.0:
                line += "  [check skipped: scaled cell]"
            else:
                ok, detail = check_measurement(measurement, baseline, calib)
                line += f"  [{'ok' if ok else 'FAIL'}: {detail}]"
                if not ok:
                    failed.append(name)
        print(line)
        if args.json:
            out = Path(args.json)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{_BASELINE_PREFIX}{name}.json").write_text(
                json.dumps(measurement, indent=2, sort_keys=True) + "\n"
            )
    if args.telemetry_overhead:
        if args.scale != 1.0:
            print("telemetry overhead gate requires --scale 1", file=sys.stderr)
            return 2
        overhead = run_telemetry_overhead()
        verdict = "ok" if overhead["ok"] else "FAIL"
        print(
            f"telemetry_overhead   off={overhead['off_wall_s']:.3f}s "
            f"on={overhead['on_wall_s']:.3f}s "
            f"ratio={overhead['overhead_ratio']:.3f} "
            f"[{verdict}: tolerance {overhead['tolerance']}]"
        )
        if args.json:
            out = Path(args.json)
            out.mkdir(parents=True, exist_ok=True)
            (out / "BENCH_telemetry_overhead.json").write_text(
                json.dumps(overhead, indent=2, sort_keys=True) + "\n"
            )
        if not overhead["ok"]:
            failed.append("telemetry_overhead")
    if args.tracing_overhead:
        if args.scale != 1.0:
            print("tracing overhead gate requires --scale 1", file=sys.stderr)
            return 2
        overhead = run_tracing_overhead()
        verdict = "ok" if overhead["ok"] else "FAIL"
        print(
            f"tracing_overhead     off={overhead['off_wall_s']:.3f}s "
            f"on={overhead['on_wall_s']:.3f}s "
            f"ratio={overhead['overhead_ratio']:.3f} "
            f"[{verdict}: tolerance {overhead['tolerance']}]"
        )
        if args.json:
            out = Path(args.json)
            out.mkdir(parents=True, exist_ok=True)
            (out / "BENCH_tracing_overhead.json").write_text(
                json.dumps(overhead, indent=2, sort_keys=True) + "\n"
            )
        if not overhead["ok"]:
            failed.append("tracing_overhead")
    if profile_dir is not None:
        print(f"profiles written under {profile_dir}/")
    if failed:
        print(f"perf regression in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def add_bench_parser(sub) -> None:
    """Attach the ``bench`` subcommand to the CLI's subparsers."""
    p = sub.add_parser("bench", help="time the perf reference cells")
    p.add_argument(
        "--cells",
        nargs="*",
        default=None,
        metavar="CELL",
        help=f"cells to run (default all: {' '.join(CELLS)})",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when a cell regresses >25%% against its "
        "committed baseline, normalized by the calibration spin",
    )
    p.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baselines from this run",
    )
    p.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink cells by this factor (smoke testing; disables --check)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the sweep_parallel cell (default 2)",
    )
    p.add_argument(
        "--profile",
        default=None,
        metavar="DIR",
        help="dump a cProfile .prof per cell into DIR",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="DIR",
        help="also write each measurement as JSON into DIR (CI artifacts)",
    )
    p.add_argument(
        "--baseline-dir",
        default=None,
        help="baseline directory (default: the repo's benchmarks/perf/)",
    )
    p.add_argument(
        "--telemetry-overhead",
        action="store_true",
        help="gate the telemetry cost contract: time the coupled-JSQ cell "
        "with telemetry off and on, fail (exit 1) when the instrumented "
        f"run exceeds {TELEMETRY_OVERHEAD_TOLERANCE}x the zero-overhead "
        "run; on its own it skips the normal cells",
    )
    p.add_argument(
        "--tracing-overhead",
        action="store_true",
        help="gate the tracing cost contract: time the coupled-JSQ cell "
        "with tracing off and with --tracing p99_exemplars, fail (exit 1) "
        f"when the instrumented run exceeds {TRACING_OVERHEAD_TOLERANCE}x "
        "the zero-overhead run; on its own it skips the normal cells",
    )
    p.set_defaults(func=cmd_bench)
