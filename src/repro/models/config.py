"""Model architecture configuration and derived byte/FLOP accounting.

All derived quantities follow the notation of the paper's Appendix A
(Table 2): ``W`` is parameters of one layer, weight bytes are ``2W`` for
fp16, attention data movement is Q/K/V traffic in prefill and KV-cache reads
in decode, and attention compute is the score/value matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a decoder-only transformer with GQA.

    Attributes:
        name: Registry key, e.g. ``"llama2-70b"``.
        num_layers: Decoder layer count ``L``.
        hidden_size: Model width ``h`` (= num_heads * head_dim).
        num_heads: Query head count ``hq``.
        num_kv_heads: KV head count ``hkv`` (GQA; == num_heads for MHA).
        intermediate_size: MLP inner width ``f`` (SwiGLU: three matrices).
        vocab_size: Vocabulary ``V`` for embedding / LM head accounting.
        dtype_bytes: Bytes per element (2 for fp16, the paper's dtype).
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    intermediate_size: int
    vocab_size: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if min(self.num_layers, self.hidden_size, self.num_heads,
               self.num_kv_heads, self.intermediate_size, self.vocab_size) <= 0:
            raise ConfigurationError(f"{self.name}: all dimensions must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigurationError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ConfigurationError(
                f"{self.name}: num_heads {self.num_heads} not divisible by "
                f"num_kv_heads {self.num_kv_heads}"
            )
        if self.dtype_bytes not in (1, 2, 4):
            raise ConfigurationError(f"{self.name}: unsupported dtype_bytes {self.dtype_bytes}")

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #

    @property
    def head_dim(self) -> int:
        """Per-head dimension ``d``."""
        return self.hidden_size // self.num_heads

    # ------------------------------------------------------------------ #
    # Parameter counts
    # ------------------------------------------------------------------ #

    @property
    def layer_params(self) -> int:
        """Parameters ``W`` of one decoder layer.

        Q and O projections are h*h; K and V are h * (hkv * d) each (GQA);
        the SwiGLU MLP has three h*f matrices. Norm weights are negligible
        but included for exactness.
        """
        h, f, d = self.hidden_size, self.intermediate_size, self.head_dim
        attn = h * h + 2 * h * (self.num_kv_heads * d) + h * h
        mlp = 3 * h * f
        norms = 2 * h
        return attn + mlp + norms

    @property
    def embedding_params(self) -> int:
        """Token embedding parameters (V * h)."""
        return self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        """Total parameters: layers + input embedding + LM head."""
        return self.num_layers * self.layer_params + 2 * self.embedding_params

    # ------------------------------------------------------------------ #
    # Byte accounting
    # ------------------------------------------------------------------ #

    @property
    def layer_weight_bytes(self) -> int:
        """Weight bytes of one layer (``2W`` at fp16)."""
        return self.layer_params * self.dtype_bytes

    @property
    def total_weight_bytes(self) -> int:
        """Weight bytes of the whole model, embeddings included."""
        return self.total_params * self.dtype_bytes

    @property
    def kv_bytes_per_token_per_layer(self) -> int:
        """KV-cache bytes one token occupies in one layer (K and V)."""
        return 2 * self.num_kv_heads * self.head_dim * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes one token occupies across all layers."""
        return self.num_layers * self.kv_bytes_per_token_per_layer

    def activation_bytes_per_token(self) -> int:
        """Bytes of one token's residual-stream activation (all-reduced
        tensor size per TP all-reduce, per token)."""
        return self.hidden_size * self.dtype_bytes

    # ------------------------------------------------------------------ #
    # FLOP accounting (per layer; multiply by layer count externally)
    # ------------------------------------------------------------------ #

    def linear_flops_per_token_per_layer(self) -> float:
        """Dense-projection FLOPs for one token in one layer (2 * params)."""
        return 2.0 * self.layer_params

    def attention_flops_prefill_per_layer(self, seq_len: int) -> float:
        """Attention score+value FLOPs to prefill one sequence of
        ``seq_len`` tokens in one layer (causal, hence the 1/2)."""
        d = self.head_dim
        return 2.0 * 2.0 * self.num_heads * d * (seq_len * seq_len) / 2.0

    def attention_flops_decode_per_layer(self, context_len: int) -> float:
        """Attention FLOPs for one new token attending over ``context_len``
        cached tokens in one layer."""
        d = self.head_dim
        return 2.0 * 2.0 * self.num_heads * d * context_len

    def qkv_io_bytes_prefill_per_layer(self, num_tokens: int) -> float:
        """HBM traffic of writing K/V and reading/writing Q,K,V activations
        during prefill (the ``T_attn_dm`` prefill term of Table 3)."""
        d = self.head_dim
        return float(
            num_tokens * (self.num_heads + 2 * self.num_kv_heads) * d * self.dtype_bytes
        )

    def kv_read_bytes_decode_per_layer(self, context_tokens: int) -> float:
        """HBM traffic of reading the KV cache for decode attention over a
        total of ``context_tokens`` cached tokens (summed across the batch)."""
        d = self.head_dim
        return float(2 * context_tokens * self.num_kv_heads * d * self.dtype_bytes)

    def describe(self) -> str:
        """One-line summary with derived totals."""
        return (
            f"{self.name}: L={self.num_layers} h={self.hidden_size} "
            f"hq={self.num_heads} hkv={self.num_kv_heads} f={self.intermediate_size} "
            f"params={self.total_params / 1e9:.2f}B "
            f"kv/token={self.kv_bytes_per_token / 1024:.1f} KiB"
        )
