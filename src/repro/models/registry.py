"""Registry of the model architectures used in the paper's evaluation.

Sources for the configurations:

- ``llama2-13b``: Touvron et al. 2023b (used in the Fig. 1 motivation
  study on 8x L4).
- ``llama3-15b``: the cited ``elinas/Llama-3-15B-Instruct-zeroed``
  checkpoint — a depth-upscale of LLaMA3-8B (same width/GQA, 64 layers,
  which lands at ~15B parameters with the 128k vocabulary).
- ``codellama-34b``: Roziere et al. 2023.
- ``llama2-70b``: Touvron et al. 2023b.

All use fp16 as in the paper.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models.config import ModelConfig

_LLAMA2_13B = ModelConfig(
    name="llama2-13b",
    num_layers=40,
    hidden_size=5120,
    num_heads=40,
    num_kv_heads=40,
    intermediate_size=13824,
    vocab_size=32000,
)

_LLAMA3_15B = ModelConfig(
    name="llama3-15b",
    num_layers=64,
    hidden_size=4096,
    num_heads=32,
    num_kv_heads=8,
    intermediate_size=14336,
    vocab_size=128256,
)

_CODELLAMA_34B = ModelConfig(
    name="codellama-34b",
    num_layers=48,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    intermediate_size=22016,
    vocab_size=32016,
)

_LLAMA2_70B = ModelConfig(
    name="llama2-70b",
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    intermediate_size=28672,
    vocab_size=32000,
)

MODEL_REGISTRY: dict[str, ModelConfig] = {
    m.name: m
    for m in (_LLAMA2_13B, _LLAMA3_15B, _CODELLAMA_34B, _LLAMA2_70B)
}

# Short aliases used throughout the paper's figures ("15b", "34b", "70b").
_ALIASES = {
    "13b": "llama2-13b",
    "15b": "llama3-15b",
    "34b": "codellama-34b",
    "70b": "llama2-70b",
}


def get_model(name: str) -> ModelConfig:
    """Look up a model by registry name or paper alias ('15b', '34b', '70b')."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return MODEL_REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)} "
            f"plus aliases {sorted(_ALIASES)}"
        ) from None


def register_model(config: ModelConfig, overwrite: bool = False) -> None:
    """Add a custom model architecture to the registry."""
    if config.name in MODEL_REGISTRY and not overwrite:
        raise ConfigurationError(f"model {config.name!r} already registered")
    MODEL_REGISTRY[config.name] = config
