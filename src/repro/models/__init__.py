"""Transformer model descriptions and per-layer cost accounting.

Encodes the four models used in the paper's evaluation (LLaMA2-13B for the
Fig. 1 motivation study; the 15B LLaMA3 variant, CodeLLaMA-34B and
LLaMA2-70B for the end-to-end results), plus the arithmetic that the
roofline cost model consumes: parameter counts, weight bytes, KV-cache bytes
per token, and FLOPs for prefill/decode.
"""

from repro.models.config import ModelConfig
from repro.models.registry import MODEL_REGISTRY, get_model, register_model

__all__ = ["ModelConfig", "MODEL_REGISTRY", "get_model", "register_model"]
