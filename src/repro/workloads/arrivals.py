"""Arrival processes: stamping live-traffic arrival times onto workloads.

The offline experiments assume every request exists at t=0; online serving
is characterised by *when* requests show up. This module turns any
existing :class:`~repro.workloads.spec.WorkloadSpec` into an online one by
stamping arrival times from a configurable process:

- ``poisson`` — memoryless arrivals at a target rate (exponential gaps),
  the standard open-loop serving model;
- ``bursty`` — Gamma-distributed inter-arrival gaps whose coefficient of
  variation exceeds 1 (Gamma-modulated Poisson): the same mean rate but
  arrivals clump into bursts, the regime where admission queues actually
  build. ``burstiness`` is the squared coefficient of variation of the
  gaps; 1.0 recovers Poisson exactly.
- ``diurnal:<period>`` — sinusoidal day-shape rate modulation layered on
  top of the Poisson/bursty stampers (:func:`diurnal_arrivals`): the
  instantaneous rate follows ``rate * (1 + amplitude * sin(2*pi*t /
  period))`` while short-range burstiness comes from the base process.
- ``trace:<path>`` — replay recorded timestamps from a JSON or CSV log
  (:func:`trace_arrivals`): production traffic without a parametric
  model. A target ``rate_rps`` rescales the replay to a chosen offered
  rate at the recorded shape.

Stamping preserves request order (request ``i`` gets the ``i``-th arrival),
so a workload's length distribution is independent of its arrival process.
All processes are deterministic per seed.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng
from repro.workloads.spec import WorkloadSpec

ARRIVAL_KINDS = ("poisson", "bursty")
# Prefix forms accepted by make_arrivals / the CLI.
TRACE_PREFIX = "trace:"
DIURNAL_PREFIX = "diurnal:"


def stamp_arrivals(
    base: WorkloadSpec, arrivals: Sequence[float], name: str | None = None
) -> WorkloadSpec:
    """Return ``base`` with the given arrival times stamped on in order."""
    if len(arrivals) != len(base.requests):
        raise ConfigurationError(
            f"{len(arrivals)} arrival times for {len(base.requests)} requests"
        )
    reqs = tuple(
        replace(r, arrival_time=float(t)) for r, t in zip(base.requests, arrivals, strict=True)
    )
    return WorkloadSpec(name=name or base.name, requests=reqs)


def poisson_arrivals(
    base: WorkloadSpec, rate_rps: float, seed: int | None = None
) -> WorkloadSpec:
    """Stamp Poisson arrivals at ``rate_rps`` requests per second."""
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    rng = make_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=len(base.requests))
    return stamp_arrivals(
        base, np.cumsum(gaps), name=f"{base.name}+poisson({rate_rps:g}rps)"
    )


def bursty_arrivals(
    base: WorkloadSpec,
    rate_rps: float,
    burstiness: float = 4.0,
    seed: int | None = None,
) -> WorkloadSpec:
    """Stamp Gamma-modulated bursty arrivals.

    Inter-arrival gaps are Gamma with mean ``1/rate_rps`` and squared
    coefficient of variation ``burstiness`` (shape ``1/burstiness``, scale
    ``burstiness/rate_rps``). Larger values clump arrivals harder at the
    same mean rate; ``burstiness=1`` is exactly Poisson.
    """
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if burstiness <= 0:
        raise ConfigurationError("burstiness must be positive")
    rng = make_rng(seed)
    shape = 1.0 / burstiness
    scale = burstiness / rate_rps
    gaps = rng.gamma(shape, scale, size=len(base.requests))
    return stamp_arrivals(
        base,
        np.cumsum(gaps),
        name=f"{base.name}+bursty({rate_rps:g}rps,cv2={burstiness:g})",
    )


def diurnal_arrivals(
    base: WorkloadSpec,
    rate_rps: float,
    period_s: float,
    *,
    amplitude: float = 0.8,
    burstiness: float = 1.0,
    seed: int | None = None,
) -> WorkloadSpec:
    """Stamp arrivals whose long-run rate follows a sinusoidal day-shape.

    The instantaneous intensity is ``lambda(t) = rate_rps * (1 +
    amplitude * sin(2*pi*t / period_s))``. Implemented as an inverse
    time-warp of a stationary stamper at the same mean rate: the base
    process (Poisson, or Gamma-bursty when ``burstiness > 1``) supplies
    cumulative arrivals, and each is mapped through the inverse of the
    cumulative intensity ``Lambda(t)``, so short-range burstiness
    survives while the day curve shapes the long run. ``amplitude`` must
    be in ``[0, 1)`` so the intensity stays positive (0 recovers the base
    process up to the warp's identity).
    """
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if period_s <= 0:
        raise ConfigurationError("diurnal period must be positive")
    if not 0 <= amplitude < 1:
        raise ConfigurationError("diurnal amplitude must be in [0, 1)")
    if burstiness <= 0:
        raise ConfigurationError("burstiness must be positive")
    if burstiness == 1.0:
        stationary = poisson_arrivals(base, rate_rps, seed=seed)
    else:
        stationary = bursty_arrivals(
            base, rate_rps, burstiness=burstiness, seed=seed
        )
    omega = 2.0 * math.pi / period_s

    def cumulative(t: float) -> float:
        # Integral of lambda(t): rate * (t + amp/omega * (1 - cos(omega t))).
        return rate_rps * (t + amplitude / omega * (1.0 - math.cos(omega * t)))

    def invert(target: float) -> float:
        # Lambda is strictly increasing (amplitude < 1); bisect it.
        lo, hi = 0.0, target / rate_rps + period_s
        while cumulative(hi) < target:
            hi += period_s
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if cumulative(mid) < target:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    warped = [invert(cumulative_units)
              for cumulative_units in
              (rate_rps * r.arrival_time for r in stationary.requests)]
    return stamp_arrivals(
        base,
        warped,
        name=(
            f"{base.name}+diurnal({rate_rps:g}rps,T={period_s:g}s,"
            f"a={amplitude:g})"
        ),
    )


def _load_trace_timestamps(path: str | Path) -> list[float]:
    """Parse arrival timestamps from a JSON or CSV log file.

    JSON accepts a bare list of numbers, a list of objects carrying an
    ``arrival_time``/``timestamp`` key, or ``{"arrivals": [...]}``. Any
    other suffix is parsed as CSV with the timestamp in the first column
    (a single non-numeric header row is tolerated).
    """
    p = Path(path)
    if not p.is_file():
        raise ConfigurationError(f"arrival trace {str(p)!r} does not exist")
    raw: list[object]
    if p.suffix.lower() == ".json":
        try:
            data = json.loads(p.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"arrival trace {p.name}: invalid JSON ({exc})"
            ) from exc
        if isinstance(data, dict):
            data = data.get("arrivals")
            if data is None:
                raise ConfigurationError(
                    f"arrival trace {p.name}: JSON object needs an 'arrivals' key"
                )
        if not isinstance(data, list):
            raise ConfigurationError(
                f"arrival trace {p.name}: expected a list of timestamps"
            )
        raw = [
            d.get("arrival_time", d.get("timestamp")) if isinstance(d, dict) else d
            for d in data
        ]
    else:
        with p.open(newline="") as fh:
            rows = [row for row in csv.reader(fh) if row and row[0].strip()]
        if rows:
            try:
                float(rows[0][0])
            except ValueError:
                rows = rows[1:]  # header row
        raw = [row[0] for row in rows]
    timestamps: list[float] = []
    for i, value in enumerate(raw):
        try:
            t = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"arrival trace {p.name}: entry {i} ({value!r}) is not a timestamp"
            ) from None
        if not math.isfinite(t):
            raise ConfigurationError(
                f"arrival trace {p.name}: entry {i} is not finite"
            )
        timestamps.append(t)
    if not timestamps:
        raise ConfigurationError(f"arrival trace {p.name} holds no timestamps")
    return timestamps


def trace_arrivals(
    base: WorkloadSpec,
    path: str | Path,
    name: str | None = None,
    rate_rps: float | None = None,
) -> WorkloadSpec:
    """Replay recorded arrival timestamps onto ``base``.

    Timestamps are sorted and shifted so the earliest arrival lands at
    t=0 (logs usually carry absolute epochs); request ``i`` gets the
    ``i``-th arrival, as with the parametric stampers. The trace must hold
    at least one timestamp per request — extra trailing timestamps are
    ignored so one production log can drive workloads of any smaller size.

    ``rate_rps`` rescales the replayed timeline linearly so the replay's
    offered rate (requests / span) hits the target while keeping the
    recorded *shape* — the knob that lets one production log sweep a
    load-latency curve.
    """
    timestamps = _load_trace_timestamps(path)
    if len(timestamps) < base.num_requests:
        raise ConfigurationError(
            f"arrival trace {Path(path).name} holds {len(timestamps)} "
            f"timestamps for {base.num_requests} requests"
        )
    stamps = sorted(timestamps)[: base.num_requests]
    origin = stamps[0]
    shifted = [t - origin for t in stamps]
    label = f"{base.name}+trace({Path(path).name})"
    if rate_rps is not None:
        if rate_rps <= 0:
            raise ConfigurationError("trace rescale rate must be positive")
        span = shifted[-1]
        if span <= 0:
            raise ConfigurationError(
                f"arrival trace {Path(path).name} has no time span to "
                "rescale (all timestamps coincide)"
            )
        recorded_rate = len(shifted) / span
        scale = recorded_rate / rate_rps
        shifted = [t * scale for t in shifted]
        label = f"{label}@{rate_rps:g}rps"
    return stamp_arrivals(base, shifted, name=name or label)


def make_arrivals(
    base: WorkloadSpec,
    kind: str,
    rate_rps: float = 0.0,
    *,
    burstiness: float = 4.0,
    seed: int | None = None,
) -> WorkloadSpec:
    """Dispatch by process name (the CLI's ``--arrival`` values).

    ``kind`` is one of :data:`ARRIVAL_KINDS` (which consume ``rate_rps``),
    ``diurnal:<period>`` (sinusoidal day-shape at mean ``rate_rps``; a
    ``burstiness`` above 1 rides the bursty stamper underneath), or
    ``trace:<path>`` (which replays the log — at its recorded rate when
    ``rate_rps`` is 0, rescaled to ``rate_rps`` otherwise).
    """
    if kind.startswith(TRACE_PREFIX):
        path = kind[len(TRACE_PREFIX):]
        if not path:
            raise ConfigurationError("trace arrival needs a path: trace:<path>")
        return trace_arrivals(
            base, path, rate_rps=rate_rps if rate_rps > 0 else None
        )
    if kind.startswith(DIURNAL_PREFIX):
        spec = kind[len(DIURNAL_PREFIX):]
        try:
            period = float(spec)
        except ValueError:
            raise ConfigurationError(
                f"malformed diurnal arrival {kind!r}: expected "
                f"{DIURNAL_PREFIX}<period-seconds>"
            ) from None
        return diurnal_arrivals(
            base, rate_rps, period, burstiness=burstiness, seed=seed
        )
    if kind == "poisson":
        return poisson_arrivals(base, rate_rps, seed=seed)
    if kind == "bursty":
        return bursty_arrivals(base, rate_rps, burstiness=burstiness, seed=seed)
    raise ConfigurationError(
        f"unknown arrival process {kind!r}; one of {ARRIVAL_KINDS}, "
        f"{DIURNAL_PREFIX}<period>, or {TRACE_PREFIX}<path>"
    )


def offered_rate(workload: WorkloadSpec) -> float:
    """Empirical request rate of a stamped workload (requests / span)."""
    arrivals = [r.arrival_time for r in workload.requests]
    if not arrivals:
        raise ConfigurationError(
            "cannot compute the offered rate of an empty workload"
        )
    span = max(arrivals)
    if span <= 0:
        raise ConfigurationError("workload has no arrival span (offline?)")
    return len(arrivals) / span
