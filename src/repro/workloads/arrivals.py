"""Arrival processes: stamping live-traffic arrival times onto workloads.

The offline experiments assume every request exists at t=0; online serving
is characterised by *when* requests show up. This module turns any
existing :class:`~repro.workloads.spec.WorkloadSpec` into an online one by
stamping arrival times from a configurable process:

- ``poisson`` — memoryless arrivals at a target rate (exponential gaps),
  the standard open-loop serving model;
- ``bursty`` — Gamma-distributed inter-arrival gaps whose coefficient of
  variation exceeds 1 (Gamma-modulated Poisson): the same mean rate but
  arrivals clump into bursts, the regime where admission queues actually
  build. ``burstiness`` is the squared coefficient of variation of the
  gaps; 1.0 recovers Poisson exactly.
- ``trace:<path>`` — replay recorded timestamps from a JSON or CSV log
  (:func:`trace_arrivals`): production traffic without a parametric model.

Stamping preserves request order (request ``i`` gets the ``i``-th arrival),
so a workload's length distribution is independent of its arrival process.
All processes are deterministic per seed.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng
from repro.workloads.spec import WorkloadSpec

ARRIVAL_KINDS = ("poisson", "bursty")
# Prefix form accepted by make_arrivals / the CLI: ``trace:<path>``.
TRACE_PREFIX = "trace:"


def stamp_arrivals(
    base: WorkloadSpec, arrivals: Sequence[float], name: str | None = None
) -> WorkloadSpec:
    """Return ``base`` with the given arrival times stamped on in order."""
    if len(arrivals) != len(base.requests):
        raise ConfigurationError(
            f"{len(arrivals)} arrival times for {len(base.requests)} requests"
        )
    reqs = tuple(
        replace(r, arrival_time=float(t)) for r, t in zip(base.requests, arrivals)
    )
    return WorkloadSpec(name=name or base.name, requests=reqs)


def poisson_arrivals(
    base: WorkloadSpec, rate_rps: float, seed: int | None = None
) -> WorkloadSpec:
    """Stamp Poisson arrivals at ``rate_rps`` requests per second."""
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    rng = make_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=len(base.requests))
    return stamp_arrivals(
        base, np.cumsum(gaps), name=f"{base.name}+poisson({rate_rps:g}rps)"
    )


def bursty_arrivals(
    base: WorkloadSpec,
    rate_rps: float,
    burstiness: float = 4.0,
    seed: int | None = None,
) -> WorkloadSpec:
    """Stamp Gamma-modulated bursty arrivals.

    Inter-arrival gaps are Gamma with mean ``1/rate_rps`` and squared
    coefficient of variation ``burstiness`` (shape ``1/burstiness``, scale
    ``burstiness/rate_rps``). Larger values clump arrivals harder at the
    same mean rate; ``burstiness=1`` is exactly Poisson.
    """
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if burstiness <= 0:
        raise ConfigurationError("burstiness must be positive")
    rng = make_rng(seed)
    shape = 1.0 / burstiness
    scale = burstiness / rate_rps
    gaps = rng.gamma(shape, scale, size=len(base.requests))
    return stamp_arrivals(
        base,
        np.cumsum(gaps),
        name=f"{base.name}+bursty({rate_rps:g}rps,cv2={burstiness:g})",
    )


def _load_trace_timestamps(path: str | Path) -> list[float]:
    """Parse arrival timestamps from a JSON or CSV log file.

    JSON accepts a bare list of numbers, a list of objects carrying an
    ``arrival_time``/``timestamp`` key, or ``{"arrivals": [...]}``. Any
    other suffix is parsed as CSV with the timestamp in the first column
    (a single non-numeric header row is tolerated).
    """
    p = Path(path)
    if not p.is_file():
        raise ConfigurationError(f"arrival trace {str(p)!r} does not exist")
    raw: list[object]
    if p.suffix.lower() == ".json":
        try:
            data = json.loads(p.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"arrival trace {p.name}: invalid JSON ({exc})")
        if isinstance(data, dict):
            data = data.get("arrivals")
            if data is None:
                raise ConfigurationError(
                    f"arrival trace {p.name}: JSON object needs an 'arrivals' key"
                )
        if not isinstance(data, list):
            raise ConfigurationError(
                f"arrival trace {p.name}: expected a list of timestamps"
            )
        raw = [
            d.get("arrival_time", d.get("timestamp")) if isinstance(d, dict) else d
            for d in data
        ]
    else:
        with p.open(newline="") as fh:
            rows = [row for row in csv.reader(fh) if row and row[0].strip()]
        if rows:
            try:
                float(rows[0][0])
            except ValueError:
                rows = rows[1:]  # header row
        raw = [row[0] for row in rows]
    timestamps: list[float] = []
    for i, value in enumerate(raw):
        try:
            t = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"arrival trace {p.name}: entry {i} ({value!r}) is not a timestamp"
            ) from None
        if not math.isfinite(t):
            raise ConfigurationError(
                f"arrival trace {p.name}: entry {i} is not finite"
            )
        timestamps.append(t)
    if not timestamps:
        raise ConfigurationError(f"arrival trace {p.name} holds no timestamps")
    return timestamps


def trace_arrivals(
    base: WorkloadSpec, path: str | Path, name: str | None = None
) -> WorkloadSpec:
    """Replay recorded arrival timestamps onto ``base``.

    Timestamps are sorted and shifted so the earliest arrival lands at
    t=0 (logs usually carry absolute epochs); request ``i`` gets the
    ``i``-th arrival, as with the parametric stampers. The trace must hold
    at least one timestamp per request — extra trailing timestamps are
    ignored so one production log can drive workloads of any smaller size.
    """
    timestamps = _load_trace_timestamps(path)
    if len(timestamps) < base.num_requests:
        raise ConfigurationError(
            f"arrival trace {Path(path).name} holds {len(timestamps)} "
            f"timestamps for {base.num_requests} requests"
        )
    stamps = sorted(timestamps)[: base.num_requests]
    origin = stamps[0]
    return stamp_arrivals(
        base,
        [t - origin for t in stamps],
        name=name or f"{base.name}+trace({Path(path).name})",
    )


def make_arrivals(
    base: WorkloadSpec,
    kind: str,
    rate_rps: float = 0.0,
    *,
    burstiness: float = 4.0,
    seed: int | None = None,
) -> WorkloadSpec:
    """Dispatch by process name (the CLI's ``--arrival`` values).

    ``kind`` is one of :data:`ARRIVAL_KINDS` (which consume ``rate_rps``)
    or ``trace:<path>`` (which replays the log and ignores the rate).
    """
    if kind.startswith(TRACE_PREFIX):
        path = kind[len(TRACE_PREFIX):]
        if not path:
            raise ConfigurationError("trace arrival needs a path: trace:<path>")
        return trace_arrivals(base, path)
    if kind == "poisson":
        return poisson_arrivals(base, rate_rps, seed=seed)
    if kind == "bursty":
        return bursty_arrivals(base, rate_rps, burstiness=burstiness, seed=seed)
    raise ConfigurationError(
        f"unknown arrival process {kind!r}; one of {ARRIVAL_KINDS} "
        f"or {TRACE_PREFIX}<path>"
    )


def offered_rate(workload: WorkloadSpec) -> float:
    """Empirical request rate of a stamped workload (requests / span)."""
    arrivals = [r.arrival_time for r in workload.requests]
    if not arrivals:
        raise ConfigurationError(
            "cannot compute the offered rate of an empty workload"
        )
    span = max(arrivals)
    if span <= 0:
        raise ConfigurationError("workload has no arrival span (offline?)")
    return len(arrivals) / span
