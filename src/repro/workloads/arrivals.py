"""Arrival processes: stamping live-traffic arrival times onto workloads.

The offline experiments assume every request exists at t=0; online serving
is characterised by *when* requests show up. This module turns any
existing :class:`~repro.workloads.spec.WorkloadSpec` into an online one by
stamping arrival times from a configurable process:

- ``poisson`` — memoryless arrivals at a target rate (exponential gaps),
  the standard open-loop serving model;
- ``bursty`` — Gamma-distributed inter-arrival gaps whose coefficient of
  variation exceeds 1 (Gamma-modulated Poisson): the same mean rate but
  arrivals clump into bursts, the regime where admission queues actually
  build. ``burstiness`` is the squared coefficient of variation of the
  gaps; 1.0 recovers Poisson exactly.

Stamping preserves request order (request ``i`` gets the ``i``-th arrival),
so a workload's length distribution is independent of its arrival process.
All processes are deterministic per seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng
from repro.workloads.spec import WorkloadSpec

ARRIVAL_KINDS = ("poisson", "bursty")


def stamp_arrivals(
    base: WorkloadSpec, arrivals: Sequence[float], name: str | None = None
) -> WorkloadSpec:
    """Return ``base`` with the given arrival times stamped on in order."""
    if len(arrivals) != len(base.requests):
        raise ConfigurationError(
            f"{len(arrivals)} arrival times for {len(base.requests)} requests"
        )
    reqs = tuple(
        replace(r, arrival_time=float(t)) for r, t in zip(base.requests, arrivals)
    )
    return WorkloadSpec(name=name or base.name, requests=reqs)


def poisson_arrivals(
    base: WorkloadSpec, rate_rps: float, seed: int | None = None
) -> WorkloadSpec:
    """Stamp Poisson arrivals at ``rate_rps`` requests per second."""
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    rng = make_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=len(base.requests))
    return stamp_arrivals(
        base, np.cumsum(gaps), name=f"{base.name}+poisson({rate_rps:g}rps)"
    )


def bursty_arrivals(
    base: WorkloadSpec,
    rate_rps: float,
    burstiness: float = 4.0,
    seed: int | None = None,
) -> WorkloadSpec:
    """Stamp Gamma-modulated bursty arrivals.

    Inter-arrival gaps are Gamma with mean ``1/rate_rps`` and squared
    coefficient of variation ``burstiness`` (shape ``1/burstiness``, scale
    ``burstiness/rate_rps``). Larger values clump arrivals harder at the
    same mean rate; ``burstiness=1`` is exactly Poisson.
    """
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if burstiness <= 0:
        raise ConfigurationError("burstiness must be positive")
    rng = make_rng(seed)
    shape = 1.0 / burstiness
    scale = burstiness / rate_rps
    gaps = rng.gamma(shape, scale, size=len(base.requests))
    return stamp_arrivals(
        base,
        np.cumsum(gaps),
        name=f"{base.name}+bursty({rate_rps:g}rps,cv2={burstiness:g})",
    )


def make_arrivals(
    base: WorkloadSpec,
    kind: str,
    rate_rps: float,
    *,
    burstiness: float = 4.0,
    seed: int | None = None,
) -> WorkloadSpec:
    """Dispatch by process name (the CLI's ``--arrival`` values)."""
    if kind == "poisson":
        return poisson_arrivals(base, rate_rps, seed=seed)
    if kind == "bursty":
        return bursty_arrivals(base, rate_rps, burstiness=burstiness, seed=seed)
    raise ConfigurationError(
        f"unknown arrival process {kind!r}; one of {ARRIVAL_KINDS}"
    )


def offered_rate(workload: WorkloadSpec) -> float:
    """Empirical request rate of a stamped workload (requests / span)."""
    arrivals = [r.arrival_time for r in workload.requests]
    span = max(arrivals)
    if span <= 0:
        raise ConfigurationError("workload has no arrival span (offline?)")
    return len(arrivals) / span
