"""Dataset-shaped samplers for the paper's two evaluation workloads.

The engines only consume (prompt_len, output_len) pairs, so what matters is
the length distribution, not token identity. The samplers below are
lognormal fits to the published histograms (Fig. 9):

- ``sharegpt``: chat history; inputs and outputs of comparable length, both
  with medians of a few hundred tokens and heavy right tails. The paper
  samples 2000 requests.
- ``arxiv-summarization``: document summarization; inputs of a few thousand
  tokens, outputs (abstract-length) around two hundred. The paper samples
  500 requests.

The resulting D:P ratios — sharegpt near 1, arxiv well under 0.1 — are the
property that drives the differing optimal parallelism configurations in
the end-to-end results.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.request import Request
from repro.utils.rng import make_rng
from repro.workloads.spec import WorkloadSpec


def _lognormal_lengths(
    rng: np.random.Generator,
    n: int,
    median: float,
    sigma: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Sample integer lengths from a clipped lognormal with given median."""
    mu = np.log(median)
    raw = rng.lognormal(mean=mu, sigma=sigma, size=n)
    return np.clip(np.round(raw), lo, hi).astype(int)


def sharegpt_workload(
    num_requests: int = 2000, seed: int | None = None
) -> WorkloadSpec:
    """ShareGPT-like chat workload (Fig. 9b).

    Inputs: median ~250 tokens, sigma 1.0 (long conversational tails, capped
    at the 4k context the paper's models serve). Outputs: median ~200,
    sigma 0.85. Both distributions are visibly heavy-tailed in the paper's
    histogram, and input/output lengths are mildly positively correlated in
    chat data — we sample the output with a shared latent factor.
    """
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    rng = make_rng(seed)
    inputs = _lognormal_lengths(rng, num_requests, median=250, sigma=1.0, lo=4, hi=4096)
    # Shared latent: longer conversations tend to elicit longer replies.
    latent = rng.normal(size=num_requests)
    out_raw = np.exp(np.log(200) + 0.85 * (0.3 * latent + 0.7 * rng.normal(size=num_requests)))
    outputs = np.clip(np.round(out_raw), 4, 2048).astype(int)
    reqs = tuple(
        Request(request_id=i, prompt_len=int(p), output_len=int(o))
        for i, (p, o) in enumerate(zip(inputs, outputs, strict=True))
    )
    return WorkloadSpec(name="sharegpt", requests=reqs)


def arxiv_workload(num_requests: int = 500, seed: int | None = None) -> WorkloadSpec:
    """arxiv-summarization-like workload (Fig. 9a).

    Inputs: document bodies, median ~2800 tokens with moderate spread,
    capped at 6k. Outputs: abstract-length summaries, median ~180 tokens.
    """
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    rng = make_rng(seed)
    inputs = _lognormal_lengths(
        rng, num_requests, median=2800, sigma=0.40, lo=512, hi=6144
    )
    outputs = _lognormal_lengths(
        rng, num_requests, median=180, sigma=0.45, lo=32, hi=640
    )
    reqs = tuple(
        Request(request_id=i, prompt_len=int(p), output_len=int(o))
        for i, (p, o) in enumerate(zip(inputs, outputs, strict=True))
    )
    return WorkloadSpec(name="arxiv-summarization", requests=reqs)


DATASET_SAMPLERS: dict[str, Callable[..., WorkloadSpec]] = {
    "sharegpt": sharegpt_workload,
    "arxiv": arxiv_workload,
    "arxiv-summarization": arxiv_workload,
}


def sample_dataset(
    name: str, num_requests: int | None = None, seed: int | None = None
) -> WorkloadSpec:
    """Sample a named dataset workload at the paper's default sizes."""
    key = name.lower()
    if key not in DATASET_SAMPLERS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known: {sorted(DATASET_SAMPLERS)}"
        )
    sampler = DATASET_SAMPLERS[key]
    if num_requests is None:
        num_requests = 2000 if key == "sharegpt" else 500
    return sampler(num_requests=num_requests, seed=seed)
