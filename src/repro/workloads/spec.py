"""Workload containers and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.request import Request


@dataclass(frozen=True)
class WorkloadSpec:
    """A named batch of offline inference requests."""

    name: str
    requests: tuple[Request, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ConfigurationError(f"workload {self.name!r} has no requests")

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def total_input_tokens(self) -> int:
        return sum(r.prompt_len for r in self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_len for r in self.requests)

    @property
    def decode_prefill_ratio(self) -> float:
        """The paper's D:P ratio — output tokens per input token."""
        return self.total_output_tokens / self.total_input_tokens

    def subset(self, n: int) -> "WorkloadSpec":
        """First ``n`` requests (for scaled-down benchmark runs).

        Arrival-stamped workloads have their subset arrivals time-rescaled
        so the offered request rate of the subset equals the full
        workload's: a raw prefix keeps the original timestamps, whose span
        can misstate the offered load (badly so for bursty processes),
        which would mistune anything that simulates the subsample
        (``simulate_top``, ``tune_chunk_size``). Offline workloads (every
        arrival at 0) pass through unchanged.
        """
        if n < 1:
            raise ConfigurationError("subset size must be >= 1")
        head = self.requests[:n]
        name = f"{self.name}[:{n}]"
        full_span = max(r.arrival_time for r in self.requests)
        if full_span <= 0:
            return WorkloadSpec(name=name, requests=head)
        # Preserve the offered rate exactly: n requests over n/rate seconds.
        target_span = len(head) * full_span / self.num_requests
        raw_span = max(r.arrival_time for r in head)
        if raw_span > 0:
            scale = target_span / raw_span
            stamped = tuple(
                replace(r, arrival_time=r.arrival_time * scale) for r in head
            )
        else:
            # The prefix is a t=0 burst of an otherwise-online workload;
            # spread it evenly at the full workload's offered rate.
            gap = target_span / len(head)
            stamped = tuple(
                replace(r, arrival_time=(i + 1) * gap)
                for i, r in enumerate(head)
            )
        return WorkloadSpec(name=name, requests=stamped)


@dataclass(frozen=True)
class WorkloadStats:
    """Length-distribution summary, matching what Fig. 9 plots."""

    name: str
    num_requests: int
    input_mean: float
    input_p50: float
    input_p90: float
    input_max: int
    output_mean: float
    output_p50: float
    output_p90: float
    output_max: int
    decode_prefill_ratio: float


def workload_stats(workload: WorkloadSpec) -> WorkloadStats:
    """Compute the Fig. 9-style length statistics of a workload."""
    ins = np.array([r.prompt_len for r in workload.requests], dtype=float)
    outs = np.array([r.output_len for r in workload.requests], dtype=float)
    return WorkloadStats(
        name=workload.name,
        num_requests=workload.num_requests,
        input_mean=float(ins.mean()),
        input_p50=float(np.percentile(ins, 50)),
        input_p90=float(np.percentile(ins, 90)),
        input_max=int(ins.max()),
        output_mean=float(outs.mean()),
        output_p50=float(np.percentile(outs, 50)),
        output_p90=float(np.percentile(outs, 90)),
        output_max=int(outs.max()),
        decode_prefill_ratio=workload.decode_prefill_ratio,
    )
