"""Synthetic workloads for controlled sweeps.

``ratio_workload`` reproduces the Fig. 13 setup: uniform input length
(3000 in the paper) with the output length chosen to hit a target D:P
ratio; ``constant_workload`` and ``uniform_workload`` are general-purpose
building blocks used throughout the tests.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.runtime.request import Request
from repro.utils.rng import make_rng
from repro.workloads.spec import WorkloadSpec


def constant_workload(
    num_requests: int,
    prompt_len: int,
    output_len: int,
    name: str | None = None,
) -> WorkloadSpec:
    """All requests identical — the paper's 'constant-length' workloads."""
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    reqs = tuple(
        Request(request_id=i, prompt_len=prompt_len, output_len=output_len)
        for i in range(num_requests)
    )
    return WorkloadSpec(
        name=name or f"const(p={prompt_len},d={output_len})", requests=reqs
    )


def uniform_workload(
    num_requests: int,
    prompt_range: tuple[int, int],
    output_range: tuple[int, int],
    seed: int | None = None,
    name: str | None = None,
) -> WorkloadSpec:
    """Independent uniform prompt/output lengths."""
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    lo_p, hi_p = prompt_range
    lo_o, hi_o = output_range
    if lo_p < 1 or lo_p > hi_p or lo_o < 1 or lo_o > hi_o:
        raise ConfigurationError("invalid length ranges")
    rng = make_rng(seed)
    prompts = rng.integers(lo_p, hi_p + 1, size=num_requests)
    outputs = rng.integers(lo_o, hi_o + 1, size=num_requests)
    reqs = tuple(
        Request(request_id=i, prompt_len=int(p), output_len=int(o))
        for i, (p, o) in enumerate(zip(prompts, outputs, strict=True))
    )
    return WorkloadSpec(name=name or "uniform", requests=reqs)


def bimodal_workload(
    num_requests: int,
    long_prompt: int = 6144,
    short_prompt: int = 256,
    output_len: int = 16,
    period: int = 2,
    name: str | None = None,
) -> WorkloadSpec:
    """Long prompts every ``period``-th request, short ones otherwise.

    The adversarial shape for static round-robin DP partitioning: with the
    default ``period=2`` every long prompt has the same submission-index
    parity, so a 2-replica round-robin deal sends *all* of them to one
    replica while the other idles — the load-imbalance failure mode the
    routing subsystem's dynamic policies exist to fix.
    """
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    if period < 1:
        raise ConfigurationError("period must be >= 1")
    if long_prompt < 1 or short_prompt < 1 or output_len < 1:
        raise ConfigurationError("lengths must be >= 1")
    reqs = tuple(
        Request(
            request_id=i,
            prompt_len=long_prompt if i % period == 0 else short_prompt,
            output_len=output_len,
        )
        for i in range(num_requests)
    )
    return WorkloadSpec(
        name=name or f"bimodal(p={long_prompt}|{short_prompt},d={output_len})",
        requests=reqs,
    )


def ratio_workload(
    num_requests: int,
    dp_ratio: float,
    prompt_len: int = 3000,
    name: str | None = None,
) -> WorkloadSpec:
    """Fixed prompt length, output length = ratio * prompt (Fig. 13).

    The paper fixes input at 3000 tokens and sweeps the output length; a
    ratio of 0 degenerates to prefill-only (output_len 1, the first token
    produced by the prefill pass).
    """
    if dp_ratio < 0:
        raise ConfigurationError("dp_ratio must be >= 0")
    output_len = max(1, int(round(dp_ratio * prompt_len)))
    return constant_workload(
        num_requests,
        prompt_len,
        output_len,
        name=name or f"ratio(D:P={dp_ratio:g})",
    )


def poisson_arrival_workload(
    base: WorkloadSpec,
    rate_rps: float,
    seed: int | None = None,
) -> WorkloadSpec:
    """Attach Poisson arrival times to an existing workload.

    Kept as an alias of :func:`repro.workloads.arrivals.poisson_arrivals`
    for callers that predate the arrivals module.
    """
    from repro.workloads.arrivals import poisson_arrivals

    return poisson_arrivals(base, rate_rps, seed=seed)
