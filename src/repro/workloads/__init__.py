"""Workload generation: dataset-shaped samplers and synthetic sweeps.

The paper evaluates on two datasets with opposite shapes (Fig. 9):
``sharegpt`` (chat — inputs and outputs of comparable length) and
``arxiv-summarization`` (long inputs, short outputs), plus constant-length
synthetic workloads for the sensitivity studies (Fig. 13). Without network
access we sample from distributions fitted to the published histograms; the
engines only consume (prompt_len, output_len) pairs, so distribution shape
is the operative property.
"""

from repro.workloads.spec import WorkloadSpec, workload_stats, WorkloadStats
from repro.workloads.synthetic import (
    bimodal_workload,
    constant_workload,
    uniform_workload,
    ratio_workload,
)
from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    bursty_arrivals,
    make_arrivals,
    offered_rate,
    poisson_arrivals,
    stamp_arrivals,
    trace_arrivals,
)
from repro.workloads.datasets import (
    sharegpt_workload,
    arxiv_workload,
    DATASET_SAMPLERS,
    sample_dataset,
)

__all__ = [
    "WorkloadSpec",
    "WorkloadStats",
    "workload_stats",
    "bimodal_workload",
    "constant_workload",
    "uniform_workload",
    "ratio_workload",
    "ARRIVAL_KINDS",
    "poisson_arrivals",
    "bursty_arrivals",
    "make_arrivals",
    "stamp_arrivals",
    "trace_arrivals",
    "offered_rate",
    "sharegpt_workload",
    "arxiv_workload",
    "DATASET_SAMPLERS",
    "sample_dataset",
]
