"""Hardware models: GPUs, interconnects, clusters.

This subpackage encodes the performance-relevant characteristics of the
paper's testbeds (Table 1): memory capacity, HBM bandwidth, peak FLOPS, and
the interconnect (PCIe 4.0 x8 vs NVLink). All simulation-time costs are
derived from these numbers through the cost model in :mod:`repro.costmodel`.
"""

from repro.hardware.gpu import GPUSpec, GPU_REGISTRY, get_gpu, register_gpu
from repro.hardware.interconnect import (
    Interconnect,
    PCIE_4_X8,
    PCIE_4_X16,
    NVLINK_A100,
    allreduce_time,
    p2p_time,
)
from repro.hardware.cluster import ClusterSpec

__all__ = [
    "GPUSpec",
    "GPU_REGISTRY",
    "get_gpu",
    "register_gpu",
    "Interconnect",
    "PCIE_4_X8",
    "PCIE_4_X16",
    "NVLINK_A100",
    "allreduce_time",
    "p2p_time",
    "ClusterSpec",
]
