"""GPU specifications and the device registry.

The registry is seeded with the three GPUs from Table 1 of the paper
(A10, L4, A100) plus the PCIe variant of the A100 used in Fig. 11. Peak
numbers come straight from the table; the ``*_efficiency`` fields are the
attainable fractions of peak used by the roofline model (real kernels do not
hit datasheet peaks; vendor-quoted dense fp16 FLOPS are typically achieved
at 40-70% in transformer GEMMs, and HBM streams at ~75-85% of peak).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.utils.units import GIB, GB


@dataclass(frozen=True)
class GPUSpec:
    """Performance-relevant description of one GPU model.

    Attributes:
        name: Registry key, e.g. ``"A10"``.
        memory_bytes: Usable device memory.
        hbm_bandwidth: Peak device-memory bandwidth in bytes/s.
        flops: Peak dense fp16 throughput in FLOP/s.
        has_nvlink: Whether GPUs of this model in the target node are
            connected by NVLink (otherwise PCIe only).
        compute_efficiency: Attainable fraction of peak FLOPS for large
            GEMMs (prefill-like shapes).
        bandwidth_efficiency: Attainable fraction of peak HBM bandwidth for
            streaming reads (weight/KV loading).
        kernel_overhead: Fixed per-layer, per-forward-pass overhead in
            seconds (kernel launches, small non-GEMM ops).
    """

    name: str
    memory_bytes: int
    hbm_bandwidth: float
    flops: float
    has_nvlink: bool
    compute_efficiency: float = 0.55
    bandwidth_efficiency: float = 0.80
    kernel_overhead: float = 25e-6

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError(f"{self.name}: memory_bytes must be positive")
        if self.hbm_bandwidth <= 0 or self.flops <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth and flops must be positive")
        if not (0 < self.compute_efficiency <= 1 and 0 < self.bandwidth_efficiency <= 1):
            raise ConfigurationError(f"{self.name}: efficiencies must be in (0, 1]")

    @property
    def effective_flops(self) -> float:
        """Attainable FLOP/s for large GEMMs."""
        return self.flops * self.compute_efficiency

    @property
    def effective_bandwidth(self) -> float:
        """Attainable HBM bytes/s for streaming access."""
        return self.hbm_bandwidth * self.bandwidth_efficiency

    def with_overrides(self, **kwargs: object) -> "GPUSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


# Table 1 of the paper. FLOPS are the fp16 tensor-core numbers the paper
# quotes (A10 125T, L4 121T, A100 312T); memory bandwidths likewise.
_A10 = GPUSpec(
    name="A10",
    memory_bytes=24 * GIB,
    hbm_bandwidth=600 * GB,
    flops=125e12,
    has_nvlink=False,
)

_L4 = GPUSpec(
    name="L4",
    memory_bytes=24 * GIB,
    hbm_bandwidth=300 * GB,
    flops=121e12,
    has_nvlink=False,
)

_A100_SXM = GPUSpec(
    name="A100-SXM",
    memory_bytes=40 * GIB,
    hbm_bandwidth=1555 * GB,
    flops=312e12,
    has_nvlink=True,
)

_A100_PCIE = GPUSpec(
    name="A100-PCIE",
    memory_bytes=40 * GIB,
    hbm_bandwidth=1555 * GB,
    flops=312e12,
    has_nvlink=False,
)

GPU_REGISTRY: dict[str, GPUSpec] = {
    g.name: g for g in (_A10, _L4, _A100_SXM, _A100_PCIE)
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    key = name.upper()
    for reg_name, spec in GPU_REGISTRY.items():
        if reg_name.upper() == key:
            return spec
    raise ConfigurationError(
        f"unknown GPU {name!r}; known: {sorted(GPU_REGISTRY)}"
    )


def register_gpu(spec: GPUSpec, overwrite: bool = False) -> None:
    """Add a custom GPU spec to the registry."""
    if spec.name in GPU_REGISTRY and not overwrite:
        raise ConfigurationError(f"GPU {spec.name!r} already registered")
    GPU_REGISTRY[spec.name] = spec
