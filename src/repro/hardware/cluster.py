"""Cluster specification: N GPUs + fabric + host memory.

A :class:`ClusterSpec` corresponds to one testbed row in the paper's
evaluation, e.g. "eight A10s on g5.48xlarge with 80 GiB of CPU memory per
GPU, PCIe 4.0 x8". Convenience constructors build the exact testbeds used
in the evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.hardware.gpu import GPUSpec, get_gpu
from repro.hardware.interconnect import Interconnect, NVLINK_A100, PCIE_4_X8
from repro.utils.units import GB, GIB, fmt_bytes


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous single-node GPU cluster.

    Attributes:
        gpu: Per-device specification.
        num_gpus: Number of devices.
        fabric: Inter-GPU interconnect (used for all-reduce / p2p).
        host_link_bandwidth: CPU<->GPU bandwidth per GPU in bytes/s
            (PCIe; used for weight reloads and KV swaps).
        cpu_memory_per_gpu: Host memory budget per GPU for the tiered KV
            buffer (the paper allocates 80 GiB per GPU).
        pinned_copy_efficiency: Fraction of host-link bandwidth attainable
            when staging through pinned memory (Section 5.2 describes the
            pinned-staging design; non-pinned transfers are slower).
    """

    gpu: GPUSpec
    num_gpus: int
    fabric: Interconnect
    host_link_bandwidth: float = 16 * GB
    cpu_memory_per_gpu: int = 80 * GIB
    pinned_copy_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError("cluster needs at least one GPU")
        if self.host_link_bandwidth <= 0:
            raise ConfigurationError("host_link_bandwidth must be positive")
        if self.cpu_memory_per_gpu < 0:
            raise ConfigurationError("cpu_memory_per_gpu must be >= 0")
        if not (0 < self.pinned_copy_efficiency <= 1):
            raise ConfigurationError("pinned_copy_efficiency must be in (0, 1]")

    @property
    def total_gpu_memory(self) -> int:
        """Aggregate device memory across the cluster."""
        return self.gpu.memory_bytes * self.num_gpus

    @property
    def total_cpu_buffer(self) -> int:
        """Aggregate host memory available for the tiered KV buffer."""
        return self.cpu_memory_per_gpu * self.num_gpus

    @property
    def effective_host_bandwidth(self) -> float:
        """Attainable CPU<->GPU bandwidth per GPU (pinned staging)."""
        return self.host_link_bandwidth * self.pinned_copy_efficiency

    def with_fabric(self, fabric: Interconnect) -> "ClusterSpec":
        """Return a copy with a different inter-GPU fabric (Fig. 14 sweeps)."""
        return replace(self, fabric=fabric)

    def scaled_bandwidth(self, factor: float) -> "ClusterSpec":
        """Return a copy with all-reduce bandwidth scaled by ``factor``."""
        return replace(self, fabric=self.fabric.scaled(factor))

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.num_gpus}x{self.gpu.name} "
            f"({fmt_bytes(self.gpu.memory_bytes)} each, fabric={self.fabric.name}, "
            f"host link={self.host_link_bandwidth / GB:.0f} GB/s)"
        )


def make_cluster(
    gpu_name: str,
    num_gpus: int,
    *,
    fabric: Interconnect | None = None,
    cpu_memory_per_gpu: int = 80 * GIB,
) -> ClusterSpec:
    """Build a cluster for a named GPU, picking the natural fabric.

    A100-SXM nodes get NVLink; everything else gets PCIe 4.0 x8, matching
    the paper's testbeds (g5.48xlarge / g6.48xlarge expose PCIe x8 per GPU).
    """
    gpu = get_gpu(gpu_name)
    if fabric is None:
        fabric = NVLINK_A100 if gpu.has_nvlink else PCIE_4_X8
    return ClusterSpec(
        gpu=gpu,
        num_gpus=num_gpus,
        fabric=fabric,
        cpu_memory_per_gpu=cpu_memory_per_gpu,
    )
