"""Inter-GPU interconnect models: point-to-point and all-reduce costs.

The paper's analysis (Section 3.1 / Appendix A) hinges on two facts that
this module encodes:

1. In tensor parallelism the all-reduced activation volume is *constant* in
   the TP degree (activations are replicated), so adding GPUs does not
   shrink traffic.
2. The *all-reduce bandwidth* — tensor size divided by all-reduce runtime —
   **decreases** as more GPUs join, because the communication scheme grows
   more complex and (on PCIe) all traffic funnels through the host bridge.

We model an all-reduce of ``size`` bytes over ``n`` devices with a
ring-style cost:

    t = steps * latency + (2 * (n-1) / n) * size / link_eff(n)

where ``link_eff(n) = link_bandwidth / (1 + contention * (n - 2))`` captures
the degradation. On NVLink ``contention`` is small (switched fabric); on
PCIe it is large (shared host bridge). A bandwidth scale knob supports the
Fig. 14 projection study (mutating all-reduce bandwidth from 0.1x to 50x).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.utils.units import GB, US


@dataclass(frozen=True)
class Interconnect:
    """A symmetric inter-GPU fabric.

    Attributes:
        name: Human-readable label.
        link_bandwidth: Per-direction point-to-point bandwidth in bytes/s.
        latency: Per-message latency in seconds.
        contention: Per-extra-participant bandwidth degradation factor for
            collectives (0 = perfectly switched fabric).
        bandwidth_scale: Multiplier on link bandwidth, used by the Fig. 14
            interconnect-bandwidth sensitivity study.
    """

    name: str
    link_bandwidth: float
    latency: float
    contention: float
    bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: link_bandwidth must be positive")
        if self.latency < 0 or self.contention < 0:
            raise ConfigurationError(f"{self.name}: latency/contention must be >= 0")
        if self.bandwidth_scale <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth_scale must be positive")

    @property
    def effective_link_bandwidth(self) -> float:
        """Link bandwidth after applying the what-if scale factor."""
        return self.link_bandwidth * self.bandwidth_scale

    def collective_bandwidth(self, n: int) -> float:
        """Effective per-link bandwidth during an ``n``-way collective.

        Every additional participant adds host-bridge (or switch) traversal
        pressure, including the second one: even a 2-way all-reduce over
        PCIe runs well below link rate because both directions cross the
        same root complex.
        """
        if n < 2:
            raise ConfigurationError("collectives need at least 2 participants")
        return self.effective_link_bandwidth / (1.0 + self.contention * (n - 1))

    def scaled(self, factor: float) -> "Interconnect":
        """Return a copy with bandwidth scaled by ``factor`` (Fig. 14)."""
        return replace(self, bandwidth_scale=self.bandwidth_scale * factor)


def allreduce_time(fabric: Interconnect, size_bytes: float, n: int) -> float:
    """Time for an all-reduce of ``size_bytes`` across ``n`` devices.

    Uses the ring algorithm cost: 2(n-1) steps, each moving ``size/n`` bytes
    per link, so total per-link traffic is ``2(n-1)/n * size``. The paper's
    "all-reduce bandwidth" (size / time) is monotonically decreasing in
    ``n`` under this model, matching Observation 1.
    """
    if size_bytes < 0:
        raise ConfigurationError("allreduce size must be >= 0")
    if n <= 1 or size_bytes == 0:
        return 0.0
    steps = 2 * (n - 1)
    traffic = 2.0 * (n - 1) / n * size_bytes
    return steps * fabric.latency + traffic / fabric.collective_bandwidth(n)


def allreduce_bandwidth(fabric: Interconnect, size_bytes: float, n: int) -> float:
    """The paper's 'all-reduce bandwidth': tensor size / all-reduce runtime."""
    t = allreduce_time(fabric, size_bytes, n)
    if t == 0.0:
        return float("inf")
    return size_bytes / t


def p2p_time(fabric: Interconnect, size_bytes: float) -> float:
    """Point-to-point transfer time (pipeline-parallel activation sends)."""
    if size_bytes < 0:
        raise ConfigurationError("p2p size must be >= 0")
    if size_bytes == 0:
        return 0.0
    return fabric.latency + size_bytes / fabric.effective_link_bandwidth


# PCIe 4.0 x8: 16 GB/s per direction (the paper quotes 16 GiB/s; datasheet
# is ~15.75 GB/s usable — the difference is below model noise). Collectives
# over PCIe go through the host, hence the high contention coefficient.
# contention=1.0 puts n-rank collective bandwidth at 16/n GB/s — i.e.
# ~8/4/2 GB/s at 2/4/8 ranks, matching measured NCCL all-reduce algbw on
# host-bounced PCIe gen4 x8 topologies without P2P.
PCIE_4_X8 = Interconnect(
    name="pcie4-x8",
    link_bandwidth=16 * GB,
    latency=10 * US,
    contention=1.0,
)

# PCIe 4.0 x16 for reference configurations.
PCIE_4_X16 = Interconnect(
    name="pcie4-x16",
    link_bandwidth=32 * GB,
    latency=10 * US,
    contention=0.45,
)

# NVLink 3 (A100 SXM): 600 GB/s aggregate; per-direction usable ~300 GB/s
# through NVSwitch, near-zero contention growth.
NVLINK_A100 = Interconnect(
    name="nvlink-a100",
    link_bandwidth=300 * GB,
    latency=5 * US,
    contention=0.02,
)
