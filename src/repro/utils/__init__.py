"""Shared utilities: units, RNG, statistics, ASCII rendering."""

from repro.utils.units import (
    KIB,
    MIB,
    GIB,
    TIB,
    KB,
    MB,
    GB,
    TB,
    US,
    MS,
    SEC,
    fmt_bytes,
    fmt_time,
    fmt_rate,
)
from repro.utils.rng import make_rng, spawn_rng
from repro.utils.stats import (
    geomean,
    mean,
    percentile,
    summarize,
    Summary,
)
from repro.utils.tables import ascii_table, ascii_bar_chart, ascii_series

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "KB",
    "MB",
    "GB",
    "TB",
    "US",
    "MS",
    "SEC",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
    "make_rng",
    "spawn_rng",
    "geomean",
    "mean",
    "percentile",
    "summarize",
    "Summary",
    "ascii_table",
    "ascii_bar_chart",
    "ascii_series",
]
