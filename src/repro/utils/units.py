"""Unit constants and human-readable formatting.

The simulator works in SI base units throughout: **bytes** for memory and
traffic, **seconds** for time, **FLOP/s** for compute. These constants make
call sites explicit (``16 * GIB`` rather than a bare magic number) and the
formatters produce stable strings used in reports and golden tests.
"""

from __future__ import annotations

# Binary (power-of-two) byte units — used for memory capacities.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

# Decimal byte units — used for link bandwidths quoted in vendor datasheets.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

# Time units, in seconds.
US = 1e-6
MS = 1e-3
SEC = 1.0


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary-unit suffix, e.g. ``'24.0 GiB'``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, name in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if n >= unit:
            return f"{sign}{n / unit:.2f} {name}"
    return f"{sign}{n:.0f} B"


def fmt_time(t: float) -> str:
    """Format a duration in seconds with an adaptive unit, e.g. ``'3.2 ms'``."""
    t = float(t)
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t >= 60.0:
        return f"{sign}{t / 60.0:.2f} min"
    if t >= 1.0:
        return f"{sign}{t:.2f} s"
    if t >= MS:
        return f"{sign}{t / MS:.2f} ms"
    if t >= US:
        return f"{sign}{t / US:.1f} us"
    return f"{sign}{t * 1e9:.0f} ns"


def fmt_rate(r: float, unit: str = "req/s") -> str:
    """Format a rate such as requests or tokens per second."""
    if r >= 1e6:
        return f"{r / 1e6:.2f} M{unit}"
    if r >= 1e3:
        return f"{r / 1e3:.2f} k{unit}"
    return f"{r:.3f} {unit}"
