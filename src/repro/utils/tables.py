"""ASCII rendering for tables, bar charts and series.

The benchmark harness reproduces the paper's tables and figures as plain
text: tables render with aligned columns, bar charts render one bar per row
(used for the normalized-throughput figures), and series render multiple
curves as aligned columns (used for sweep figures such as Fig. 13/14).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned table with a header separator."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    ncols = max(len(r) for r in cells)
    widths = [0] * ncols
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        padded = [row[i].ljust(widths[i]) if i < len(row) else " " * widths[i] for i in range(ncols)]
        return "| " + " | ".join(padded) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(cells[0]))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart, one labelled bar per entry."""
    if not values:
        raise ValueError("bar chart needs at least one value")
    vmax = max(values.values())
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, val in values.items():
        nbar = int(round(width * val / vmax))
        bar = "#" * nbar
        lines.append(f"{key.ljust(label_w)} | {bar} {val:.3f}{unit}")
    return "\n".join(lines)


def ascii_series(
    x_label: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    fmt: str = "{:.3f}",
) -> str:
    """Render several curves sampled at common x points as a table.

    This is how sweep figures (throughput vs. ratio / bandwidth) are emitted;
    the reader can diff crossover points directly against the paper's plot.
    """
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length {len(ys)} != {len(xs)} x points")
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([fmt.format(x)] + [fmt.format(series[name][i]) for name in series])
    return ascii_table(headers, rows, title=title)
