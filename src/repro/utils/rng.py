"""Deterministic random number generation helpers.

Every stochastic component (workload samplers, tie-breaking in schedulers)
takes an explicit :class:`numpy.random.Generator`. These helpers create
seeded generators and derive independent child streams so that experiments
are reproducible bit-for-bit and components never share hidden global state.
"""

from __future__ import annotations

import zlib

import numpy as np

_DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a seeded generator. ``None`` uses the package default seed.

    The default seed is fixed (not entropy-based) so that tests and
    benchmarks are reproducible without explicitly threading a seed.
    """
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


def spawn_rng(parent: np.random.Generator, key: str) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` and a label.

    The label participates in the seed so two children with different keys
    produce uncorrelated streams regardless of creation order. The label
    is folded in with a stable digest — ``hash(str)`` is salted per
    process (PYTHONHASHSEED), which would silently break cross-run
    reproducibility.
    """
    label_seed = zlib.crc32(key.encode("utf-8")) % (2**31)
    child_seed = int(parent.integers(0, 2**31)) ^ label_seed
    return np.random.default_rng(child_seed)
