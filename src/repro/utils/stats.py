"""Statistics helpers used by reports and experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper quotes geometric-mean speedups (``1.36x on average``); we use
    the same aggregation so measured numbers are comparable.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("mean of empty sequence")
    return float(arr.mean())


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100]) using linear interpolation."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} p50={self.p50:.4g} p90={self.p90:.4g} "
            f"p99={self.p99:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of a non-empty sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )
