"""Shard maps: which slice of the model each GPU rank holds.

A :class:`ShardMap` makes the (DP, TP, PP) layout concrete: GPU ``g`` is
assigned coordinates ``(dp_rank, pp_stage, tp_rank)``; it holds the TP slice
``tp_rank`` of the contiguous layer range belonging to ``pp_stage``, and it
caches the KV-head slice ``tp_rank`` for those same layers. The re-sharding
planner uses two shard maps to compute exactly which weight bytes a GPU is
missing after a configuration switch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig


@dataclass(frozen=True)
class GPUShard:
    """The model slice owned by one GPU rank.

    ``layer_range`` is a half-open interval of layer indices; ``tp_rank`` /
    ``tp_degree`` identify the within-layer slice (1/tp_degree of every
    weight matrix and of the KV heads).
    """

    gpu_id: int
    dp_rank: int
    pp_stage: int
    tp_rank: int
    tp_degree: int
    layer_range: tuple[int, int]

    @property
    def num_layers(self) -> int:
        return self.layer_range[1] - self.layer_range[0]

    def weight_bytes(self, model: ModelConfig) -> float:
        """Bytes of layer weights this shard holds (embeddings excluded —
        they are charged separately and never move during re-sharding
        because both stage configs keep them on the edge stages)."""
        return self.num_layers * model.layer_weight_bytes / self.tp_degree

    def layer_fraction_overlap(self, other: "GPUShard") -> float:
        """Fraction of *this* shard's bytes also present in ``other``.

        Two shards overlap on the intersection of their layer ranges; within
        a layer, TP slices are contiguous along the sharded dimension, so
        slice ``i`` of degree ``t`` covers ``[i/t, (i+1)/t)`` of each matrix
        and the overlap of two slices is an interval intersection.
        """
        lo = max(self.layer_range[0], other.layer_range[0])
        hi = min(self.layer_range[1], other.layer_range[1])
        if hi <= lo or self.num_layers == 0:
            return 0.0
        layer_frac = (hi - lo) / self.num_layers
        a0, a1 = self.tp_rank / self.tp_degree, (self.tp_rank + 1) / self.tp_degree
        b0, b1 = other.tp_rank / other.tp_degree, (other.tp_rank + 1) / other.tp_degree
        width = max(0.0, min(a1, b1) - max(a0, b0))
        my_width = a1 - a0
        return layer_frac * (width / my_width)


@dataclass(frozen=True)
class ShardMap:
    """Complete GPU -> shard assignment for one parallel configuration."""

    config: ParallelConfig
    shards: tuple[GPUShard, ...]

    def shard_for(self, gpu_id: int) -> GPUShard:
        return self.shards[gpu_id]

    @property
    def num_gpus(self) -> int:
        return len(self.shards)


def _layer_ranges(num_layers: int, pp: int) -> list[tuple[int, int]]:
    """Split ``num_layers`` into ``pp`` contiguous, nearly-equal ranges."""
    base = num_layers // pp
    extra = num_layers % pp
    ranges = []
    start = 0
    for stage in range(pp):
        size = base + (1 if stage < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def build_shard_map(model: ModelConfig, cfg: ParallelConfig) -> ShardMap:
    """Construct the canonical rank layout for ``cfg``.

    GPU ids are assigned in (dp, pp, tp) lexicographic order: TP ranks are
    adjacent (they communicate every layer), pipeline stages next, replicas
    outermost — the standard Megatron-style placement.
    """
    if model.num_layers < cfg.pp:
        raise ConfigurationError(
            f"{model.name}: cannot split {model.num_layers} layers over PP={cfg.pp}"
        )
    ranges = _layer_ranges(model.num_layers, cfg.pp)
    shards = []
    gpu_id = 0
    for dp_rank in range(cfg.dp):
        for pp_stage in range(cfg.pp):
            for tp_rank in range(cfg.tp):
                shards.append(
                    GPUShard(
                        gpu_id=gpu_id,
                        dp_rank=dp_rank,
                        pp_stage=pp_stage,
                        tp_rank=tp_rank,
                        tp_degree=cfg.tp,
                        layer_range=ranges[pp_stage],
                    )
                )
                gpu_id += 1
    return ShardMap(config=cfg, shards=tuple(shards))
