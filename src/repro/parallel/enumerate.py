"""Enumeration of candidate parallelism configurations for a cluster."""

from __future__ import annotations

from typing import Iterator

from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.memory import fits


def _divisor_powers_of_two(n: int) -> list[int]:
    """Powers of two that divide ``n`` (degree grid used by the paper)."""
    out = []
    d = 1
    while d <= n:
        if n % d == 0:
            out.append(d)
        d *= 2
    return out


def enumerate_configs(
    num_gpus: int,
    *,
    allow_dp: bool = True,
    require_all_gpus: bool = True,
) -> Iterator[ParallelConfig]:
    """Yield all (DP, TP, PP) triples over power-of-two degrees.

    ``require_all_gpus`` restricts to configurations using every device
    (the paper's sweep: dp*tp*pp == num_gpus), which is what a
    throughput-oriented deployment does; set it False to also get
    partial-cluster configs (used by the disaggregation analysis).
    """
    degrees = _divisor_powers_of_two(num_gpus)
    for dp in degrees if allow_dp else [1]:
        for tp in degrees:
            for pp in degrees:
                total = dp * tp * pp
                if total > num_gpus:
                    continue
                if require_all_gpus and total != num_gpus:
                    continue
                yield ParallelConfig(tp=tp, pp=pp, dp=dp)


def feasible_configs(
    model: ModelConfig,
    cluster: ClusterSpec,
    *,
    allow_dp: bool = True,
    require_all_gpus: bool = True,
) -> list[ParallelConfig]:
    """All enumerated configs under which the model fits with KV headroom."""
    return [
        cfg
        for cfg in enumerate_configs(
            cluster.num_gpus,
            allow_dp=allow_dp,
            require_all_gpus=require_all_gpus,
        )
        if fits(model, cluster, cfg)
    ]
