"""Parallelization strategies: configs, shard maps, re-shard plans.

A :class:`ParallelConfig` is a (DP, TP, PP) triple; labels follow the
paper's figure notation ("D2T2P2", "P8->T4P2"). The memory module computes
per-GPU weight footprints and the maximum batch size formula of Appendix
A.3; the resharding module computes the exact bytes each GPU must move to
transition between two configurations.
"""

from repro.parallel.config import ParallelConfig, parse_config, parse_transition
from repro.parallel.enumerate import enumerate_configs, feasible_configs
from repro.parallel.memory import (
    weight_bytes_per_gpu,
    kv_capacity_tokens,
    kv_bytes_per_token_per_gpu,
    max_batch_size,
    fits,
)
from repro.parallel.sharding import ShardMap, build_shard_map
from repro.parallel.resharding import ReshardPlan, plan_reshard

__all__ = [
    "ParallelConfig",
    "parse_config",
    "parse_transition",
    "enumerate_configs",
    "feasible_configs",
    "weight_bytes_per_gpu",
    "kv_capacity_tokens",
    "kv_bytes_per_token_per_gpu",
    "max_batch_size",
    "fits",
    "ShardMap",
    "build_shard_map",
    "ReshardPlan",
    "plan_reshard",
]
