"""Per-GPU memory accounting and the maximum-batch-size formula.

Implements the Appendix A.3 arithmetic: with TP sharding weights and KV
heads, and PP splitting layers, the per-GPU weight footprint is
``2LW / (TP * PP)`` and the space left over bounds the KV cache. The
maximum batch size is

    b_max = DP * (M * TP * PP - 2LW) / (4 * L * hkv * d * s)

(in the paper's notation) — TP and PP scale it super-linearly because they
both shrink the weight replica per GPU, while DP only scales it linearly.
"""

from __future__ import annotations

from repro.errors import CapacityError
from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig

# Fraction of device memory reserved for activations, CUDA context and
# fragmentation slack (vLLM's gpu_memory_utilization=0.9 plus workspace).
ACTIVATION_RESERVE_FRACTION = 0.10


def weight_bytes_per_gpu(model: ModelConfig, cfg: ParallelConfig) -> int:
    """Weight bytes resident on one GPU under ``cfg``.

    Layers divide across PP stages; each layer's weights divide across TP
    ranks. Embedding and LM head live on the first/last pipeline stages and
    are TP-sharded; we charge the average per GPU, which is what matters
    for aggregate KV capacity.
    """
    layer_bytes = model.num_layers * model.layer_weight_bytes / (cfg.tp * cfg.pp)
    embed_bytes = 2 * model.embedding_params * model.dtype_bytes / (cfg.tp * cfg.pp)
    return int(layer_bytes + embed_bytes)


def kv_bytes_per_token_per_gpu(model: ModelConfig, cfg: ParallelConfig) -> float:
    """KV bytes one token occupies on one GPU.

    TP shards KV heads (hkv / TP per rank); PP means each GPU only caches
    its own L / PP layers.
    """
    return model.kv_bytes_per_token / (cfg.tp * cfg.pp)


def kv_capacity_bytes_per_gpu(
    model: ModelConfig, cluster: ClusterSpec, cfg: ParallelConfig
) -> float:
    """Device bytes available for KV cache on one GPU (can be negative if
    the model replica does not fit)."""
    usable = cluster.gpu.memory_bytes * (1.0 - ACTIVATION_RESERVE_FRACTION)
    return usable - weight_bytes_per_gpu(model, cfg)


def fits(model: ModelConfig, cluster: ClusterSpec, cfg: ParallelConfig) -> bool:
    """Whether the model replica fits on each GPU with room for KV cache.

    Requires the configuration to use no more GPUs than available and to
    leave at least a small positive KV budget (a config that fits weights
    but can cache zero tokens is useless for inference).
    """
    if cfg.num_gpus > cluster.num_gpus:
        return False
    spare = kv_capacity_bytes_per_gpu(model, cluster, cfg)
    min_tokens = 512  # must cache at least a tiny batch to make progress
    return spare >= min_tokens * kv_bytes_per_token_per_gpu(model, cfg)


def kv_capacity_tokens(
    model: ModelConfig, cluster: ClusterSpec, cfg: ParallelConfig
) -> int:
    """Total tokens the GPU KV cache can hold across one DP replica.

    Every GPU in the replica holds its shard of every cached token, so the
    replica-wide token capacity equals the per-GPU capacity divided by the
    per-GPU bytes/token (not summed across GPUs).
    """
    spare = kv_capacity_bytes_per_gpu(model, cluster, cfg)
    if spare <= 0:
        raise CapacityError(
            f"model {model.name} does not fit on {cluster.gpu.name} under {cfg.label()}"
        )
    return int(spare / kv_bytes_per_token_per_gpu(model, cfg))


def max_batch_size(
    model: ModelConfig,
    cluster: ClusterSpec,
    cfg: ParallelConfig,
    avg_seq_len: float,
) -> int:
    """Maximum concurrent sequences of average length ``avg_seq_len``.

    This is the paper's ``b_max`` (Appendix A.3): per-replica token capacity
    divided by sequence length, then multiplied by DP (each replica holds an
    independent batch).
    """
    if avg_seq_len <= 0:
        raise CapacityError("avg_seq_len must be positive")
    per_replica = kv_capacity_tokens(model, cluster, cfg) / avg_seq_len
    return max(1, int(per_replica) * cfg.dp)
