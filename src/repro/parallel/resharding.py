"""Re-shard planning: bytes each GPU moves when switching configurations.

Seesaw re-shards model weights by reloading the required shards from CPU
memory over the host link (Section 4.1). The plan computed here records,
per GPU, the bytes of its *new* shard, how much of that it already holds
from the *old* shard (reusable without a host transfer), and the resulting
transfer time. The baseline executor reloads the full new shard; the
overlap-aware number is exposed for the shard-reuse ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.sharding import build_shard_map


@dataclass(frozen=True)
class ReshardPlan:
    """Cost summary for one configuration transition.

    Attributes:
        src: Configuration before the switch.
        dst: Configuration after the switch.
        bytes_per_gpu: New-shard bytes each GPU must hold afterwards.
        reusable_bytes_per_gpu: Portion of the new shard already resident
            on each GPU (same layer range and overlapping TP slice).
        transfer_bytes_per_gpu: Bytes actually loaded over the host link
            per GPU (full reload by default).
    """

    src: ParallelConfig
    dst: ParallelConfig
    bytes_per_gpu: tuple[float, ...]
    reusable_bytes_per_gpu: tuple[float, ...]
    transfer_bytes_per_gpu: tuple[float, ...]

    @property
    def max_transfer_bytes(self) -> float:
        """Bytes moved by the busiest GPU (transfers run in parallel)."""
        return max(self.transfer_bytes_per_gpu) if self.transfer_bytes_per_gpu else 0.0

    @property
    def total_transfer_bytes(self) -> float:
        return float(sum(self.transfer_bytes_per_gpu))

    def transfer_time(self, cluster: ClusterSpec) -> float:
        """Wall time of the weight reload: GPUs load concurrently over
        their own host links, so the slowest GPU bounds the switch."""
        return self.max_transfer_bytes / cluster.effective_host_bandwidth


def plan_reshard(
    model: ModelConfig,
    src: ParallelConfig,
    dst: ParallelConfig,
    *,
    reuse_overlap: bool = False,
) -> ReshardPlan:
    """Compute the weight-movement plan for switching ``src`` -> ``dst``.

    With ``reuse_overlap`` the planner subtracts bytes a GPU already holds
    (the shard-reuse optimization); by default it charges a full reload of
    the new shard, matching the implementation described in the paper.

    A no-op transition (``src == dst``) costs zero either way.
    """
    if src == dst:
        n = src.num_gpus
        zeros = tuple(0.0 for _ in range(n))
        return ReshardPlan(src=src, dst=dst, bytes_per_gpu=zeros,
                           reusable_bytes_per_gpu=zeros,
                           transfer_bytes_per_gpu=zeros)

    src_map = build_shard_map(model, src)
    dst_map = build_shard_map(model, dst)

    new_bytes: list[float] = []
    reusable: list[float] = []
    transfers: list[float] = []
    for gpu_id in range(dst_map.num_gpus):
        dst_shard = dst_map.shard_for(gpu_id)
        need = dst_shard.weight_bytes(model)
        have = 0.0
        if gpu_id < src_map.num_gpus:
            src_shard = src_map.shard_for(gpu_id)
            # Fraction of the *new* shard already present locally.
            frac = dst_shard.layer_fraction_overlap(src_shard)
            have = need * frac
        new_bytes.append(need)
        reusable.append(have)
        transfers.append(max(0.0, need - have) if reuse_overlap else need)

    return ReshardPlan(
        src=src,
        dst=dst,
        bytes_per_gpu=tuple(new_bytes),
        reusable_bytes_per_gpu=tuple(reusable),
        transfer_bytes_per_gpu=tuple(transfers),
    )
