"""Parallelism configuration triple (DP, TP, PP) and label parsing.

The paper labels configurations as concatenations of ``D``, ``T``, ``P``
letters with degrees, e.g. ``"D2T2P2"`` (DP=2, TP=2, PP=2) or ``"P8"``
(PP=8, others 1); Seesaw transitions are written ``"P8->T4P2"`` meaning the
prefill configuration is PP8 and the decode configuration is TP4+PP2.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

from repro.errors import ConfigurationError


@total_ordering
@dataclass(frozen=True)
class ParallelConfig:
    """Degrees of data, tensor and pipeline parallelism.

    The total number of GPUs used is ``dp * tp * pp``. Degrees must be
    positive; powers of two are conventional but not required.
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1

    def __post_init__(self) -> None:
        for field_name, value in (("tp", self.tp), ("pp", self.pp), ("dp", self.dp)):
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"{field_name} degree must be a positive int, got {value!r}"
                )

    @property
    def num_gpus(self) -> int:
        """Total devices consumed by this configuration."""
        return self.dp * self.tp * self.pp

    @property
    def model_gpus(self) -> int:
        """Devices holding one model replica (TP * PP)."""
        return self.tp * self.pp

    def label(self) -> str:
        """Paper-style label, omitting unit degrees: ``T4P2``, ``D2P4``."""
        parts = []
        if self.dp > 1:
            parts.append(f"D{self.dp}")
        if self.tp > 1:
            parts.append(f"T{self.tp}")
        if self.pp > 1:
            parts.append(f"P{self.pp}")
        return "".join(parts) or "T1"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()

    def __lt__(self, other: "ParallelConfig") -> bool:
        return (self.dp, self.tp, self.pp) < (other.dp, other.tp, other.pp)


_TOKEN_RE = re.compile(r"([DTPdtp])(\d+)")


def parse_config(label: str) -> ParallelConfig:
    """Parse a label like ``"D2T4P1"``, ``"tp4pp2"`` or ``"P8"``.

    Both single-letter (paper figures) and double-letter (``tp``/``pp``/
    ``dp``) spellings are accepted. Unspecified degrees default to 1.
    """
    text = label.strip()
    if not text:
        raise ConfigurationError("empty parallel config label")
    normalized = (
        text.lower().replace("dp", "d").replace("tp", "t").replace("pp", "p")
    )
    matches = list(_TOKEN_RE.finditer(normalized))
    if not matches or "".join(m.group(0) for m in matches) != normalized:
        raise ConfigurationError(f"cannot parse parallel config label {label!r}")
    degrees = {"d": 1, "t": 1, "p": 1}
    seen: set[str] = set()
    for m in matches:
        letter, value = m.group(1).lower(), int(m.group(2))
        if letter in seen:
            raise ConfigurationError(f"duplicate {letter!r} degree in {label!r}")
        seen.add(letter)
        degrees[letter] = value
    return ParallelConfig(tp=degrees["t"], pp=degrees["p"], dp=degrees["d"])


def parse_transition(label: str) -> tuple[ParallelConfig, ParallelConfig]:
    """Parse a Seesaw transition label ``"P8->T4P2"`` into (cp, cd)."""
    if "->" not in label:
        raise ConfigurationError(f"transition label {label!r} must contain '->'")
    left, right = label.split("->", 1)
    return parse_config(left), parse_config(right)


def transition_label(cp: ParallelConfig, cd: ParallelConfig) -> str:
    """Render a (prefill, decode) pair the way the paper's figures do."""
    return f"{cp.label()}->{cd.label()}"
