"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch one
type. Specific subclasses signal configuration problems (invalid parallelism,
model does not fit) versus runtime problems (KV cache exhaustion that cannot
be resolved by scheduling).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration is invalid or inconsistent."""


class CapacityError(ReproError):
    """A model/workload does not fit in the configured hardware."""


class SchedulingError(ReproError):
    """The scheduler reached a state it cannot make progress from."""


class SimulationError(ReproError):
    """Internal invariant violation inside the simulated runtime."""
