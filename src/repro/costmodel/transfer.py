"""CPU<->GPU transfer costs: KV swaps, weight reloads, layout effects.

Section 5.2 of the paper describes the two transfer mechanics we model:

- transfers overlap with computation only through **pinned** staging
  buffers; the pinned->shared-memory hop runs host-side concurrently with
  GPU kernels, so the GPU-visible cost is the PCIe leg;
- the KV layout matters: **HND** (heads-major) keeps each TP rank's shard
  contiguous, while **NHD** forces strided access and loses bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec


class KVLayout(enum.Enum):
    """KV-cache memory layout for the CPU buffer.

    HND = (num_heads, seq_len, head_dim): TP shards the leading dimension,
    so each rank's slice is contiguous — this is what Seesaw uses.
    NHD = (seq_len, num_heads, head_dim): sharding cuts the middle
    dimension, producing many small strided copies.
    """

    HND = "hnd"
    NHD = "nhd"


# Fraction of link bandwidth attained for each layout; NHD's strided copies
# are markedly slower (small-chunk PCIe reads).
_LAYOUT_EFFICIENCY = {KVLayout.HND: 1.0, KVLayout.NHD: 0.55}


@dataclass(frozen=True)
class TransferModel:
    """Host-link transfer timing for one cluster.

    Attributes:
        cluster: Hardware description (provides per-GPU host bandwidth).
        layout: KV-cache layout in CPU memory.
        pinned: Whether transfers stage through pinned memory. Non-pinned
            transfers cannot overlap with compute and run slower.
    """

    cluster: ClusterSpec
    layout: KVLayout = KVLayout.HND
    pinned: bool = True

    @property
    def effective_bandwidth_per_gpu(self) -> float:
        """Attainable CPU<->GPU bytes/s per GPU for KV traffic."""
        base = self.cluster.host_link_bandwidth
        eff = self.cluster.pinned_copy_efficiency if self.pinned else 0.6
        return base * eff * _LAYOUT_EFFICIENCY[self.layout]

    def kv_swap_time(self, bytes_per_gpu: float) -> float:
        """Time to move ``bytes_per_gpu`` of KV between host and one GPU."""
        if bytes_per_gpu < 0:
            raise ConfigurationError("transfer bytes must be >= 0")
        return bytes_per_gpu / self.effective_bandwidth_per_gpu

    def weight_load_time(self, bytes_per_gpu: float) -> float:
        """Time to load ``bytes_per_gpu`` of weights host->GPU (weights are
        stored contiguously per shard, so layout does not apply)."""
        if bytes_per_gpu < 0:
            raise ConfigurationError("transfer bytes must be >= 0")
        eff = self.cluster.pinned_copy_efficiency if self.pinned else 0.6
        return bytes_per_gpu / (self.cluster.host_link_bandwidth * eff)

    @property
    def overlappable(self) -> bool:
        """Whether transfers may overlap with computation (pinned only)."""
        return self.pinned
