"""Step-level cost model: the facade engines use for every timed action.

A :class:`StepCostModel` binds (model, cluster, parallel config) and
answers, in seconds-with-breakdown:

- ``prefill_stage_time(seq_lens)``   — one prefill micro-batch through one
  pipeline stage (L/PP layers at TP degree ``tp``);
- ``prefill_pass_time(seq_lens)``    — the same micro-batch through all
  stages (a single micro-batch gets no pipelining benefit);
- ``decode_iteration_time(n, ctx)``  — every in-flight sequence advances
  one token (PP micro-batches through the pipeline in steady state);
- ``mixed_pass_time(...)``           — a chunked-prefill batch combining a
  prompt chunk with piggybacked decodes (Sarathi-style baselines);
- ``kv_swap_time(tokens)``           — tiered-KV transfer over host links;
- ``reshard_time(dst)``              — weight reload for a config switch.

All per-replica quantities assume the engine has already divided work
across DP replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.costmodel.breakdown import Breakdown
from repro.costmodel.pipeline import steady_state_period
from repro.costmodel.roofline import ATTN_COMPUTE_EFFICIENCY, layer_time
from repro.costmodel.transfer import KVLayout, TransferModel
from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.interconnect import p2p_time
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.resharding import plan_reshard

# Fixed engine bookkeeping per scheduling iteration (batch formation,
# Python-side dispatch). Charged by engines once per iteration.
ITERATION_OVERHEAD = 400e-6


@dataclass
class StepCostModel:
    """Cost oracle for one (model, cluster, parallel config) binding."""

    model: ModelConfig
    cluster: ClusterSpec
    config: ParallelConfig
    kv_layout: KVLayout = KVLayout.HND
    transfer: TransferModel = field(init=False)

    def __post_init__(self) -> None:
        if self.config.num_gpus > self.cluster.num_gpus:
            raise ConfigurationError(
                f"config {self.config.label()} needs {self.config.num_gpus} GPUs, "
                f"cluster has {self.cluster.num_gpus}"
            )
        self.transfer = TransferModel(cluster=self.cluster, layout=self.kv_layout)

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #

    @property
    def layers_per_stage(self) -> float:
        """Layers per pipeline stage (fractional for uneven splits; the
        slowest stage has ceil(L/PP) and bounds the pipeline)."""
        pp = self.config.pp
        return -(-self.model.num_layers // pp)  # ceil division

    def _stage(self, per_layer: Breakdown, new_tokens: int) -> Breakdown:
        """Scale a per-layer cost to one pipeline stage, adding the
        inter-stage activation send (negligible next to all-reduce, but
        modeled for completeness)."""
        stage = per_layer.scale(self.layers_per_stage)
        if self.config.pp > 1 and new_tokens > 0:
            act = new_tokens * self.model.activation_bytes_per_token()
            send = p2p_time(self.cluster.fabric, act)
            stage = stage + Breakdown(comm=send)
        return stage

    # ------------------------------------------------------------------ #
    # Prefill
    # ------------------------------------------------------------------ #

    def prefill_stage_time(self, seq_lens: Sequence[int]) -> Breakdown:
        """One prefill micro-batch through ONE pipeline stage."""
        new_tokens = int(sum(seq_lens))
        sum_sq = float(sum(s * s for s in seq_lens))
        per_layer = layer_time(
            self.model,
            self.cluster.gpu,
            self.cluster.fabric,
            self.config.tp,
            new_tokens=new_tokens,
            context_tokens=0,
            sum_sq_seq_len=sum_sq,
            phase="prefill",
        )
        return self._stage(per_layer, new_tokens)

    def prefill_pass_time(self, seq_lens: Sequence[int]) -> Breakdown:
        """One micro-batch through ALL stages (no pipelining overlap)."""
        return self.prefill_stage_time(seq_lens).scale(self.config.pp)

    # ------------------------------------------------------------------ #
    # Decode
    # ------------------------------------------------------------------ #

    def decode_stage_time(self, num_seqs: int, context_tokens: int) -> Breakdown:
        """One decode micro-batch (``num_seqs`` sequences, attending over
        ``context_tokens`` total cached tokens) through one stage."""
        per_layer = layer_time(
            self.model,
            self.cluster.gpu,
            self.cluster.fabric,
            self.config.tp,
            new_tokens=num_seqs,
            context_tokens=context_tokens,
            sum_sq_seq_len=0.0,
            phase="decode",
        )
        return self._stage(per_layer, num_seqs)

    def _decode_consts(self) -> tuple:
        """Per-config constants of the decode roofline, hoisted out of the
        per-iteration path. Keyed on (tp, pp) so a mutated config cannot
        serve stale numbers."""
        key = (self.config.tp, self.config.pp)
        cached = getattr(self, "_decode_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        tp, pp = key
        gpu = self.cluster.gpu
        fabric = self.cluster.fabric
        model = self.model
        bw = gpu.effective_bandwidth
        flops = gpu.effective_flops
        lps = self.layers_per_stage
        period = steady_state_period(1.0, pp)
        # Constant components get their layer and period scaling folded in;
        # token-dependent ones keep the reference expression's exact
        # floating-point operation order and scale at call time.
        linear_dm = (((model.layer_weight_bytes / tp) / bw) * lps) * period
        overhead = (gpu.kernel_overhead * lps) * period
        lin_flops = model.linear_flops_per_token_per_layer()
        attn_eff = flops * ATTN_COMPUTE_EFFICIENCY
        c4 = (4.0 * model.num_heads) * model.head_dim
        kv_int = 2 * model.num_kv_heads * model.head_dim * model.dtype_bytes
        act_bytes = model.activation_bytes_per_token()
        if tp > 1:
            ar_fixed = (2 * (tp - 1)) * fabric.latency
            ar_factor = (2.0 * (tp - 1)) / tp
            ar_bw = fabric.collective_bandwidth(tp)
        else:
            ar_fixed = ar_factor = ar_bw = 0.0
        consts = (
            tp, pp, lps, period, bw, flops, attn_eff, linear_dm, overhead,
            lin_flops, c4, kv_int, act_bytes, ar_fixed, ar_factor, ar_bw,
            fabric.latency, fabric.effective_link_bandwidth,
        )
        self._decode_cache = (key, consts)
        return consts

    def decode_iteration_time(self, num_seqs: int, context_tokens: int) -> Breakdown:
        """Advance every sequence of one DP replica by one token.

        The replica's batch splits into PP mutually-exclusive micro-batches
        (paper Section 3.1); in steady state the iteration takes PP stage
        periods, so each device re-streams its weights once per micro-batch
        — the weight-transfer amplification that makes PP slow at decode.

        Hot path of every decode-heavy engine loop: computes the same
        numbers as ``decode_stage_time(...).scale(steady_state_period)``
        bit-exactly (pinned by a test) but from precomputed constants,
        skipping the intermediate Breakdown objects.
        """
        if num_seqs <= 0:
            return Breakdown()
        (
            tp, pp, lps, period, bw, flops, attn_eff, linear_dm, overhead,
            lin_flops, c4, kv_int, act_bytes, ar_fixed, ar_factor, ar_bw,
            p2p_lat, link_bw,
        ) = self._decode_consts()
        m = -(-num_seqs // pp)
        ctx = -(-context_tokens // pp)
        linear_comp = (lin_flops * m / tp / flops * lps) * period
        attn_dm = (float(kv_int * ctx) / tp / bw * lps) * period
        attn_comp = (c4 * ctx / tp / attn_eff * lps) * period
        comm = 0.0
        if tp > 1:
            act = m * act_bytes
            comm = 2 * (ar_fixed + (ar_factor * act) / ar_bw) * lps
        if pp > 1:
            comm = (comm + (p2p_lat + (m * act_bytes) / link_bw)) * period
        else:
            comm = comm * period
        return Breakdown(
            linear_dm=linear_dm,
            linear_comp=linear_comp,
            attn_dm=attn_dm,
            attn_comp=attn_comp,
            comm=comm,
            overhead=overhead,
        )

    def decode_iteration_time_reference(
        self, num_seqs: int, context_tokens: int
    ) -> Breakdown:
        """The layer-composed reference the fast path must match bit-exactly
        (kept as the oracle for the equivalence test)."""
        if num_seqs <= 0:
            return Breakdown()
        pp = self.config.pp
        micro_seqs = -(-num_seqs // pp)
        micro_ctx = -(-context_tokens // pp)
        stage = self.decode_stage_time(micro_seqs, micro_ctx)
        period = steady_state_period(1.0, pp)  # = pp stage slots
        return stage.scale(period)

    # ------------------------------------------------------------------ #
    # Mixed (chunked prefill) batches
    # ------------------------------------------------------------------ #

    def mixed_iteration_time(
        self,
        chunk_tokens: int,
        chunk_context_tokens: int,
        decode_seqs: int,
        decode_context_tokens: int,
    ) -> Breakdown:
        """A Sarathi-style iteration: a prompt chunk plus piggybacked decodes.

        The chunk of ``chunk_tokens`` attends over ``chunk_context_tokens``
        already-prefilled tokens plus (causally) itself; decodes attend over
        their caches. Under pipeline parallelism the iteration splits into
        PP micro-batches exactly like a decode iteration (Sarathi's uniform
        chunks are what keep those micro-batches bubble-free), so the
        iteration occupies PP stage periods.
        """
        if chunk_tokens + decode_seqs == 0:
            return Breakdown()
        pp = self.config.pp
        m_chunk = -(-chunk_tokens // pp) if chunk_tokens else 0
        m_chunk_ctx = -(-chunk_context_tokens // pp) if chunk_tokens else 0
        m_dec = -(-decode_seqs // pp) if decode_seqs else 0
        m_dec_ctx = -(-decode_context_tokens // pp) if decode_seqs else 0
        stage = self._mixed_stage_time(m_chunk, m_chunk_ctx, m_dec, m_dec_ctx)
        return stage.scale(pp)

    def _mixed_stage_time(
        self,
        chunk_tokens: int,
        chunk_context_tokens: int,
        decode_seqs: int,
        decode_context_tokens: int,
    ) -> Breakdown:
        """One mixed micro-batch through one pipeline stage."""
        new_tokens = chunk_tokens + decode_seqs
        if new_tokens == 0:
            return Breakdown()
        gpu = self.cluster.gpu
        tp = self.config.tp
        bw = gpu.effective_bandwidth
        flops = gpu.effective_flops

        linear_dm = (self.model.layer_weight_bytes / tp) / bw
        linear_comp = (
            self.model.linear_flops_per_token_per_layer() * new_tokens / tp / flops
        )

        attn_flops_eff = flops * ATTN_COMPUTE_EFFICIENCY
        d = self.model.head_dim
        hq = self.model.num_heads
        # Chunk attention: each new token attends over prior context plus
        # the causal half of the chunk itself.
        chunk_attended = chunk_tokens * (chunk_context_tokens + chunk_tokens / 2.0)
        attn_comp = (
            2.0 * 2.0 * hq * d * chunk_attended
            + 4.0 * hq * d * decode_context_tokens
        ) / tp / attn_flops_eff
        attn_dm = (
            self.model.qkv_io_bytes_prefill_per_layer(chunk_tokens)
            + self.model.kv_read_bytes_decode_per_layer(
                (chunk_context_tokens if chunk_tokens > 0 else 0)
                + decode_context_tokens
            )
        ) / tp / bw

        comm = 0.0
        if tp > 1:
            from repro.hardware.interconnect import allreduce_time

            act = new_tokens * self.model.activation_bytes_per_token()
            comm = 2 * allreduce_time(self.cluster.fabric, act, tp)

        per_layer = Breakdown(
            linear_dm=linear_dm,
            linear_comp=linear_comp,
            attn_dm=attn_dm,
            attn_comp=attn_comp,
            comm=comm,
            overhead=gpu.kernel_overhead,
        )
        return self._stage(per_layer, new_tokens)

    # ------------------------------------------------------------------ #
    # Transfers
    # ------------------------------------------------------------------ #

    def kv_swap_time(self, tokens: float) -> float:
        """Wall time to move ``tokens`` worth of *one replica's* KV cache
        between the CPU buffer and that replica's GPUs.

        Each GPU carries its own shard (1 / (TP*PP) of each token) over its
        own host link, all links running in parallel, so the replica's
        aggregate swap bandwidth scales with TP*PP. Engines account DP
        replicas separately (each replica swaps its own tokens).
        """
        if tokens < 0:
            raise ConfigurationError("tokens must be >= 0")
        total_bytes = tokens * self.model.kv_bytes_per_token
        agg_bw = self.transfer.effective_bandwidth_per_gpu * self.config.model_gpus
        return total_bytes / agg_bw

    def reshard_time(self, dst: ParallelConfig) -> float:
        """Wall time of switching this config's weights to ``dst``
        (parallel per-GPU reload from CPU memory over host links)."""
        plan = plan_reshard(self.model, self.config, dst)
        return plan.transfer_time(self.cluster)
