"""Per-layer roofline cost (Table 3 of the paper, executable).

One decoder layer's forward-pass time on one GPU under tensor parallelism
degree ``tp``:

    T = max(T_linear_dm, T_linear_comp) + max(T_attn_dm, T_attn_comp)
        + T_nw(tp) + overhead

- ``T_linear_dm``   : layer weights (2W / tp bytes) streamed from HBM.
- ``T_linear_comp`` : 2W * tokens / tp FLOPs of dense projections.
- ``T_attn_dm``     : Q/K/V traffic (prefill) or KV-cache reads (decode).
- ``T_attn_comp``   : attention score/value FLOPs.
- ``T_nw``          : two all-reduces of the activation per layer when
                      tp > 1 (post-attention and post-MLP, Megatron style).

Attention kernels reach a lower fraction of peak FLOPS than dense GEMMs
(softmax, masking, irregular shapes); ``ATTN_COMPUTE_EFFICIENCY`` scales the
GPU's large-GEMM efficiency for the attention term.
"""

from __future__ import annotations

from repro.costmodel.breakdown import Breakdown
from repro.errors import ConfigurationError
from repro.hardware.gpu import GPUSpec
from repro.hardware.interconnect import Interconnect, allreduce_time
from repro.models.config import ModelConfig

ATTN_COMPUTE_EFFICIENCY = 0.6

# Megatron-style layers all-reduce twice per layer under TP.
ALLREDUCES_PER_LAYER = 2


def layer_time(
    model: ModelConfig,
    gpu: GPUSpec,
    fabric: Interconnect,
    tp: int,
    *,
    new_tokens: int,
    context_tokens: int,
    sum_sq_seq_len: float,
    phase: str,
) -> Breakdown:
    """Cost of one decoder layer processing one micro-batch on one GPU.

    Args:
        tp: Tensor-parallel degree sharding this layer.
        new_tokens: Tokens entering the layer in this pass (prompt tokens
            for prefill; one per sequence for decode).
        context_tokens: Total cached tokens attended over, summed across
            the micro-batch (decode attention reads this much KV).
        sum_sq_seq_len: Sum of squared prompt lengths in the micro-batch
            (prefill attention FLOPs are quadratic per sequence).
        phase: ``"prefill"`` or ``"decode"``.

    Returns:
        A :class:`Breakdown` for this single layer.
    """
    if phase not in ("prefill", "decode"):
        raise ConfigurationError(f"unknown phase {phase!r}")
    if new_tokens < 0 or context_tokens < 0 or sum_sq_seq_len < 0:
        raise ConfigurationError("token counts must be non-negative")
    if new_tokens == 0:
        return Breakdown()

    bw = gpu.effective_bandwidth
    flops = gpu.effective_flops

    # Linear projections: weights stream once per pass; FLOPs scale with
    # tokens. TP shards both.
    linear_dm = (model.layer_weight_bytes / tp) / bw
    linear_comp = (
        model.linear_flops_per_token_per_layer() * new_tokens / tp / flops
    )

    # Attention.
    attn_flops_eff = flops * ATTN_COMPUTE_EFFICIENCY
    if phase == "prefill":
        attn_dm = model.qkv_io_bytes_prefill_per_layer(new_tokens) / tp / bw
        attn_comp = (
            2.0 * model.num_heads * model.head_dim * sum_sq_seq_len
        ) / tp / attn_flops_eff
    else:
        attn_dm = model.kv_read_bytes_decode_per_layer(context_tokens) / tp / bw
        attn_comp = (
            4.0 * model.num_heads * model.head_dim * context_tokens
        ) / tp / attn_flops_eff

    # Communication: activations are replicated across TP ranks, so the
    # all-reduced volume is tokens * hidden * dtype regardless of tp.
    comm = 0.0
    if tp > 1:
        act_bytes = new_tokens * model.activation_bytes_per_token()
        comm = ALLREDUCES_PER_LAYER * allreduce_time(fabric, act_bytes, tp)

    return Breakdown(
        linear_dm=linear_dm,
        linear_comp=linear_comp,
        attn_dm=attn_dm,
        attn_comp=attn_comp,
        comm=comm,
        overhead=gpu.kernel_overhead,
    )
