"""Analytical cost model (the paper's Appendix A, executable).

Per-forward-pass time decomposes into linear-layer data movement, linear
compute, attention data movement, attention compute, and communication, with
the roofline combination ``max(T_dm, T_comp)`` per operator class plus the
all-reduce term. The :class:`StepCostModel` facade binds a (model, cluster,
parallel config) triple and answers the questions engines ask: how long is
one prefill micro-batch stage, one decode iteration, one KV swap, one weight
re-shard.
"""

from repro.costmodel.breakdown import Breakdown
from repro.costmodel.roofline import layer_time, ATTN_COMPUTE_EFFICIENCY
from repro.costmodel.pipeline import pipeline_time, steady_state_period
from repro.costmodel.transfer import (
    TransferModel,
    KVLayout,
)
from repro.costmodel.step import StepCostModel

__all__ = [
    "Breakdown",
    "layer_time",
    "ATTN_COMPUTE_EFFICIENCY",
    "pipeline_time",
    "steady_state_period",
    "TransferModel",
    "KVLayout",
    "StepCostModel",
]
