"""Pipeline-parallel timing: ramp-up/drain and steady-state periods.

With ``pp`` stages and ``m`` micro-batches of (approximately) equal stage
time ``t``, total completion time is the classic pipeline formula

    T = (pp - 1 + m) * t

— ``pp - 1`` bubbles to fill the pipeline, then one micro-batch retires per
``t``. In steady state (a long stream of micro-batches), throughput is one
micro-batch per ``t``; a *decode iteration* that advances every in-flight
sequence one token consumes ``pp`` micro-batch slots, which is where the
paper's weight-reload amplification comes from (each device re-streams its
weights once per micro-batch, hence ``pp`` times per global batch).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def pipeline_time(stage_time: float, pp: int, num_microbatches: int) -> float:
    """Completion time of ``num_microbatches`` through ``pp`` equal stages."""
    if pp < 1 or num_microbatches < 0:
        raise ConfigurationError("pp >= 1 and num_microbatches >= 0 required")
    if num_microbatches == 0:
        return 0.0
    return (pp - 1 + num_microbatches) * stage_time


def pipeline_time_heterogeneous(stage_times: Sequence[float], pp: int) -> float:
    """Completion time for micro-batches with *different* stage times.

    The pipeline is rate-limited by each micro-batch's own stage time as it
    marches through; with non-uniform micro-batches the completion time is
    the sum of the per-micro-batch stage times plus the fill bubble of the
    first one: ``sum(t_i) + (pp - 1) * t_last`` is exact for a linear
    pipeline where every stage of micro-batch ``i`` costs ``t_i``.
    """
    if pp < 1:
        raise ConfigurationError("pp >= 1 required")
    times = list(stage_times)
    if not times:
        return 0.0
    return sum(times) + (pp - 1) * times[-1]


def steady_state_period(stage_time: float, pp: int) -> float:
    """Time per decode iteration (all sequences advance one token).

    A global batch is split into ``pp`` mutually-exclusive micro-batches;
    all of them must pass through the last stage, taking ``pp`` stage
    periods in steady state.
    """
    if pp < 1:
        raise ConfigurationError("pp >= 1 required")
    return pp * stage_time
