"""Execution-time breakdown records.

A :class:`Breakdown` carries the five cost components of the paper's
Appendix A for some unit of work (a layer, a stage, an iteration, a whole
run), combined by the roofline rule. Breakdowns support addition and scalar
multiplication so engines can accumulate them across layers, micro-batches
and iterations, and they can be *attributed* into the three categories of
Fig. 1 (communication / compute / weight transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class Breakdown:
    """Roofline cost components, all in seconds.

    ``total`` applies the roofline combination at whatever granularity the
    breakdown was built (sub-additively combining already-summed components
    is an approximation the paper's own model also makes — eq. 2).
    """

    linear_dm: float = 0.0
    linear_comp: float = 0.0
    attn_dm: float = 0.0
    attn_comp: float = 0.0
    comm: float = 0.0
    overhead: float = 0.0

    @property
    def total(self) -> float:
        """Roofline total: max over the linear pair, max over the attention
        pair, plus communication and fixed overhead."""
        return (
            max(self.linear_dm, self.linear_comp)
            + max(self.attn_dm, self.attn_comp)
            + self.comm
            + self.overhead
        )

    def __add__(self, other: "Breakdown") -> "Breakdown":
        return Breakdown(
            linear_dm=self.linear_dm + other.linear_dm,
            linear_comp=self.linear_comp + other.linear_comp,
            attn_dm=self.attn_dm + other.attn_dm,
            attn_comp=self.attn_comp + other.attn_comp,
            comm=self.comm + other.comm,
            overhead=self.overhead + other.overhead,
        )

    def scale(self, k: float) -> "Breakdown":
        """Multiply every component by ``k`` (e.g. layer count)."""
        return Breakdown(
            linear_dm=self.linear_dm * k,
            linear_comp=self.linear_comp * k,
            attn_dm=self.attn_dm * k,
            attn_comp=self.attn_comp * k,
            comm=self.comm * k,
            overhead=self.overhead * k,
        )

    def attributed(self) -> dict[str, float]:
        """Project onto Fig. 1's categories.

        The linear roofline term is attributed to *weight transfer* when it
        is bandwidth-bound and to *compute* otherwise; the attention term is
        attributed to compute (its data movement is KV/activations, not
        weights); all-reduce time is communication.
        """
        linear = max(self.linear_dm, self.linear_comp)
        if self.linear_dm >= self.linear_comp:
            weight, compute = linear, 0.0
        else:
            weight, compute = 0.0, linear
        compute += max(self.attn_dm, self.attn_comp)
        return {
            "communication": self.comm,
            "compute": compute + self.overhead,
            "weight_transfer": weight,
        }

    def as_dict(self) -> dict[str, float]:
        """Raw components plus the roofline total."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["total"] = self.total
        return out


ZERO_BREAKDOWN = Breakdown()
