"""The Seesaw inference engine (Sections 4 and 5 of the paper).

Execution alternates between a *prefill phase* under configuration ``cp``
and a *decode phase* under ``cd``:

1. **Prefill phase** — prompts stream through the (typically pipeline-
   parallel) cluster in micro-batches; each finished prompt's KV is pushed
   to the CPU pool over the d2h channel, overlapped with compute. The phase
   ends when the CPU pool is full, GPU staging space runs out, or no
   prompts remain (transition-minimizing scheduling).
2. **Re-shard** — every GPU reloads its ``cd`` weight shard from CPU
   memory; KV needs no extra pass because the shared CPU pool already holds
   it unsharded (each GPU later pulls its own ``cd`` shard on swap-in).
3. **Decode phase** — continuous batching at the full GPU batch size; the
   prefetcher swaps sequences in from the CPU pool as blocks free up,
   overlapped with decode compute. The phase ends when the pool has
   drained (back to 1) or everything finished.

The ablation flags in :class:`SeesawOptions` disable the tiered buffer,
the overlap pipeline, or transition-minimizing scheduling individually.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator

from repro.core.options import SeesawOptions
from repro.core.state import SeesawState
from repro.costmodel.step import ITERATION_OVERHEAD, StepCostModel
from repro.engines.base import BaseEngine, ReplicaRun, ReplicaState
from repro.errors import CapacityError, ConfigurationError, SchedulingError
from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig, transition_label
from repro.parallel.memory import kv_capacity_tokens
from repro.parallel.resharding import plan_reshard
from repro.runtime.kvcache import KVCacheManager
from repro.runtime.metrics import RunMetrics
from repro.runtime.request import Request, Sequence, SequenceState


class SeesawEngine(BaseEngine):
    """Dynamic model re-sharding engine: ``cp`` for prefill, ``cd`` for decode."""

    name = "seesaw"

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterSpec,
        prefill_config: ParallelConfig,
        decode_config: ParallelConfig,
        options: SeesawOptions | None = None,
    ) -> None:
        if prefill_config.dp != decode_config.dp:
            raise ConfigurationError(
                "Seesaw does not re-shard data parallelism (Section 4.1): "
                f"cp.dp={prefill_config.dp} != cd.dp={decode_config.dp}"
            )
        if prefill_config.num_gpus != decode_config.num_gpus:
            raise ConfigurationError(
                "prefill and decode configurations must occupy the same GPUs"
            )
        super().__init__(model, cluster, decode_config, options or SeesawOptions())
        if not isinstance(self.options, SeesawOptions):
            self.options = SeesawOptions()  # pragma: no cover - defensive
        self.prefill_config = prefill_config
        self.decode_config = decode_config

    def label(self) -> str:
        return transition_label(self.prefill_config, self.decode_config)

    def _decode_costs(self) -> StepCostModel:
        """Cached decode-config cost model (used by preemption)."""
        cached = getattr(self, "_decode_costs_cache", None)
        if cached is None:
            cached = StepCostModel(
                self.model,
                self.cluster,
                replace(self.decode_config, dp=1),
                kv_layout=self.options.kv_layout,
            )
            self._decode_costs_cache = cached
        return cached

    # ------------------------------------------------------------------ #
    # Replica simulation
    # ------------------------------------------------------------------ #

    def _replica_setup(self, requests: list[Request], replica_id: int) -> ReplicaRun:
        opts: SeesawOptions = self.options  # type: ignore[assignment]
        cp = replace(self.prefill_config, dp=1)
        cd = replace(self.decode_config, dp=1)
        capacity = min(
            kv_capacity_tokens(self.model, self.cluster, cp),
            kv_capacity_tokens(self.model, self.cluster, cd),
        )
        kv = KVCacheManager(capacity_tokens=capacity, block_size=opts.block_size)
        cpu_bytes = self.cluster.cpu_memory_per_gpu * cp.model_gpus
        cpu_tokens = (
            int(cpu_bytes // self.model.kv_bytes_per_token)
            if opts.use_cpu_buffer
            else 0
        )
        state = SeesawState(requests, kv, cpu_capacity_tokens=cpu_tokens)
        run = ReplicaRun(replica_id, requests, state, RunMetrics())
        run.cp, run.cd = cp, cd
        run.costs_p = StepCostModel(
            self.model, self.cluster, cp, kv_layout=opts.kv_layout
        )
        run.costs_d = StepCostModel(
            self.model, self.cluster, cd, kv_layout=opts.kv_layout
        )
        run.current = cp  # initial weights are laid out for prefill
        return run

    def _replica_loop(self, run: ReplicaRun, start: float) -> Iterator[float]:
        opts: SeesawOptions = self.options  # type: ignore[assignment]
        state: SeesawState = run.state  # type: ignore[assignment]
        metrics = run.metrics
        cp, cd = run.cp, run.cd
        costs_p, costs_d = run.costs_p, run.costs_d
        now = start

        if not opts.use_cpu_buffer:
            yield from self._no_buffer_loop(run, start)
            return

        while not state.all_work_done:
            run.guard += 1
            if run.guard > 40 * len(run.requests) + 256:
                raise SchedulingError("Seesaw phase loop made no progress")

            state.admit_arrivals(now)
            if self._can_prefill(state) and not self._defer_prefill(state):
                now, run.current = self._reshard(
                    now, run.current, cp, costs_p, metrics, state
                )
                now = yield from self._prefill_phase(state, costs_p, metrics, now)

            if state.running or state.cpu_has_sequences or state.inflight:
                now, run.current = self._reshard(
                    now, run.current, cd, costs_d, metrics, state
                )
                now = yield from self._decode_phase(state, costs_d, metrics, now)
            elif state.waiting and not self._can_prefill(state):
                head = state.waiting[0]
                raise CapacityError(
                    f"prompt of {head.remaining_prefill} tokens fits neither the "
                    f"CPU pool ({state.cpu.capacity_tokens} tokens) nor GPU KV "
                    f"({state.kv.capacity_tokens} tokens)"
                )
            elif state.pending and (not state.waiting or self._defer_prefill(state)):
                # Transition-minimizing under live traffic: with nothing
                # decodable and nothing arrived (or a prefill batch still
                # worth growing), keep the current sharding and sleep until
                # the next arrival (re-sharding now could only add a
                # transition the arrival may not need).
                now = self.idle_advance(state, metrics, now)
                yield now

    # ------------------------------------------------------------------ #
    # Phase predicates and transitions
    # ------------------------------------------------------------------ #

    def _can_prefill(self, state: SeesawState) -> bool:
        """Whether the prefill phase could make progress right now."""
        if not state.waiting:
            return False
        head = state.waiting[0]
        need = head.remaining_prefill + 1
        return state.cpu.fits(need) and state.kv.can_allocate(need)

    def _transition_time(self) -> float:
        """One decode->prefill weight re-shard's transfer time (cached)."""
        cached = getattr(self, "_transition_time_cache", None)
        if cached is None:
            opts: SeesawOptions = self.options  # type: ignore[assignment]
            plan = plan_reshard(
                self.model,
                replace(self.decode_config, dp=1),
                replace(self.prefill_config, dp=1),
                reuse_overlap=opts.reuse_weight_overlap,
            )
            cached = plan.transfer_time(self.cluster)
            self._transition_time_cache = cached
        return cached

    def _defer_prefill(self, state: SeesawState) -> bool:
        """Wait-vs-re-shard decision under live traffic.

        When the objective layer told this engine the predicted arrival
        rate, defer the prefill re-shard while (a) more requests are still
        en route and (b) the arrivals expected within one transition time
        outnumber the batch currently waiting — waiting that long roughly
        doubles the batch the transition amortizes over, while at low
        rates (fewer than one expected arrival per transition) prefill
        starts immediately. Consulted only for real transitions: a
        degenerate (cp == cd) pair never re-shards, so never waits.
        """
        opts: SeesawOptions = self.options  # type: ignore[assignment]
        rate = opts.arrival_rate
        if rate is None or not state.pending:
            return False
        if self.prefill_config == self.decode_config:
            return False
        expected = rate * self._transition_time()
        return len(state.waiting) < expected

    def _reshard(
        self,
        now: float,
        current: ParallelConfig,
        target: ParallelConfig,
        costs: StepCostModel,
        metrics: RunMetrics,
        state: SeesawState,
    ) -> tuple[float, ParallelConfig]:
        """Switch the cluster's sharding to ``target`` if needed.

        The weight reload shares the host links with KV traffic, so it
        waits for both channels to drain; reloads then run in parallel
        across GPUs.
        """
        opts: SeesawOptions = self.options  # type: ignore[assignment]
        if current == target:
            return now, current
        plan = plan_reshard(
            self.model, current, target, reuse_overlap=opts.reuse_weight_overlap
        )
        start = max(now, state.d2h.free_at, state.h2d.free_at)
        elapsed = (start - now) + plan.transfer_time(self.cluster)
        self.record_event(
            "reshard", now, elapsed, resident_seqs=len(state.running)
        )
        metrics.add_phase("reshard", elapsed)
        metrics.transitions += 1
        metrics.resharded_bytes += plan.total_transfer_bytes
        now = now + elapsed
        state.d2h.idle_until(now)
        state.h2d.idle_until(now)
        return now, target

    # ------------------------------------------------------------------ #
    # Prefill phase
    # ------------------------------------------------------------------ #

    def _prefill_phase(
        self, state: SeesawState, costs: StepCostModel, metrics: RunMetrics, now: float
    ) -> Iterator[float]:
        """Stream prefill micro-batches until the CPU pool fills (or GPU
        staging or the request queue runs out). KV swap-outs ride the d2h
        channel; with the async pipeline the phase only waits for them at
        the end (the re-shard needs quiesced links).

        A generator: yields the clock at every micro-batch boundary (and
        once more at the phase end) and returns the final clock."""
        opts: SeesawOptions = self.options  # type: ignore[assignment]
        pp = costs.config.pp
        last_stage_total = 0.0
        processed_any = False

        while True:
            # Prompts that arrived while earlier micro-batches ran join the
            # same phase — amortizing the upcoming re-shard over them is
            # exactly transition-minimizing scheduling under live traffic.
            state.admit_arrivals(now)
            if not state.waiting:
                break
            microbatch = self._admit_prefill_microbatch(state)
            if not microbatch:
                break
            for seq in microbatch:
                seq.mark_scheduled(now)
            lens = [s.remaining_prefill for s in microbatch]
            stage = costs.prefill_stage_time(lens)
            last_stage_total = stage.total
            # Steady-state stream: one micro-batch retires per stage time.
            elapsed = stage.total + ITERATION_OVERHEAD
            self.record_event(
                "prefill",
                now,
                elapsed,
                num_seqs=len(microbatch),
                tokens=sum(lens),
                resident_seqs=len(state.running),
            )
            now += elapsed
            metrics.add_phase("prefill", elapsed, stage.scale(pp))
            metrics.iterations += 1
            processed_any = True

            swap_tokens = 0
            tr = self.options.tracing
            for seq in microbatch:
                seq.advance_prefill(seq.remaining_prefill)
                seq.prefill_end_time = now
                seq.mark_first_token(now)
                if tr is not None:
                    tr.note_resume(now, seq.seq_id)
                if seq.remaining_decode == 0:
                    # Prefill produced the only requested token; no reason
                    # to park the KV for a decode that will never happen.
                    state.kv.free(seq.seq_id)
                    seq.mark_finished(now)
                    state.finished.append(seq)
                    continue
                if self.prefill_config == self.decode_config:
                    # Degenerate pair: nothing will be re-sharded, so the
                    # KV can stay resident and decode directly (the CPU
                    # pool is still available to absorb overflow via
                    # preemption). This recovers plain continuous batching.
                    seq.state = SequenceState.RUNNING
                    state.start_running(seq)
                    continue
                state.kv.free(seq.seq_id)
                parked = seq.prefill_target
                seq.state = SequenceState.PREFILLED_CPU
                state.park_in_cpu(seq, parked)
                swap_tokens += parked
            swap_t = costs.kv_swap_time(swap_tokens)
            if swap_tokens:
                self.record_event(
                    "swap_out", now, swap_t, num_seqs=len(microbatch), tokens=swap_tokens
                )
            if opts.overlap_swap:
                state.d2h.submit(now, swap_t)
            else:
                now = state.d2h.submit(now, swap_t)
            metrics.swapped_out_tokens += swap_tokens
            yield now

            if opts.eager_transitions:
                break  # Fig. 2(a) ablation: hop back to decode immediately

        if processed_any and pp > 1:
            # Drain the pipeline for the final micro-batch.
            ramp = (pp - 1) * last_stage_total
            self.record_event("prefill", now, ramp)
            now += ramp
            metrics.add_phase("prefill", ramp)
        if opts.overlap_swap and state.d2h.free_at > now:
            # Swap-outs that outlived compute stall the transition.
            stall = state.d2h.free_at - now
            self.record_event("stall", now, stall)
            metrics.add_phase("swap_stall", stall)
            now = state.d2h.free_at
        yield now
        return now

    def _admit_prefill_microbatch(self, state: SeesawState) -> list[Sequence]:
        """Pull waiting prompts into one micro-batch, bounded by the token
        budget, GPU staging space and CPU pool space."""
        opts: SeesawOptions = self.options  # type: ignore[assignment]
        microbatch: list[Sequence] = []
        used = 0
        cpu_pending = 0  # tokens this micro-batch will park in the CPU pool
        while state.waiting:
            seq = state.waiting[0]
            tokens = seq.remaining_prefill
            need = tokens + 1
            if microbatch and used + tokens > opts.max_batched_tokens:
                break
            if not state.cpu.fits(cpu_pending + seq.prefill_target):
                break
            if not state.kv.can_allocate(need):
                break
            state.kv.allocate(seq.seq_id, need)
            state.waiting.popleft()
            seq.state = SequenceState.PREFILLING
            microbatch.append(seq)
            used += tokens
            cpu_pending += seq.prefill_target
            if used >= opts.max_batched_tokens:
                break
        if microbatch:
            state.prefill_epoch += 1
        return microbatch

    # ------------------------------------------------------------------ #
    # Decode phase
    # ------------------------------------------------------------------ #

    def _decode_phase(
        self, state: SeesawState, costs: StepCostModel, metrics: RunMetrics, now: float
    ) -> Iterator[float]:
        """Continuous batching with the swap-in prefetcher until the CPU
        pool drains (then back to prefill if work remains) or every
        resident sequence finishes.

        A generator: yields the clock after every decode iteration (and
        once more at the phase end) and returns the final clock."""
        opts: SeesawOptions = self.options  # type: ignore[assignment]
        state.h2d.idle_until(now)

        while True:
            state.admit_arrivals(now)
            now = self._launch_prefetches(state, costs, metrics, now)
            tr = self.options.tracing
            for seq in state.arrived_inflight(now):
                seq.state = SequenceState.RUNNING
                state.start_running(seq)
                if tr is not None:
                    tr.note_resume(now, seq.seq_id)
            state.finish_ready(now)

            if not state.running:
                if state.inflight:
                    stall = state.next_arrival - now
                    if stall > 0:
                        self.record_event("stall", now, stall)
                        metrics.add_phase("swap_stall", stall)
                        now = state.next_arrival
                    continue
                if state.cpu_has_sequences:
                    raise CapacityError(
                        "CPU pool holds sequences the GPU KV cache cannot fit"
                    )
                break

            now = self.decode_step(state, costs, metrics, now)
            yield now

            if (
                not state.cpu_has_sequences
                and not state.inflight
                and state.waiting
                and not opts.eager_transitions
            ):
                if self._can_prefill(state) and not self._defer_prefill(state):
                    break  # transition-minimizing: pool drained, go prefill
            if opts.eager_transitions and state.waiting and self._can_prefill(state):
                break  # Fig. 2(a) ablation: eager hop to prefill
            if not state.running and not state.inflight and not state.cpu_has_sequences:
                break
        yield now
        return now

    def _launch_prefetches(
        self, state: SeesawState, costs: StepCostModel, metrics: RunMetrics, now: float
    ) -> float:
        """Start swap-ins for CPU-pooled sequences while GPU blocks last.

        Admission keeps :attr:`SeesawOptions.staging_tokens` free so the
        next prefill phase has working space even with decodes resident.
        Returns the (possibly advanced) clock — synchronous transfers block
        compute when the async pipeline is disabled.
        """
        opts: SeesawOptions = self.options  # type: ignore[assignment]
        while state.cpu_has_sequences:
            if len(state.running) + len(state.inflight) >= opts.max_num_seqs:
                break
            _, tokens = state.cpu.peek()
            need = tokens + 1
            if state.kv.free_tokens - need < opts.staging_tokens and (
                state.running or state.inflight
            ):
                break
            if not state.kv.can_allocate(need):
                break
            seq, _ = state.pop_cpu_head()
            state.kv.allocate(seq.seq_id, need)
            seq.state = SequenceState.SWAPPING_IN
            swap_t = costs.kv_swap_time(tokens)
            self.record_event("swap_in", now, swap_t, num_seqs=1, tokens=tokens)
            arrival = state.h2d.submit(now, swap_t)
            if not opts.overlap_swap:
                self.record_event("stall", now, arrival - now, num_seqs=1)
                metrics.add_phase("swap_stall", arrival - now)
                now = arrival
            state.inflight.append((seq, arrival))
            metrics.swapped_in_tokens += tokens
        return now

    # ------------------------------------------------------------------ #
    # Preemption: swap out to the CPU pool instead of recompute
    # ------------------------------------------------------------------ #

    def preempt(
        self, state: ReplicaState, victim: Sequence, now: float, metrics: RunMetrics
    ) -> None:
        """Seesaw preempts by swapping the victim's KV back to the CPU pool
        (it rejoins FIFO later); recompute is the fallback if the pool is
        full."""
        assert isinstance(state, SeesawState)
        state.drop_slots()
        state.prefill_epoch += 1
        tokens = victim.context_len
        state.kv.free(victim.seq_id)
        state.running.remove(victim)
        victim.num_preemptions += 1
        metrics.preemptions += 1
        if state.cpu.fits(tokens):
            victim.state = SequenceState.PREFILLED_CPU
            state.park_in_cpu(victim, tokens)
            swap_t = self._decode_costs().kv_swap_time(tokens)
            state.d2h.submit(now, swap_t)
            metrics.swapped_out_tokens += tokens
            stall_kind = "swap"
        else:
            victim.preempt_recompute()
            state.waiting.appendleft(victim)
            stall_kind = "recompute"
        tr = self.options.tracing
        if tr is not None:
            tr.note_preempt(now, victim.seq_id, stall_kind)

    # ------------------------------------------------------------------ #
    # Ablation: no CPU buffer (re-sharding with decode-prioritized batches)
    # ------------------------------------------------------------------ #

    def _no_buffer_loop(self, run: ReplicaRun, start: float) -> Iterator[float]:
        """Without tiered buffering, re-sharding can only amortize over the
        sequences GPU memory holds at once: admit a GPU-sized batch,
        prefill under cp, re-shard, decode it to completion, re-shard back.

        A generator over the same iteration boundaries as the buffered
        loop (prefill waves, re-shards, decode iterations, idle jumps)."""
        state: SeesawState = run.state  # type: ignore[assignment]
        metrics = run.metrics
        cp, cd = run.cp, run.cd
        costs_p, costs_d = run.costs_p, run.costs_d
        now = start
        while state.has_work:
            state.admit_arrivals(now)
            if not state.waiting and not state.running:
                now = self.idle_advance(state, metrics, now)
                yield now
                continue
            now, run.current = self._reshard(
                now, run.current, cp, costs_p, metrics, state
            )
            admitted: list[Sequence] = []
            while state.waiting and len(admitted) < self.options.max_num_seqs:
                seq = state.waiting[0]
                if not state.kv.can_allocate(seq.final_context_len):
                    break
                state.kv.allocate(seq.seq_id, seq.final_context_len)
                state.waiting.popleft()
                seq.mark_scheduled(now)
                admitted.append(seq)
            if not admitted and not state.running:
                head = state.waiting[0]
                raise CapacityError(
                    f"request needs {head.final_context_len} KV tokens, "
                    f"capacity {state.kv.capacity_tokens}"
                )
            microbatches = self.form_prefill_microbatches(admitted)
            wall, device = self.prefill_time(costs_p, microbatches)
            self.record_event(
                "prefill",
                now,
                wall,
                num_seqs=len(admitted),
                tokens=sum(s.remaining_prefill for s in admitted),
                resident_seqs=len(state.running) + len(admitted),
            )
            now += wall
            metrics.add_phase("prefill", wall, device)
            for seq in admitted:
                seq.advance_prefill(seq.remaining_prefill)
                seq.state = SequenceState.RUNNING
                seq.prefill_end_time = now
                seq.mark_first_token(now)
                state.start_running(seq)
            tr = self.options.tracing
            if tr is not None:
                for seq in admitted:
                    tr.note_resume(now, seq.seq_id)
            state.finish_ready(now)
            now, run.current = self._reshard(
                now, run.current, cd, costs_d, metrics, state
            )
            yield now
            while state.running:
                now = self.decode_step(state, costs_d, metrics, now)
                yield now
