"""Seesaw-specific options, extending the shared engine options.

Every flag here corresponds to a design decision called out in DESIGN.md's
ablation list; the defaults reproduce the paper's system, and the
benchmarks flip them one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.base import EngineOptions
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SeesawOptions(EngineOptions):
    """Knobs of the Seesaw engine.

    Attributes:
        overlap_swap: Run KV swap-in/out on the asynchronous pipeline
            (Section 5.2). Off = every transfer blocks compute.
        use_cpu_buffer: Tiered KV cache buffering (Section 4.2). Off =
            re-sharding falls back to decode-prioritized batches sized by
            GPU memory alone.
        eager_transitions: Ablation of transition-minimizing scheduling:
            switch stages eagerly the way prefill-prioritized continuous
            batching would (Fig. 2(a) behaviour, exposing re-shard cost).
        reuse_weight_overlap: Skip reloading weight bytes a GPU already
            holds after the switch (shard-reuse optimization; the paper's
            implementation reloads the full shard from CPU memory).
        prefill_staging_tokens: GPU KV tokens kept free for the prefill
            working set while decode sequences stay resident. ``None``
            defaults to 2x the prefill micro-batch token budget.
        arrival_rate: Predicted offered request rate (req/s) of the live
            traffic, as estimated by the autotuner's serving objective.
            When set, the phase loop consults it before re-sharding to
            prefill: if more arrivals are expected within one transition
            time than are currently waiting, it waits for them so the
            re-shard amortizes over a larger prefill batch
            (transition-minimizing scheduling under live traffic).
            ``None`` (the default) keeps the seed's phase behaviour.
    """

    overlap_swap: bool = True
    use_cpu_buffer: bool = True
    eager_transitions: bool = False
    reuse_weight_overlap: bool = False
    prefill_staging_tokens: int | None = None
    arrival_rate: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if (
            self.prefill_staging_tokens is not None
            and self.prefill_staging_tokens < 0
        ):
            raise ConfigurationError("prefill_staging_tokens must be >= 0")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")

    @property
    def staging_tokens(self) -> int:
        if self.prefill_staging_tokens is not None:
            return self.prefill_staging_tokens
        return 2 * self.max_batched_tokens
