"""Seesaw replica state: GPU KV, CPU buffer, transfer channels.

Extends the shared :class:`ReplicaState` with the tiered-buffering
machinery: the CPU KV pool (with a sequence lookup, since the pool stores
ids), the d2h/h2d transfer channels of the async pipeline, and the list of
in-flight prefetches.
"""

from __future__ import annotations

from typing import Iterable

from repro.engines.base import ReplicaState
from repro.errors import SimulationError
from repro.runtime.channel import TransferChannel
from repro.runtime.cpu_buffer import CPUKVBuffer
from repro.runtime.kvcache import KVCacheManager
from repro.runtime.request import Request, Sequence


class SeesawState(ReplicaState):
    """Scheduling state of one Seesaw replica."""

    def __init__(
        self,
        requests: Iterable[Request],
        kv: KVCacheManager,
        cpu_capacity_tokens: int,
    ) -> None:
        super().__init__(requests, kv)
        self.cpu = CPUKVBuffer(capacity_tokens=cpu_capacity_tokens)
        self.d2h = TransferChannel("d2h")
        self.h2d = TransferChannel("h2d")
        # seq_id -> Sequence for entries parked in the CPU pool.
        self.cpu_seqs: dict[int, Sequence] = {}
        # (sequence, arrival_time) prefetches in flight.
        self.inflight: list[tuple[Sequence, float]] = []

    # ------------------------------------------------------------------ #

    def park_in_cpu(self, seq: Sequence, tokens: int) -> None:
        """Record a sequence's KV landing in the CPU pool."""
        self.cpu.push(seq.seq_id, tokens)
        self.cpu_seqs[seq.seq_id] = seq

    def pop_cpu_head(self) -> tuple[Sequence, int]:
        """Remove and return the FIFO head of the CPU pool."""
        seq_id, tokens = self.cpu.pop()
        seq = self.cpu_seqs.pop(seq_id, None)
        if seq is None:
            raise SimulationError(f"CPU pool entry {seq_id} has no sequence")
        return seq, tokens

    @property
    def cpu_has_sequences(self) -> bool:
        return not self.cpu.is_empty

    @property
    def all_work_done(self) -> bool:
        return (
            not self.pending
            and not self.waiting
            and not self.running
            and not self.inflight
            and self.cpu.is_empty
        )

    @property
    def has_immediate_work(self) -> bool:
        """Seesaw can also act on CPU-parked and in-flight sequences."""
        return bool(
            self.waiting or self.running or self.inflight or not self.cpu.is_empty
        )

    @property
    def unfinished(self) -> bool:
        return not self.all_work_done

    def live_sequences(self):
        yield from super().live_sequences()
        yield from self.cpu_seqs.values()
        for seq, _ in self.inflight:
            yield seq

    def arrived_inflight(self, now: float) -> list[Sequence]:
        """Pop prefetches whose transfer has completed by ``now``."""
        done = [(s, t) for (s, t) in self.inflight if t <= now + 1e-12]
        self.inflight = [(s, t) for (s, t) in self.inflight if t > now + 1e-12]
        return [s for (s, _) in done]

    @property
    def next_arrival(self) -> float:
        if not self.inflight:
            raise SimulationError("no prefetches in flight")
        return min(t for (_, t) in self.inflight)
