"""Seesaw: the paper's primary contribution.

:class:`SeesawEngine` runs prefill and decode under *different* parallel
configurations, switching between them with dynamic model re-sharding
(Section 4.1). Tiered KV cache buffering parks prefilled KV in CPU memory
and transition-minimizing scheduling switches stages only when that buffer
fills or drains (Section 4.2); the asynchronous swap pipeline overlaps the
resulting transfers with computation (Section 5.2).
"""

from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.core.state import SeesawState

__all__ = ["SeesawEngine", "SeesawOptions", "SeesawState"]
