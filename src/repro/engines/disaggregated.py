"""DistServe/Mooncake-style spatial prefill-decode disaggregation.

The cluster is split into a prefill pool and a decode pool, each with its
own parallel configuration; prefilled KV flows from one to the other. The
two pools form a two-stage pipeline, so steady-state throughput is the
minimum of the stages — the Section 3.2 analysis this module exists to
reproduce: in resource-constrained deployments (70B on eight 40 GiB GPUs)
the only feasible split is 4+4, the stages mismatch by ~6x, and the decode
pool at 4 GPUs reaches only a fraction of 8-GPU decode throughput because
the duplicated weights crowd out KV space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator

from repro.costmodel.pipeline import pipeline_time_heterogeneous
from repro.costmodel.step import ITERATION_OVERHEAD, StepCostModel
from repro.engines.base import BaseEngine, EngineOptions, ReplicaRun, ReplicaState
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.memory import fits, kv_capacity_tokens
from repro.routing import RouterContext, RoutingPlan, make_router
from repro.runtime.latency import LatencyStats, RequestLatency
from repro.runtime.metrics import EngineResult, RunMetrics
from repro.runtime.request import Request, SequenceState
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class DisaggregationPlan:
    """GPU split and per-pool configurations."""

    prefill_config: ParallelConfig
    decode_config: ParallelConfig

    @property
    def prefill_gpus(self) -> int:
        return self.prefill_config.num_gpus

    @property
    def decode_gpus(self) -> int:
        return self.decode_config.num_gpus

    @property
    def total_gpus(self) -> int:
        return self.prefill_gpus + self.decode_gpus

    def label(self) -> str:
        return f"{self.prefill_config.label()}|{self.decode_config.label()}"


@dataclass(frozen=True)
class DisaggregationAnalysis:
    """Per-stage throughputs behind a disaggregated run (Fig. 4 data)."""

    prefill_time: float
    decode_time: float
    prefill_throughput_rps: float
    decode_throughput_rps: float

    @property
    def mismatch_ratio(self) -> float:
        """How much faster the faster stage is (>= 1)."""
        hi = max(self.prefill_throughput_rps, self.decode_throughput_rps)
        lo = min(self.prefill_throughput_rps, self.decode_throughput_rps)
        return hi / lo


class _DecodeOnlyEngine(BaseEngine):
    """Decode pool: sequences arrive prefilled; continuous batching with
    full-length reservations (no prefill resource to recompute on)."""

    name = "decode-pool"

    def _replica_setup(self, requests: list[Request], replica_id: int) -> ReplicaRun:
        state = ReplicaState(requests, self.make_kv())
        run = ReplicaRun(replica_id, requests, state, RunMetrics())
        run.costs = self.make_costs()
        return run

    def _replica_loop(self, run: ReplicaRun, start: float) -> Iterator[float]:
        state, costs, metrics = run.state, run.costs, run.metrics
        now = start
        while state.has_work:
            state.admit_arrivals(now)
            while (
                state.waiting
                and len(state.running) < self.options.max_num_seqs
                and state.kv.can_allocate(state.waiting[0].final_context_len)
            ):
                seq = state.waiting.popleft()
                state.kv.allocate(seq.seq_id, seq.final_context_len)
                seq.mark_scheduled(now)
                seq.advance_prefill(seq.remaining_prefill)
                seq.state = SequenceState.RUNNING
                seq.mark_first_token(now)
                state.start_running(seq)
            if not state.running:
                if state.waiting:
                    head = state.waiting[0]
                    raise CapacityError(
                        f"request needs {head.final_context_len} KV tokens, "
                        f"capacity {state.kv.capacity_tokens}"
                    )
                now = self.idle_advance(state, metrics, now)
                yield now
                continue
            state.finish_ready(now)
            if state.running:
                now = self.decode_step(state, costs, metrics, now)
            yield now

    def _replica_result(self, run: ReplicaRun, total_time: float) -> EngineResult:
        return self.result_from(
            run.requests, run.metrics, max(total_time, 1e-9), finished=run.state.finished
        )


class DisaggregatedEngine:
    """Two-pool disaggregated engine with the standard engine ``run`` API."""

    name = "disagg"

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterSpec,
        plan: DisaggregationPlan,
        options: EngineOptions | None = None,
    ) -> None:
        if plan.total_gpus > cluster.num_gpus:
            raise ConfigurationError(
                f"plan uses {plan.total_gpus} GPUs, cluster has {cluster.num_gpus}"
            )
        self.model = model
        self.cluster = cluster
        self.plan = plan
        self.options = options or EngineOptions()
        self._prefill_cluster = replace(cluster, num_gpus=plan.prefill_gpus)
        self._decode_cluster = replace(cluster, num_gpus=plan.decode_gpus)
        for sub_cluster, cfg, role in (
            (self._prefill_cluster, plan.prefill_config, "prefill"),
            (self._decode_cluster, plan.decode_config, "decode"),
        ):
            if not fits(model, sub_cluster, cfg):
                raise CapacityError(
                    f"{model.name} does not fit the {role} pool under {cfg.label()}"
                )

    def label(self) -> str:
        return self.plan.label()

    # ------------------------------------------------------------------ #

    def _prefill_pool_plan(self, workload: WorkloadSpec) -> RoutingPlan:
        """Route the prompts across the prefill pool's DP replicas.

        The pool does no decode work, so its router context drains decode
        tokens instantly (``inf`` rate); prefill drains at one budget-sized
        micro-batch per stage period.
        """
        cfg = self.plan.prefill_config
        replica_cfg = replace(cfg, dp=1)
        costs = StepCostModel(self.model, self._prefill_cluster, replica_cfg)
        budget = self.options.max_batched_tokens
        context = RouterContext(
            prefill_tokens_per_s=budget / costs.prefill_stage_time([budget]).total,
            decode_tokens_per_s=math.inf,
            kv_capacity_tokens=kv_capacity_tokens(
                self.model, self._prefill_cluster, replica_cfg
            ),
            ttft_slo=self.options.ttft_slo,
            tpot_slo=self.options.tpot_slo,
        )
        router = make_router(
            self.options.router,
            cfg.dp,
            context=context,
            seed=self.options.router_seed,
        )
        return router.route(list(workload.requests))

    def prefill_pool_time(
        self, workload: WorkloadSpec, pool_plan: RoutingPlan | None = None
    ) -> float:
        """Wall time for the prefill pool to process every prompt.

        Prefilled KV leaves for the decode pool immediately, so the pool
        streams micro-batches continuously; per DP replica of the pool the
        stream pipelines across its PP stages. ``pool_plan`` lets callers
        that already routed the workload skip re-routing it.
        """
        cfg = self.plan.prefill_config
        parts = (pool_plan or self._prefill_pool_plan(workload)).partitions
        replica_cfg = replace(cfg, dp=1)
        costs = StepCostModel(self.model, self._prefill_cluster, replica_cfg)
        times = []
        for part in parts:
            if not part:
                continue
            lens = [r.prompt_len for r in part]
            budget = self.options.max_batched_tokens
            micro: list[list[int]] = [[]]
            used = 0
            for ln in lens:
                if micro[-1] and used + ln > budget:
                    micro.append([])
                    used = 0
                micro[-1].append(ln)
                used += ln
            stage_times = [costs.prefill_stage_time(m).total for m in micro]
            wall = pipeline_time_heterogeneous(stage_times, replica_cfg.pp)
            wall += ITERATION_OVERHEAD * len(micro)
            times.append(wall)
        return max(times) if times else 0.0

    def decode_pool_result(self, workload: WorkloadSpec) -> EngineResult:
        """Decode-pool completion summary for already-prefilled requests."""
        engine = _DecodeOnlyEngine(
            self.model,
            self._decode_cluster,
            self.plan.decode_config,
            # The pool run is an internal building block (called more than
            # once per disaggregated run); only the joint result folds into
            # the telemetry hub / tracer, in :meth:`run`.
            replace(self.options, telemetry=None, tracing=None)
            if self.options.telemetry is not None or self.options.tracing is not None
            else self.options,
        )
        return engine.run(workload)

    def analyze(self, workload: WorkloadSpec) -> DisaggregationAnalysis:
        """Per-stage throughputs (the Fig. 4 bar data)."""
        tp_time = self.prefill_pool_time(workload)
        td = self.decode_pool_result(workload)
        n = workload.num_requests
        return DisaggregationAnalysis(
            prefill_time=tp_time,
            decode_time=td.total_time,
            prefill_throughput_rps=n / tp_time if tp_time > 0 else float("inf"),
            decode_throughput_rps=td.throughput_rps,
        )

    def _prefill_pool_schedule(
        self, workload: WorkloadSpec, pool_plan: RoutingPlan | None = None
    ) -> tuple[dict[int, tuple[float, float]], float]:
        """Arrival-aware prefill-pool schedule: request_id -> (batch start,
        prefill completion) on the joint virtual clock, plus the pool's
        busy time (slowest replica's total stage occupancy).

        Per DP replica of the pool, prompts stream through in arrival
        order as greedy micro-batches under the token budget; a micro-batch
        starts when the previous one retires and its prompts have arrived
        (the pool idles on an empty queue). Completion of micro-batch ``k``
        is the pipeline fill of the first batch plus the cumulative stage
        times — consistent with :meth:`prefill_pool_time`'s streaming model.
        """
        cfg = self.plan.prefill_config
        replica_cfg = replace(cfg, dp=1)
        costs = StepCostModel(self.model, self._prefill_cluster, replica_cfg)
        budget = self.options.max_batched_tokens
        fill_stages = replica_cfg.pp - 1
        schedule: dict[int, tuple[float, float]] = {}
        busy_time = 0.0
        for part in (pool_plan or self._prefill_pool_plan(workload)).partitions:
            if not part:
                continue
            queue = sorted(part, key=lambda r: r.arrival_time)
            free_at = 0.0
            replica_busy = 0.0
            i = 0
            while i < len(queue):
                start = max(free_at, queue[i].arrival_time)
                batch = [queue[i]]
                used = queue[i].prompt_len
                i += 1
                # Batch up everything that has arrived by the start time.
                while (
                    i < len(queue)
                    and queue[i].arrival_time <= start + 1e-12
                    and used + queue[i].prompt_len <= budget
                ):
                    batch.append(queue[i])
                    used += queue[i].prompt_len
                    i += 1
                stage = costs.prefill_stage_time([r.prompt_len for r in batch]).total
                done = start + (1 + fill_stages) * stage + ITERATION_OVERHEAD
                free_at = start + stage + ITERATION_OVERHEAD
                replica_busy += stage + ITERATION_OVERHEAD
                for r in batch:
                    schedule[r.request_id] = (start, done)
            busy_time = max(busy_time, replica_busy)
        return schedule, busy_time

    def _joint_latency(
        self, workload: WorkloadSpec, pool_plan: RoutingPlan | None = None
    ) -> tuple[LatencyStats, EngineResult, float]:
        """Simulate the two pools as a pipeline at request granularity.

        Prefill completions become the decode pool's arrival process; the
        (event-driven) decode pool then yields per-request finish times.
        Returns the joint latency records, the gated decode-pool result,
        and the prefill pool's busy time.
        """
        schedule, prefill_busy = self._prefill_pool_schedule(workload, pool_plan)
        gated = WorkloadSpec(
            name=f"{workload.name}+prefilled",
            requests=tuple(
                replace(r, arrival_time=schedule[r.request_id][1])
                for r in workload.requests
            ),
        )
        decode_result = self.decode_pool_result(gated)
        assert decode_result.latency is not None
        finish = {r.request_id: r.finish_time for r in decode_result.latency.records}
        records = tuple(
            RequestLatency(
                request_id=r.request_id,
                arrival_time=r.arrival_time,
                first_schedule_time=schedule[r.request_id][0],
                first_token_time=schedule[r.request_id][1],
                finish_time=max(finish[r.request_id], schedule[r.request_id][1]),
                output_len=r.output_len,
            )
            for r in workload.requests
        )
        return LatencyStats(records=records), decode_result, prefill_busy

    def run(self, workload: WorkloadSpec) -> EngineResult:
        """End-to-end run: the two pools overlap as a two-stage pipeline.

        Offline (every arrival at 0) the completion time keeps the seed's
        steady-state bound — the slower pool plus the fill time of the
        first prefill batch; per-request latency additionally comes from
        the request-granular pipeline simulation. Under an arrival process
        the steady-state bound no longer applies, so the run *is* the joint
        simulation: total time is when the gated decode pool finishes the
        last request.
        """
        pool_plan = self._prefill_pool_plan(workload)
        latency, gated_decode, prefill_busy = self._joint_latency(workload, pool_plan)
        tr = self.options.tracing
        if tr is not None:
            self._note_trace_marks(tr, pool_plan, latency, gated_decode)
        online = any(r.arrival_time > 0 for r in workload.requests)
        if online:
            phase = dict(gated_decode.phase_time)
            phase["prefill"] = prefill_busy
            return self._fold_telemetry(EngineResult(
                engine=self.name,
                label=self.label(),
                num_requests=workload.num_requests,
                total_time=max(
                    gated_decode.total_time,
                    max(r.finish_time for r in latency.records),
                ),
                input_tokens=workload.total_input_tokens,
                output_tokens=workload.total_output_tokens,
                phase_time=phase,
                breakdown=gated_decode.breakdown,
                iterations=gated_decode.iterations,
                transitions=0,
                latency=latency,
                # The decode pool's dispatch record (decode dominates the
                # serving latency; the prefill pool re-routes upstream).
                router=gated_decode.router,
            ))
        # Offline: the gated decode run degenerates to the seed's
        # decode-pool run shifted by prefill completions; the seed bound
        # still needs the unshifted decode time, simulated once here.
        prefill_time = self.prefill_pool_time(workload, pool_plan)
        decode_result = self.decode_pool_result(workload)
        first = workload.requests[0]
        costs = StepCostModel(
            self.model,
            self._prefill_cluster,
            replace(self.plan.prefill_config, dp=1),
        )
        fill = costs.prefill_pass_time([first.prompt_len]).total
        total = max(prefill_time, decode_result.total_time) + fill
        return self._fold_telemetry(EngineResult(
            engine=self.name,
            label=self.label(),
            num_requests=workload.num_requests,
            total_time=total,
            input_tokens=workload.total_input_tokens,
            output_tokens=workload.total_output_tokens,
            phase_time={
                "prefill": prefill_time,
                "decode": decode_result.total_time,
            },
            breakdown=decode_result.breakdown,
            iterations=decode_result.iterations,
            transitions=0,
            latency=latency,
            router=decode_result.router,
        ))

    def _note_trace_marks(
        self,
        tr,
        pool_plan: RoutingPlan,
        latency: LatencyStats,
        gated_decode: EngineResult,
    ) -> None:
        """Record dispatch + KV-handoff marks for the joint pipeline run.

        Prefill-pool replicas are tracks ``0..dp_p-1``; the decode pool is
        track ``dp_p``. The handoff happens at prefill completion (=first
        token); the decode pool's admission time bounds the transfer-wait
        segment when the gated run recorded one.
        """
        dp_p = self.plan.prefill_config.dp
        prefill_replica: dict[int, int] = {}
        for i, part in enumerate(pool_plan.partitions):
            for r in part:
                prefill_replica[r.request_id] = i
        decode_sched: dict[int, float] = {}
        if gated_decode.latency is not None:
            decode_sched = {
                r.request_id: r.first_schedule_time
                for r in gated_decode.latency.records
            }
        for rec in latency.records:
            rid = rec.request_id
            src = prefill_replica.get(rid, 0)
            tr.note_dispatch(rec.arrival_time, rid, src)
            done = rec.first_token_time
            tr.note_handoff(done, rid, src, dp_p, until=decode_sched.get(rid))

    def _fold_telemetry(self, result: EngineResult) -> EngineResult:
        tel = self.options.telemetry
        if tel is not None:
            tel.fold_result(
                result, ttft_slo=self.options.ttft_slo, tpot_slo=self.options.tpot_slo
            )
        tr = self.options.tracing
        if tr is not None:
            traces = tr.finalize(
                result, ttft_slo=self.options.ttft_slo, tpot_slo=self.options.tpot_slo
            )
            if tel is not None:
                tel.counter("trace.requests_traced").inc(len(traces))
                if tr.dropped_requests:
                    tel.counter("trace.requests_dropped").inc(tr.dropped_requests)
        return result
