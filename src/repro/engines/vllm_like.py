"""vLLM-style static-parallelism engine (the paper's baseline).

One fixed (DP, TP, PP) configuration for the whole run, continuous batching
with **prefill-prioritized** scheduling: whenever a waiting prompt fits in
the KV cache it is prefilled eagerly, otherwise the engine runs a decode
iteration over everything resident. With ``chunked_prefill`` enabled the
engine instead forms Sarathi-style mixed batches: a token budget per
iteration is filled first with one decode token per running sequence, the
remainder with a chunk of the next prompt (vLLM 0.5.4's behaviour with
``enable_chunked_prefill``, which the paper tunes per workload).
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator

from repro.costmodel.step import ITERATION_OVERHEAD
from repro.engines.base import BaseEngine, ReplicaRun, ReplicaState
from repro.engines.slots import VECTORIZE_MIN_SEQS, np as _np
from repro.errors import CapacityError, SchedulingError
from repro.runtime.metrics import RunMetrics
from repro.runtime.request import Request, Sequence, SequenceState


class VllmLikeEngine(BaseEngine):
    """Static-config continuous-batching engine."""

    name = "vllm"

    def label(self) -> str:
        suffix = "+chunked" if self.options.chunked_prefill else ""
        return f"{self.config.label()}{suffix}"

    # ------------------------------------------------------------------ #
    # Replica loop
    # ------------------------------------------------------------------ #

    def _replica_setup(self, requests: list[Request], replica_id: int) -> ReplicaRun:
        state = ReplicaState(requests, self.make_kv())
        run = ReplicaRun(replica_id, requests, state, RunMetrics())
        run.costs = self.make_costs()
        return run

    def _replica_loop(self, run: ReplicaRun, start: float) -> Iterator[float]:
        state, costs, metrics = run.state, run.costs, run.metrics
        now = start
        while state.has_work:
            run.guard += 1
            if run.guard > 80 * run.total_request_tokens:
                raise SchedulingError("scheduler made no progress (livelock guard)")
            state.admit_arrivals(now)
            if not state.waiting and not state.running:
                # Event-driven idle: jump to the next arrival.
                now = self.idle_advance(state, metrics, now)
            elif self.options.chunked_prefill:
                now = self._chunked_iteration(state, costs, metrics, now)
            else:
                now = self._prefill_prioritized_iteration(state, costs, metrics, now)
            yield now

    # ------------------------------------------------------------------ #
    # Non-chunked: eager prefill, whole prompts
    # ------------------------------------------------------------------ #

    def _prefill_prioritized_iteration(
        self, state: ReplicaState, costs, metrics: RunMetrics, now: float
    ) -> float:
        admitted = []
        if self._prefill_worthwhile(state):
            admitted = self._admit_prefills(state)
        if admitted:
            admit_time = now
            microbatches = self.form_prefill_microbatches(admitted)
            wall, device = self.prefill_time(costs, microbatches)
            self.record_event(
                "prefill",
                now,
                wall,
                num_seqs=len(admitted),
                tokens=sum(s.remaining_prefill for s in admitted),
                resident_seqs=len(state.running),
            )
            now += wall
            metrics.add_phase("prefill", wall, device)
            metrics.iterations += 1
            for seq in admitted:
                seq.mark_scheduled(admit_time)
                seq.advance_prefill(seq.remaining_prefill)
                seq.state = SequenceState.RUNNING
                seq.prefill_end_time = now
                seq.mark_first_token(now)
                state.start_running(seq)
            tr = self.options.tracing
            if tr is not None:
                for seq in admitted:
                    tr.note_resume(now, seq.seq_id)
            state.finish_ready(now)  # output_len == 1 finishes at prefill
            return now
        if state.running:
            return self.decode_step(state, costs, metrics, now)
        # Nothing admitted and nothing running: the head prompt cannot fit.
        head = state.waiting[0]
        raise CapacityError(
            f"prompt of {head.remaining_prefill} tokens exceeds KV capacity "
            f"{state.kv.capacity_tokens} under {self.config.label()}"
        )

    def _prefill_worthwhile(self, state: ReplicaState) -> bool:
        """Admission hysteresis for pipeline parallelism.

        Each prefill wave pays a (PP-1)-stage fill bubble, so prefilling a
        trickle of one prompt at a time whenever a decode frees a few
        blocks wastes most of the pipeline. Wait until enough KV space has
        freed to amortize the bubble over at least a pipeline's worth of
        micro-batches (or until nothing is decoding / the queue is nearly
        drained). With PP=1 there is no bubble and eager admission stands.
        """
        pp = self.replica_config.pp
        if pp <= 1 or not state.running or not state.waiting:
            return True
        remaining = sum(s.remaining_prefill for s in state.waiting)
        target = min(remaining, pp * self.options.max_batched_tokens)
        return state.kv.free_tokens >= target

    def _admit_prefills(self, state: ReplicaState) -> list[Sequence]:
        """Admit waiting prompts while KV space and the per-iteration token
        budget allow. One scheduling iteration admits at most PP micro-
        batches worth of tokens so pipeline stages stay busy without
        starving resident decodes for long; with nothing decoding there is
        no one to starve, so the wave may grow to KV capacity and amortize
        the pipeline fill bubble."""
        budget = self.options.max_batched_tokens * costs_pp(self)
        if not state.running:
            budget = max(budget, state.kv.capacity_tokens)
        if (
            self.options.vectorize
            and _np is not None
            and len(state.waiting) >= VECTORIZE_MIN_SEQS
        ):
            return self._admit_prefills_vectorized(state, budget)
        return self._admit_prefills_scalar(state, budget)

    def _admit_prefills_scalar(
        self, state: ReplicaState, budget: int
    ) -> list[Sequence]:
        admitted: list[Sequence] = []
        used = 0
        while state.waiting:
            seq = state.waiting[0]
            need = seq.remaining_prefill + 1  # +1: first generated token
            if len(state.running) + len(admitted) >= self.options.max_num_seqs:
                break
            if used + seq.remaining_prefill > budget and admitted:
                break
            if not state.kv.can_allocate(need):
                break
            state.kv.allocate(seq.seq_id, need)
            state.waiting.popleft()
            admitted.append(seq)
            used += seq.remaining_prefill
            if used >= budget:
                break
        return admitted

    def _admit_prefills_vectorized(
        self, state: ReplicaState, budget: int
    ) -> list[Sequence]:
        """The scalar scan as cumulative sums: prompt j is admitted iff its
        cumulative block demand fits the free pool and the tokens admitted
        before it leave budget headroom (the first prompt may exceed the
        budget alone, exactly like the scalar loop). Bit-exact because no
        admission in this path ever holds a reservation, so the scalar
        loop's rolling ``can_allocate`` is a pure prefix sum."""
        kv = state.kv
        cap = self.options.max_num_seqs - len(state.running)
        # Every admission consumes >= 1 block, so free_blocks bounds the
        # admissible prefix as tightly as the seq-count cap does.
        window = max(0, min(len(state.waiting), cap, kv.free_blocks))
        if window == 0:
            return []
        prefills = _np.fromiter(
            (seq.remaining_prefill for seq in islice(state.waiting, window)),
            dtype=_np.int64,
            count=window,
        )
        bs = kv.block_size
        blocks = (prefills + bs) // bs  # == blocks_for(remaining_prefill + 1)
        cum_blocks = _np.cumsum(blocks)
        cum_prefills = _np.cumsum(prefills)
        used_before = cum_prefills - prefills
        ok = (cum_blocks <= kv.free_blocks) & (used_before < budget)
        over = used_before + prefills > budget
        over[0] = False
        ok &= ~over
        k = window if bool(ok.all()) else int(ok.argmin())
        admitted: list[Sequence] = []
        for _ in range(k):
            seq = state.waiting.popleft()
            kv.allocate(seq.seq_id, seq.remaining_prefill + 1)
            admitted.append(seq)
        return admitted

    # ------------------------------------------------------------------ #
    # Chunked prefill (Sarathi-style mixed batches)
    # ------------------------------------------------------------------ #

    def _chunked_iteration(
        self, state: ReplicaState, costs, metrics: RunMetrics, now: float
    ) -> float:
        budget = max(0, self.options.chunk_size - len(state.running))
        chunk_tokens = 0
        chunk_ctx_weighted = 0.0
        completing: list[Sequence] = []

        while budget > 0 and state.waiting:
            seq = state.waiting[0]
            if len(state.running) + len(completing) + 1 > self.options.max_num_seqs:
                break
            take = min(budget, seq.remaining_prefill)
            need_tokens = seq.prefilled_tokens + take
            will_complete = take == seq.remaining_prefill
            if will_complete:
                need_tokens += 1  # room for the first generated token
            if not self._ensure_chunk_space(state, seq, need_tokens):
                break
            chunk_ctx_weighted += take * seq.prefilled_tokens
            seq.mark_scheduled(now)
            seq.state = SequenceState.PREFILLING
            seq.advance_prefill(take)
            state.prefill_epoch += 1
            chunk_tokens += take
            budget -= take
            if will_complete:
                state.waiting.popleft()
                completing.append(seq)
            else:
                break  # budget exhausted mid-prompt

        if chunk_tokens == 0 and not state.running:
            head = state.waiting[0]
            raise CapacityError(
                f"prompt of {head.remaining_prefill} tokens exceeds KV capacity "
                f"{state.kv.capacity_tokens} under {self.config.label()}"
            )

        decode_seqs = len(state.running)
        eff_ctx = int(chunk_ctx_weighted / chunk_tokens) if chunk_tokens else 0
        bd = costs.mixed_iteration_time(
            chunk_tokens, eff_ctx, decode_seqs, state.decode_context_tokens
        )
        elapsed = bd.total + ITERATION_OVERHEAD
        phase = "mixed" if (chunk_tokens and decode_seqs) else (
            "prefill" if chunk_tokens else "decode"
        )
        self.record_event(
            phase,
            now,
            elapsed,
            num_seqs=decode_seqs + len(completing),
            tokens=chunk_tokens + decode_seqs,
            resident_seqs=decode_seqs,
        )
        now += elapsed
        metrics.add_phase(phase, elapsed, bd)
        metrics.iterations += 1

        if decode_seqs:
            for s in state.running:
                s.advance_decode()
            state.decode_backlog -= decode_seqs
            for s in list(state.running):
                if s not in state.running:
                    continue
                while True:
                    try:
                        state.kv.grow(s.seq_id, s.context_len)
                        break
                    except CapacityError:
                        victim = self._pick_victim(state, exclude=s)
                        if victim is None:
                            raise
                        self.preempt(state, victim, now, metrics)
        for seq in completing:
            seq.state = SequenceState.RUNNING
            seq.prefill_end_time = now
            seq.mark_first_token(now)
            state.start_running(seq)
        tr = self.options.tracing
        if tr is not None:
            for seq in completing:
                tr.note_resume(now, seq.seq_id)
        state.finish_ready(now)
        return now

    def _ensure_chunk_space(
        self, state: ReplicaState, seq: Sequence, need_tokens: int
    ) -> bool:
        """Allocate or grow KV for a chunk; False if memory is exhausted."""
        try:
            if state.kv.holds(seq.seq_id):
                state.kv.grow(seq.seq_id, need_tokens)
            else:
                if not state.kv.can_allocate(need_tokens):
                    return False
                state.kv.allocate(seq.seq_id, need_tokens)
            return True
        except CapacityError:
            return False


def costs_pp(engine: VllmLikeEngine) -> int:
    """Pipeline depth of the engine's replica config (micro-batch fan-out)."""
    return engine.replica_config.pp
