"""Decode-prioritized (batch-at-a-time) engine.

The scheduling extreme of Fig. 2(b), as used by FasterTransformer: admit a
batch, prefill it, decode the whole batch to completion, only then start
the next batch. Transitions between prefill and decode are rare (one per
batch) but the decode batch shrinks as sequences finish, under-utilizing
the GPU — exactly the trade-off the paper's tiered buffering removes.

Admission reserves each sequence's *final* context length so the batch is
guaranteed to finish without preemption.
"""

from __future__ import annotations

from typing import Iterator

from repro.engines.base import BaseEngine, ReplicaRun, ReplicaState
from repro.errors import CapacityError
from repro.runtime.metrics import RunMetrics
from repro.runtime.request import Request, Sequence, SequenceState


class DecodePrioritizedEngine(BaseEngine):
    """Batch-at-a-time scheduling with a static parallel config."""

    name = "decode-prio"

    def _replica_setup(self, requests: list[Request], replica_id: int) -> ReplicaRun:
        state = ReplicaState(requests, self.make_kv())
        run = ReplicaRun(replica_id, requests, state, RunMetrics())
        run.costs = self.make_costs()
        return run

    def _replica_loop(self, run: ReplicaRun, start: float) -> Iterator[float]:
        state, costs, metrics = run.state, run.costs, run.metrics
        now = start
        while state.has_work:
            state.admit_arrivals(now)
            if not state.waiting and not state.running:
                now = self.idle_advance(state, metrics, now)
                yield now
                continue
            if not state.running:
                # Between batches: admit and prefill the next batch whole.
                batch = self._admit_batch(state)
                if not batch:
                    head = state.waiting[0]
                    raise CapacityError(
                        f"request needs {head.final_context_len} tokens of KV, "
                        f"capacity is {state.kv.capacity_tokens}"
                    )
                admit_time = now
                microbatches = self.form_prefill_microbatches(batch)
                wall, device = self.prefill_time(costs, microbatches)
                now += wall
                metrics.add_phase("prefill", wall, device)
                metrics.iterations += 1
                metrics.transitions += 1
                self.record_event(
                    "prefill",
                    admit_time,
                    wall,
                    num_seqs=len(batch),
                    tokens=sum(s.remaining_prefill for s in batch),
                    resident_seqs=len(state.running) + len(batch),
                )
                for seq in batch:
                    seq.mark_scheduled(admit_time)
                    seq.advance_prefill(seq.remaining_prefill)
                    seq.state = SequenceState.RUNNING
                    seq.prefill_end_time = now
                    seq.mark_first_token(now)
                    state.start_running(seq)
                tr = self.options.tracing
                if tr is not None:
                    for seq in batch:
                        tr.note_resume(now, seq.seq_id)
                state.finish_ready(now)
                if not state.running:
                    metrics.transitions += 1  # the decode stage was trivial
                yield now
                continue
            # Decode the whole batch to completion before the next prefill
            # (arrivals landing meanwhile wait in the queue, as before).
            now = self.decode_step(state, costs, metrics, now)
            if not state.running:
                metrics.transitions += 1
            yield now

    def _admit_batch(self, state: ReplicaState) -> list[Sequence]:
        """Admit sequences whose final context length fits entirely."""
        admitted: list[Sequence] = []
        while state.waiting and len(admitted) < self.options.max_num_seqs:
            seq = state.waiting[0]
            need = seq.final_context_len
            if not state.kv.can_allocate(need):
                break
            state.kv.allocate(seq.seq_id, need)
            state.waiting.popleft()
            admitted.append(seq)
        return admitted
