"""Vectorized decode-slot arrays for the steady-state decode loop.

A decode iteration advances every running sequence by one token, grows its
KV allocation when the context crosses a block boundary, and retires
sequences that produced their last token. The object path does all of that
with per-sequence attribute access — the dominant cost of large coupled
runs. :class:`DecodeSlots` hoists the drifting counters (generated tokens,
remaining decode, context length, allocated blocks) into numpy int64
arrays indexed by the sequence's position in ``state.running`` — and since
every slot advances by exactly one token per iteration, the arrays are
stored as *bases* plus a shared python-int offset ``adv``:

- the common iteration is pure scalar arithmetic (bump the offset, the
  context sum, and two countdowns) — no array op at all;
- KV growth is detected with a min-iterations-to-next-block-boundary
  countdown and applied only on crossing iterations, via
  :meth:`~repro.runtime.kvcache.KVCacheManager.grow_one_block`;
- finishes use a min-remaining countdown, so the retirement scan runs
  only on iterations where some sequence actually finishes.

Only ``generated_tokens`` drifts away from the Sequence objects while the
arrays are live; every structural mutation (admission, preemption, steal)
goes through :meth:`ReplicaState.start_running` / ``drop_slots``, which
syncs the drifted counters back and makes the object lists authoritative
again. When aggregate KV headroom cannot cover an iteration's crossings
the slots refuse to advance and the engine falls back to the scalar
grow/preempt path for that iteration — preemption order stays bit-exact
with the object path by construction.

The arrays are an internal cache: with ``EngineOptions.vectorize`` off (or
numpy absent, or tracing on) engines run the original scalar path, and the
two paths are pinned bit-identical by the golden and property tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised implicitly by every vectorized run
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.base import ReplicaState
    from repro.runtime.kvcache import KVCacheManager

# Below this batch size the array bookkeeping costs more than the python
# loop it replaces; the scalar path is used instead (identical results).
VECTORIZE_MIN_SEQS = 4


class DecodeSlots:
    """Slot-indexed counters for ``state.running``, aligned by position.

    ``gen0``/``rem0``/``ctx0`` hold each slot's counters as of the last
    rebase; the live value of slot ``i`` is ``gen0[i] + adv`` (resp.
    ``rem0[i] - adv``, ``ctx0[i] + adv``). ``blocks`` is always current
    (growth is applied eagerly on crossing iterations).
    """

    def __init__(self, state: "ReplicaState") -> None:
        running = state.running
        n = len(running)
        kv = state.kv
        self.seqs = list(running)
        self.gen0 = np.fromiter(
            (s.generated_tokens for s in running), dtype=np.int64, count=n
        )
        out = np.fromiter(
            (s.request.output_len for s in running), dtype=np.int64, count=n
        )
        self.rem0 = out - 1 - self.gen0
        self.ctx0 = (
            np.fromiter((s.prompt_len for s in running), dtype=np.int64, count=n)
            + self.gen0
        )
        self.blocks = np.fromiter(
            (kv._blocks[s.seq_id] for s in running), dtype=np.int64, count=n
        )
        self.block_size = kv.block_size
        self.adv = 0
        # Per-slot iterations of headroom inside the allocated blocks as of
        # the last rebase; slot i crosses a block boundary on the iteration
        # where ``adv`` reaches ``slack0[i]``.
        self.slack0 = self.blocks * self.block_size - self.ctx0
        # Python ints so the cost-model inputs stay exactly the values the
        # scalar path would compute.
        self.ctx_sum = int(self.ctx0.sum())
        self.min_rem = int(self.rem0.min()) if n else 0
        # Iterations until the nearest slot next crosses a block boundary
        # (allocations always cover the current context, so the gap is
        # non-negative); while positive, an iteration does no KV work.
        self.gap = int(self.slack0.min()) if n else 0

    def __len__(self) -> int:
        return len(self.seqs)

    def try_advance(self, kv: "KVCacheManager") -> bool:
        """Advance every slot one token; False when KV headroom cannot
        cover this iteration's block-boundary crossings (the caller then
        drops the slots and runs the scalar grow/preempt path)."""
        if self.gap > 0:
            self.gap -= 1
        else:
            slack0 = self.slack0
            cross = slack0 <= self.adv
            ncross = int(np.count_nonzero(cross))
            if ncross > kv.free_blocks:
                return False
            if ncross:
                slack0[cross] += self.block_size
                self.blocks[cross] += 1
                seqs = self.seqs
                for i in np.nonzero(cross)[0]:
                    kv.grow_one_block(seqs[i].seq_id)
            self.gap = int(slack0.min()) - self.adv - 1
        self.adv += 1
        self.min_rem -= 1
        self.ctx_sum += len(self.seqs)
        return True

    def finish_ready(self, state: "ReplicaState", now: float) -> int:
        """Retire slots that have produced all their tokens (the slot-path
        body of :meth:`ReplicaState.finish_ready`)."""
        if self.min_rem > 0:
            return 0
        rem = self.rem0 - self.adv
        idx = np.nonzero(rem == 0)[0]
        if idx.size == 0:
            self.min_rem = int(rem.min()) if len(self.seqs) else 0
            return 0
        state.prefill_epoch += 1
        adv = self.adv
        gen0 = self.gen0
        done = []
        for i in idx.tolist():
            s = self.seqs[i]
            s.generated_tokens = int(gen0[i]) + adv
            done.append(s)
        for s in done:  # ascending slot order == running order
            s.mark_finished(now)
            state.kv.free(s.seq_id)
            state.running.remove(s)
            state.finished.append(s)
        keep = np.ones(len(self.seqs), dtype=bool)
        keep[idx] = False
        self.seqs = [s for s, k in zip(self.seqs, keep, strict=True) if k]
        self.gen0 = self.gen0[keep]
        self.rem0 = self.rem0[keep]
        self.ctx0 = self.ctx0[keep]
        self.blocks = self.blocks[keep]
        self.slack0 = self.slack0[keep]
        n = len(self.seqs)
        self.ctx_sum = int(self.ctx0.sum()) + adv * n
        self.min_rem = int((self.rem0 - adv).min()) if n else 0
        self.gap = int(self.slack0.min()) - adv if n else 0
        return len(done)

    def sync(self) -> None:
        """Write the drifted per-slot counters back into the Sequence
        objects (called before the object lists become authoritative)."""
        adv = self.adv
        for s, g in zip(self.seqs, self.gen0.tolist(), strict=True):
            s.generated_tokens = g + adv
