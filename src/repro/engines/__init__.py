"""Inference engines: the baselines the paper compares against.

- :class:`VllmLikeEngine` — static parallelism with continuous batching and
  prefill-prioritized scheduling, optionally with Sarathi-style chunked
  prefill (the paper's vLLM 0.5.4 baseline).
- :class:`DecodePrioritizedEngine` — batch-at-a-time scheduling
  (FasterTransformer-style), the other scheduling extreme of Fig. 2.
- :class:`DisaggregatedEngine` — DistServe-style spatial prefill/decode
  split, used in the Section 3.2 / Fig. 4 analysis.

Seesaw itself lives in :mod:`repro.core`.
"""

from repro.engines.base import BaseEngine, EngineOptions, split_requests
from repro.engines.vllm_like import VllmLikeEngine
from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.disaggregated import DisaggregatedEngine, DisaggregationPlan

__all__ = [
    "BaseEngine",
    "EngineOptions",
    "split_requests",
    "VllmLikeEngine",
    "DecodePrioritizedEngine",
    "DisaggregatedEngine",
    "DisaggregationPlan",
]
