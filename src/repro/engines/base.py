"""Engine base class and the single-replica execution helpers.

Every engine in this package simulates one DP replica at a time (replicas
process disjoint request partitions concurrently; wall time is the slowest
replica) and shares the mechanics implemented here: request partitioning,
prefill micro-batch formation, the decode-iteration step with KV growth and
preemption, and sequence bookkeeping.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable, Sequence as TypingSequence

from repro.costmodel.breakdown import Breakdown
from repro.costmodel.pipeline import pipeline_time_heterogeneous
from repro.costmodel.step import ITERATION_OVERHEAD, StepCostModel
from repro.cluster.autoscaler import AUTOSCALER_POLICIES
from repro.costmodel.transfer import KVLayout
from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.parallel.config import ParallelConfig
from repro.parallel.memory import kv_capacity_tokens
from repro.engines.slots import DecodeSlots, VECTORIZE_MIN_SEQS
from repro.engines.slots import np as _np
from repro.routing import ROUTER_POLICIES, Router, RouterContext, make_router
from repro.runtime.kvcache import KVCacheManager
from repro.runtime.latency import LatencyStats
from repro.runtime.metrics import EngineResult, RunMetrics, merge_dp_results
from repro.runtime.request import Request, Sequence
from repro.runtime.trace import DECODE, IDLE, NullTrace, Trace
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class EngineOptions:
    """Scheduler knobs shared by all engines.

    Attributes:
        max_num_seqs: Cap on concurrently decoding sequences per replica
            (vLLM's ``max_num_seqs``).
        max_batched_tokens: Token budget of one prefill micro-batch /
            forward pass (vLLM's ``max_num_batched_tokens``).
        chunked_prefill: Enable Sarathi-style mixed batches (only consumed
            by engines that support it).
        chunk_size: Token budget of one chunked-prefill iteration
            (decode tokens included, as in vLLM).
        block_size: KV page size in tokens.
        kv_layout: CPU-side KV layout (HND is Seesaw's bandwidth-friendly
            choice; NHD exists for the layout ablation).
        router: Multi-replica dispatch policy (see :mod:`repro.routing`).
            ``static`` reproduces the seed's round-robin t=0 deal
            bit-exactly; ``jsq``/``least-work``/``po2`` dispatch each
            request at its arrival time against tracked replica load.
        router_seed: Seed for stochastic policies (``po2``); ``None`` uses
            the package default seed (still deterministic).
        ttft_slo: TTFT service-level objective in seconds; fed to the
            router context so SLO-aware dispatch (``router="slo"``) can
            route against it. ``None`` = no TTFT target.
        tpot_slo: TPOT service-level objective in seconds per output
            token; carried alongside ``ttft_slo``. ``None`` = no target.
        coupled: Run all DP replicas on one shared virtual clock with
            dispatch interleaved into the event loop
            (:mod:`repro.cluster`): the router then sees each replica's
            *observed* state (actual queued tokens, measured preemptions,
            idle gaps) instead of the predicted load ledger. Off by
            default — the decoupled path stays bit-exact with the seed.
        autoscaler: Elastic-fleet scaling policy on the coupled path
            (:mod:`repro.cluster.autoscaler`): ``none`` (the default)
            keeps the configuration's fixed replica set, ``threshold``
            scales on observed queue depth / idle fraction, and
            ``predictive`` right-sizes with the serving objective's
            Erlang-C wait. Anything but ``none`` requires ``coupled``
            (membership events live on the shared clock).
        min_dp: Floor on the autoscaled replica count (default 1).
        max_dp: Ceiling on the autoscaled replica count (default: as many
            replicas as the cluster's GPUs can hold).
    """

    max_num_seqs: int = 512
    max_batched_tokens: int = 8192
    chunked_prefill: bool = False
    chunk_size: int = 1024
    block_size: int = 16
    kv_layout: KVLayout = KVLayout.HND
    trace: bool = False
    router: str = "static"
    router_seed: int | None = None
    ttft_slo: float | None = None
    tpot_slo: float | None = None
    coupled: bool = False
    autoscaler: str = "none"
    min_dp: int | None = None
    max_dp: int | None = None
    # Fidelity tier of the coupled path: "event" co-simulates every engine
    # iteration; "fluid" replaces replicas with calibrated mean-field
    # queues (repro.cluster.fluid) for million-request scale; "auto"
    # picks fluid when requests x replica ceiling crosses
    # AUTO_FLUID_WORK_ITEMS. Decoupled runs ignore this knob.
    fidelity: str = "event"
    # Vectorized decode bookkeeping (numpy slot arrays). The scalar path
    # is kept for traced runs and as the bit-exactness oracle.
    vectorize: bool = True
    # Record per-dispatch queue-depth tuples into the telemetry event
    # stream (O(requests x replicas) memory — bounded by the hub's
    # max_events cap). Off by default; tests that consume the deprecated
    # ClusterSimulator.dispatch_log alias opt in.
    debug_dispatch_log: bool = False
    # Telemetry hub (repro.obs.Telemetry) recording fixed-interval
    # time-series and lifecycle events on the virtual clock. None (the
    # default) keeps every loop on its exact pre-telemetry instruction
    # path — the bit-exactness contract the goldens pin.
    telemetry: object | None = None
    # Runtime invariant sanitizer (repro.check.Sanitizer) asserting clock
    # monotonicity, event causality, token/KV conservation, request-id
    # uniqueness and fleet lifecycle legality during coupled runs. None
    # (the default) keeps every loop on its exact unsanitized instruction
    # path — the same bit-exactness contract as telemetry.
    sanitize: object | None = None
    # Per-request trace collector (repro.obs.Tracer) recording life-cycle
    # marks (dispatch, storm withdraw/re-dispatch, preempt/resume, KV
    # handoff) and deriving span trees + critical paths at finalize. None
    # (the default) keeps every loop on its exact untraced instruction
    # path — the same bit-exactness contract as telemetry.
    tracing: object | None = None

    def __post_init__(self) -> None:
        if self.telemetry is not None and not hasattr(self.telemetry, "probe"):
            raise ConfigurationError(
                "telemetry must be a repro.obs.Telemetry hub (or None)"
            )
        if self.tracing is not None and not hasattr(self.tracing, "finalize"):
            raise ConfigurationError(
                "tracing must be a repro.obs.Tracer (or None)"
            )
        if self.sanitize is not None:
            if not hasattr(self.sanitize, "note_transition"):
                raise ConfigurationError(
                    "sanitize must be a repro.check.Sanitizer (or None)"
                )
            if not self.coupled:
                raise ConfigurationError(
                    "the sanitizer checks shared-clock invariants: pass "
                    "coupled=True (--coupled) with --sanitize"
                )
        if self.max_num_seqs < 1 or self.max_batched_tokens < 1 or self.chunk_size < 1:
            raise ConfigurationError("engine limits must be positive")
        if self.block_size < 1:
            raise ConfigurationError("block_size must be positive")
        if self.router not in ROUTER_POLICIES:
            raise ConfigurationError(
                f"unknown router policy {self.router!r}; one of {ROUTER_POLICIES}"
            )
        for name, slo in (("ttft_slo", self.ttft_slo), ("tpot_slo", self.tpot_slo)):
            if slo is not None and slo <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.autoscaler not in AUTOSCALER_POLICIES:
            raise ConfigurationError(
                f"unknown autoscaler policy {self.autoscaler!r}; one of "
                f"{AUTOSCALER_POLICIES}"
            )
        if self.autoscaler != "none" and not self.coupled:
            raise ConfigurationError(
                "autoscaling needs the event-coupled path: pass coupled=True "
                "(--coupled) with --autoscaler"
            )
        if self.fidelity not in ("event", "fluid", "auto"):
            raise ConfigurationError(
                f"unknown fidelity {self.fidelity!r}; one of ('event', 'fluid', 'auto')"
            )
        if self.fidelity != "event" and not self.coupled:
            raise ConfigurationError(
                "the fluid fast path models the coupled cluster: pass "
                "coupled=True (--coupled) with --fidelity fluid/auto"
            )
        for name, dp in (("min_dp", self.min_dp), ("max_dp", self.max_dp)):
            if dp is not None and dp < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.autoscaler == "none" and (
            self.min_dp is not None or self.max_dp is not None
        ):
            raise ConfigurationError(
                "min_dp/max_dp only apply with an autoscaler; without one "
                "the fleet is fixed at the configuration's dp (pass "
                "--autoscaler threshold|predictive)"
            )
        if (
            self.min_dp is not None
            and self.max_dp is not None
            and self.min_dp > self.max_dp
        ):
            raise ConfigurationError(
                f"min_dp ({self.min_dp}) must be <= max_dp ({self.max_dp})"
            )


def split_requests(
    requests: TypingSequence[Request], num_parts: int
) -> list[list[Request]]:
    """Partition requests across DP replicas with the offline t=0 deal.

    Round-robin by submission index: deterministic, and balances both
    count and length distribution for the workload sizes the paper uses.
    Only partition *membership* matters — :class:`ReplicaState` re-sorts
    each partition by arrival time on construction. For online serving
    this static deal is superseded by the :mod:`repro.routing` subsystem,
    which dispatches each request at its arrival time under pluggable
    policies; its ``static`` policy reproduces this split bit-exactly.
    """
    if num_parts < 1:
        raise ConfigurationError("num_parts must be >= 1")
    return [list(requests[i::num_parts]) for i in range(num_parts)]


class ReplicaState:
    """Mutable per-replica scheduling state shared by engine loops.

    Requests are arrival-gated: a request sits in :attr:`pending` until the
    virtual clock reaches its ``arrival_time``, at which point
    :meth:`admit_arrivals` moves it into :attr:`waiting` where schedulers
    can see it. Offline workloads (every arrival at 0) drain ``pending``
    entirely during construction, so schedulers observe exactly the seed's
    all-at-t=0 queue.
    """

    def __init__(
        self,
        requests: Iterable[Request],
        kv: KVCacheManager,
    ) -> None:
        seqs = [Sequence(r) for r in requests]
        # Stable sort: simultaneous arrivals keep their submission order.
        seqs.sort(key=lambda s: s.arrival_time)
        self.pending: deque[Sequence] = deque(seqs)
        self.waiting: deque[Sequence] = deque()
        self.running: list[Sequence] = []
        self.finished: list[Sequence] = []
        self.kv = kv
        # Incremental observed-load aggregates. ``decode_backlog`` is the
        # exact integer sum of remaining_decode over live sequences,
        # maintained at every site that adds/removes owned sequences or
        # advances decode. ``prefill_epoch`` is a dirty counter bumped by
        # every mutation that can change the queued-prefill aggregates
        # (queue membership, prefill progress, running membership) — pure
        # decode iterations deliberately do NOT bump it, which is what
        # makes per-arrival dispatch decisions O(log S) instead of O(S).
        self.decode_backlog = sum(max(0, r.output_len - 1) for r in requests)
        self.prefill_epoch = 0
        # Vectorized decode slot arrays (engines/slots.py); None = the
        # object lists are authoritative.
        self.slots = None
        self.admit_arrivals(0.0)

    def admit_arrivals(self, now: float) -> int:
        """Move every pending request that has arrived by ``now`` into the
        waiting queue; returns how many were admitted."""
        admitted = 0
        while self.pending and self.pending[0].arrival_time <= now + 1e-12:
            self.waiting.append(self.pending.popleft())
            admitted += 1
        return admitted

    @property
    def next_arrival_time(self) -> float:
        """Arrival time of the earliest not-yet-arrived request."""
        if not self.pending:
            raise SimulationError("no pending arrivals")
        return self.pending[0].arrival_time

    @property
    def has_work(self) -> bool:
        """Whether any request is pending, admissible, or running."""
        return bool(self.pending or self.waiting or self.running)

    @property
    def has_immediate_work(self) -> bool:
        """Whether the scheduler could act right now without waiting for
        another arrival (subclasses add their extra service stages)."""
        return bool(self.waiting or self.running)

    @property
    def unfinished(self) -> bool:
        """Whether any request has not yet fully finished — the condition
        this state's event loop runs under (subclasses with extra service
        stages extend it alongside :attr:`has_immediate_work`)."""
        return self.has_work

    def live_sequences(self) -> Iterable[Sequence]:
        """Every sequence currently owned and not finished — the replica
        state an observed-load router can measure."""
        yield from self.pending
        yield from self.waiting
        yield from self.running

    @property
    def decode_context_tokens(self) -> int:
        """Total cached tokens attended over by one decode iteration."""
        return sum(s.context_len for s in self.running)

    def start_running(self, seq: Sequence) -> None:
        """Append ``seq`` to the running batch.

        The single choke point through which sequences enter ``running``:
        it drops the vectorized slot arrays back to the object lists and
        marks the prefill aggregates dirty, so engine loops stay oblivious
        to both caches.
        """
        self.drop_slots()
        self.prefill_epoch += 1
        self.running.append(seq)

    def drop_slots(self) -> None:
        """Invalidate the vectorized decode arrays (syncing any drifted
        per-sequence counters back into the Sequence objects first)."""
        if self.slots is not None:
            self.slots.sync()
            self.slots = None

    def finish_ready(self, now: float) -> int:
        """Retire sequences that have produced all their tokens."""
        if self.slots is not None:
            return self.slots.finish_ready(self, now)
        done = [s for s in self.running if s.remaining_decode == 0]
        if not done:
            return 0
        self.prefill_epoch += 1
        for s in done:
            s.mark_finished(now)
            self.kv.free(s.seq_id)
            self.running.remove(s)
            self.finished.append(s)
        return len(done)


class ReplicaRun:
    """Mutable context of one replica simulation.

    Bundles everything a replica's event loop owns — its request list,
    scheduling state, metrics and engine-specific extras (cost models,
    phase bookkeeping, livelock guards) — so the loop can be driven either
    to completion in one call (the decoupled path) or one event at a time
    by the coupled cluster simulator, with new requests injected between
    events. Engines attach whatever extra attributes their loop needs in
    :meth:`BaseEngine._replica_setup`.
    """

    def __init__(
        self,
        replica_id: int,
        requests: list[Request],
        state: ReplicaState,
        metrics: RunMetrics,
    ) -> None:
        self.replica_id = replica_id
        self.requests = requests
        self.state = state
        self.metrics = metrics
        self.trace: Trace | NullTrace = NullTrace()
        self.guard = 0
        self.total_request_tokens = sum(r.prompt_len + r.output_len for r in requests)

    def add_request(self, request: Request) -> Sequence:
        """Inject a request dispatched to this replica mid-simulation.

        The sequence enters the pending queue in arrival order (dispatches
        arrive in arrival order, so this is an append except for storm
        re-dispatches of earlier arrivals); the replica's scheduler admits
        it the next time its clock reaches the arrival time.
        """
        seq = Sequence(request)
        self.requests.append(request)
        self.total_request_tokens += request.prompt_len + request.output_len
        self.state.decode_backlog += max(0, request.output_len - 1)
        self.state.prefill_epoch += 1
        pending = self.state.pending
        idx = len(pending)
        while idx > 0 and pending[idx - 1].arrival_time > request.arrival_time + 1e-12:
            idx -= 1
        pending.insert(idx, seq)
        return seq

    def steal_pending(self) -> list[Request]:
        """Remove and return every still-pending (never admitted) request.

        Only requests the replica's scheduler has not yet observed are
        stealable — the coupled storm re-dispatcher moves these to a calm
        replica without perturbing any in-flight state."""
        stolen = [seq.request for seq in self.state.pending]
        if stolen:
            self.state.pending.clear()
            self.state.decode_backlog -= sum(
                max(0, r.output_len - 1) for r in stolen
            )
            self.state.prefill_epoch += 1
            ids = {r.request_id for r in stolen}
            self.requests = [r for r in self.requests if r.request_id not in ids]
            self.total_request_tokens -= sum(
                r.prompt_len + r.output_len for r in stolen
            )
        return stolen


class BaseEngine(abc.ABC):
    """Common engine skeleton: DP fan-out plus shared step helpers.

    Each engine expresses its per-replica scheduler as an *event loop
    generator* (:meth:`_replica_loop`) that yields the virtual clock at
    every iteration boundary. The decoupled path simply drives that
    generator to exhaustion per replica (:meth:`_run_replica`); the
    coupled path (:class:`repro.cluster.ClusterSimulator`) steps all
    replicas' generators on one shared clock via :meth:`start_replica`.
    """

    name: str = "base"

    def __init__(
        self,
        model: ModelConfig,
        cluster: ClusterSpec,
        config: ParallelConfig,
        options: EngineOptions | None = None,
    ) -> None:
        if config.num_gpus > cluster.num_gpus:
            raise ConfigurationError(
                f"{config.label()} needs {config.num_gpus} GPUs, cluster has "
                f"{cluster.num_gpus}"
            )
        self.model = model
        self.cluster = cluster
        self.config = config
        self.options = options or EngineOptions()
        # Populated by run() when options.trace is set (replica 0's trace).
        self.last_trace: Trace = NullTrace()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(self, workload: WorkloadSpec | TypingSequence[Request]) -> EngineResult:
        """Execute the workload to completion; returns the run summary.

        Requests are dispatched across the DP replicas by the routing
        subsystem (``options.router``). Decoupled (the default), the
        router dispatches every arrival up front against its predicted
        load ledger and each replica then simulates its partition
        independently; with ``options.coupled`` all replicas co-simulate
        on one shared clock and each arrival is dispatched against the
        replicas' *observed* state at that instant.
        """
        requests = (
            list(workload.requests)
            if isinstance(workload, WorkloadSpec)
            else list(workload)
        )
        if not requests:
            raise ConfigurationError("cannot run an empty workload")
        if self.options.coupled:
            fidelity = self.options.fidelity
            if fidelity == "auto":
                from repro.cluster.fluid import AUTO_FLUID_WORK_ITEMS

                cap = self.options.max_dp or self.config.dp
                fidelity = (
                    "fluid"
                    if len(requests) * cap >= AUTO_FLUID_WORK_ITEMS
                    else "event"
                )
            if fidelity == "fluid":
                from repro.cluster.fluid import FluidSimulator

                result = FluidSimulator(self, requests).run()
            else:
                from repro.cluster.simulator import ClusterSimulator

                result = ClusterSimulator(self, requests).run()
            return self._fold_telemetry(result)
        plan = self.make_router(requests).route(requests)
        parts = [list(p) for p in plan.partitions]
        tr = self.options.tracing
        if tr is not None:
            # Decoupled routing dispatches every arrival up front, at its
            # arrival instant, to the partition the plan chose.
            for i, part in enumerate(parts):
                for req in part:
                    tr.note_dispatch(req.arrival_time, req.request_id, i)
        # Trace the first non-empty partition (partition 0 can be empty
        # when there are fewer requests than replicas).
        trace_part = next((i for i, p in enumerate(parts) if p), None)
        results = []
        for i, part in enumerate(parts):
            if not part:
                continue
            traced = self.options.trace and i == trace_part
            self._active_trace = Trace() if traced else NullTrace()
            results.append(self._run_replica(part, replica_id=i))
            if traced:
                self.last_trace = self._active_trace
        return self._fold_telemetry(
            merge_dp_results(
                results, engine=self.name, label=self.label(), router=plan.stats
            )
        )

    def _fold_telemetry(self, result: EngineResult) -> EngineResult:
        """Derive the windowed latency/SLO series on the run's hub (the
        single exit every ``run()`` path funnels through)."""
        tel = self.options.telemetry
        if tel is not None:
            tel.fold_result(
                result, ttft_slo=self.options.ttft_slo, tpot_slo=self.options.tpot_slo
            )
        tr = self.options.tracing
        if tr is not None:
            traces = tr.finalize(
                result, ttft_slo=self.options.ttft_slo, tpot_slo=self.options.tpot_slo
            )
            if tel is not None:
                tel.counter("trace.requests_traced").inc(len(traces))
                if tr.dropped_requests:
                    tel.counter("trace.requests_dropped").inc(tr.dropped_requests)
        return result

    def label(self) -> str:
        """Configuration label shown in reports."""
        return self.config.label()

    def _run_replica(self, requests: list[Request], replica_id: int) -> EngineResult:
        """Simulate one DP replica processing ``requests`` to completion
        (the decoupled path: drive the event-loop generator dry)."""
        run = self._replica_setup(list(requests), replica_id)
        now = 0.0
        tel = self.options.telemetry
        if tel is None:
            for now in self._replica_loop(run, 0.0):
                pass
        else:
            probe = tel.probe(replica_id)
            tick = probe.tick
            for now in self._replica_loop(run, 0.0):
                tick(now, run.state, run.metrics)
        return self._replica_result(run, now)

    def start_replica(
        self,
        replica_id: int,
        requests: TypingSequence[Request] = (),
        start_time: float = 0.0,
    ):
        """Start one replica as an incrementally steppable simulation.

        Returns a :class:`repro.cluster.ReplicaSim` exposing
        ``next_event_time()`` / ``advance(until)`` / ``inject(request)``
        — the interface the event-coupled cluster simulator drives.
        ``start_time`` is the replica's birth instant on the shared clock
        (an elastic scale-up starts accounting when it becomes active)."""
        from repro.cluster.replica import ReplicaSim

        return ReplicaSim(self, replica_id, list(requests), start_time=start_time)

    @abc.abstractmethod
    def _replica_setup(self, requests: list[Request], replica_id: int) -> ReplicaRun:
        """Build the mutable context one replica's event loop runs over."""

    @abc.abstractmethod
    def _replica_loop(self, run: ReplicaRun, start: float):
        """One replica's scheduler as a generator over iteration boundaries.

        Yields the virtual clock after every scheduling event (iteration,
        phase step, or idle jump); the clock never decreases across
        yields. The generator exits when the replica has no unfinished
        work; if requests are injected afterwards, the caller restarts it
        from the current clock (all state lives in ``run``).
        """

    def _replica_result(self, run: ReplicaRun, total_time: float) -> EngineResult:
        """Summarize one finished replica simulation."""
        return self.result_from(
            run.requests, run.metrics, total_time, finished=run.state.finished
        )

    # ------------------------------------------------------------------ #
    # Shared construction helpers
    # ------------------------------------------------------------------ #

    @property
    def replica_config(self) -> ParallelConfig:
        """This engine's config with DP stripped (one replica's view).

        Cached: ``ParallelConfig`` is frozen and ``self.config`` never
        changes after construction, but hot loops (PP hysteresis, KV
        checks) query this per iteration and ``dataclasses.replace`` is
        expensive enough to show up in profiles.
        """
        cached = getattr(self, "_replica_config", None)
        if cached is None:
            cached = self._replica_config = replace(self.config, dp=1)
        return cached

    def record_event(self, kind: str, start: float, duration: float, **kw: int) -> None:
        """Append a trace event (no-op unless tracing is enabled)."""
        trace = getattr(self, "_active_trace", None)
        if trace is not None:
            trace.record(kind, start, duration, **kw)

    def make_router(self, requests: TypingSequence[Request]) -> Router:
        """Router for this run, fed with per-replica rate estimates."""
        return make_router(
            self.options.router,
            self.config.dp,
            context=self.router_context(requests),
            seed=self.options.router_seed,
        )

    def router_context(self, requests: TypingSequence[Request]) -> RouterContext:
        """Per-replica service-rate estimates for the router's load model.

        The prefill rate is one budget-sized micro-batch per stage period;
        the decode rate is the KV-capacity-bound batch advancing one token
        per iteration at the workload's mean context length (the Appendix A
        analytic rates, specialized to one replica).
        """
        costs = self.make_costs()
        budget = self.options.max_batched_tokens
        prefill_rate = budget / costs.prefill_stage_time([budget]).total
        avg_ctx = sum(r.prompt_len + r.output_len / 2.0 for r in requests) / len(
            requests
        )
        capacity = kv_capacity_tokens(self.model, self.cluster, self.replica_config)
        batch = max(
            1, min(int(capacity / avg_ctx), self.options.max_num_seqs)
        )
        decode_rate = batch / costs.decode_iteration_time(
            batch, int(batch * avg_ctx)
        ).total
        return RouterContext(
            prefill_tokens_per_s=prefill_rate,
            decode_tokens_per_s=decode_rate,
            kv_capacity_tokens=capacity,
            ttft_slo=self.options.ttft_slo,
            tpot_slo=self.options.tpot_slo,
        )

    def make_costs(self, config: ParallelConfig | None = None) -> StepCostModel:
        return StepCostModel(
            self.model,
            self.cluster,
            config or self.replica_config,
            kv_layout=self.options.kv_layout,
        )

    def make_kv(self, config: ParallelConfig | None = None, reserve_tokens: int = 0) -> KVCacheManager:
        cfg = config or self.replica_config
        capacity = kv_capacity_tokens(self.model, self.cluster, cfg) - reserve_tokens
        if capacity < self.options.block_size:
            raise CapacityError(
                f"{self.model.name} under {cfg.label()} leaves no KV space "
                f"after reserving {reserve_tokens} tokens"
            )
        return KVCacheManager(capacity_tokens=capacity, block_size=self.options.block_size)

    def result_from(
        self,
        requests: list[Request],
        metrics: RunMetrics,
        total_time: float,
        finished: TypingSequence[Sequence] | None = None,
    ) -> EngineResult:
        latency = LatencyStats.from_sequences(finished) if finished else None
        return EngineResult(
            engine=self.name,
            label=self.label(),
            num_requests=len(requests),
            total_time=total_time,
            input_tokens=sum(r.prompt_len for r in requests),
            output_tokens=sum(r.output_len for r in requests),
            phase_time=dict(metrics.phase_timer.phases),
            breakdown=metrics.breakdown,
            iterations=metrics.iterations,
            transitions=metrics.transitions,
            swapped_in_tokens=metrics.swapped_in_tokens,
            swapped_out_tokens=metrics.swapped_out_tokens,
            latency=latency,
        )

    # ------------------------------------------------------------------ #
    # Shared step mechanics
    # ------------------------------------------------------------------ #

    def idle_advance(self, state: ReplicaState, metrics: RunMetrics, now: float) -> float:
        """Jump the virtual clock to the next arrival.

        Called when nothing is admissible and nothing is running — the
        event-driven equivalent of an engine sleeping on its request queue.
        The gap is accounted as ``idle`` phase time (it is part of wall
        clock but not of any compute phase).
        """
        target = state.next_arrival_time
        if target <= now:
            raise SimulationError("idle_advance with an admissible arrival")
        self.record_event(IDLE, now, target - now, resident_seqs=len(state.running))
        metrics.add_phase("idle", target - now)
        return target

    def form_prefill_microbatches(
        self, seqs: TypingSequence[Sequence]
    ) -> list[list[Sequence]]:
        """Greedy micro-batch formation under the token budget.

        Sequences are packed in order; a sequence longer than the budget
        gets a micro-batch of its own (real engines run long prompts as a
        single pass too).
        """
        budget = self.options.max_batched_tokens
        batches: list[list[Sequence]] = []
        current: list[Sequence] = []
        used = 0
        for seq in seqs:
            tokens = seq.remaining_prefill
            if current and used + tokens > budget:
                batches.append(current)
                current, used = [], 0
            current.append(seq)
            used += tokens
        if current:
            batches.append(current)
        return batches

    def prefill_time(
        self, costs: StepCostModel, microbatches: TypingSequence[TypingSequence[Sequence]]
    ) -> tuple[float, Breakdown]:
        """Wall time and device breakdown of streaming ``microbatches``
        through the (possibly pipelined) cluster."""
        if not microbatches:
            return 0.0, Breakdown()
        stage_bds = [
            costs.prefill_stage_time([s.remaining_prefill for s in mb])
            for mb in microbatches
        ]
        wall = pipeline_time_heterogeneous(
            [b.total for b in stage_bds], costs.config.pp
        ) + ITERATION_OVERHEAD
        device = Breakdown()
        for b in stage_bds:
            device = device + b.scale(costs.config.pp)
        return wall, device

    def decode_step(
        self,
        state: ReplicaState,
        costs: StepCostModel,
        metrics: RunMetrics,
        now: float,
        phase: str = "decode",
    ) -> float:
        """Advance every running sequence one token; returns the new time.

        Handles KV growth with preemption: when the cache cannot grow, the
        youngest running sequence is evicted via :meth:`preempt` (subclass
        hook — recompute for static engines, swap-out for Seesaw).
        """
        if not state.running:
            raise ConfigurationError("decode_step with no running sequences")
        num_seqs = len(state.running)
        slots = state.slots
        if (
            slots is None
            and _np is not None
            and num_seqs >= VECTORIZE_MIN_SEQS
            and self.options.vectorize
            and not self.options.trace
        ):
            slots = state.slots = DecodeSlots(state)
        if slots is not None:
            bd = costs.decode_iteration_time(num_seqs, slots.ctx_sum)
        else:
            bd = costs.decode_iteration_time(num_seqs, state.decode_context_tokens)
            # The vectorized path never runs under tracing, so skipping
            # record_event there drops no events.
            self.record_event(
                DECODE,
                now,
                bd.total + ITERATION_OVERHEAD,
                num_seqs=num_seqs,
                tokens=num_seqs,
                resident_seqs=num_seqs,
            )
        elapsed = bd.total + ITERATION_OVERHEAD
        now += elapsed
        metrics.add_phase(phase, elapsed, bd)
        metrics.iterations += 1

        if slots is not None:
            if slots.try_advance(state.kv):
                state.decode_backlog -= num_seqs
                state.finish_ready(now)
                return now
            # Aggregate KV headroom cannot cover this iteration's block
            # crossings: fall back to the scalar grow/preempt path so the
            # eviction order stays bit-exact with the object path.
            state.drop_slots()

        for s in state.running:
            s.advance_decode()
        state.decode_backlog -= len(state.running)
        # Grow allocations oldest-first; evict youngest on pressure.
        for s in list(state.running):
            if s not in state.running:
                continue  # already preempted below
            while True:
                try:
                    state.kv.grow(s.seq_id, s.context_len)
                    break
                except CapacityError:
                    victim = self._pick_victim(state, exclude=s)
                    if victim is None:
                        raise
                    self.preempt(state, victim, now, metrics)
        state.finish_ready(now)
        return now

    def _pick_victim(
        self, state: ReplicaState, exclude: Sequence
    ) -> Sequence | None:
        """Youngest running sequence other than ``exclude`` (LIFO eviction,
        vLLM's policy: the most recently admitted loses)."""
        for s in reversed(state.running):
            if s is not exclude:
                return s
        return None

    def preempt(
        self, state: ReplicaState, victim: Sequence, now: float, metrics: RunMetrics
    ) -> None:
        """Default preemption: recompute. The victim's KV is dropped and it
        re-enters the waiting queue; its next prefill covers prompt plus
        already-generated tokens (vLLM's recompute path)."""
        state.drop_slots()
        state.prefill_epoch += 1
        state.kv.free(victim.seq_id)
        state.running.remove(victim)
        victim.preempt_recompute()
        victim.num_preemptions += 1
        metrics.preemptions += 1
        state.waiting.appendleft(victim)
        tr = self.options.tracing
        if tr is not None:
            tr.note_preempt(now, victim.seq_id, "recompute")
