"""Result analysis: comparisons, normalization, phase breakdowns."""

from repro.analysis.report import (
    comparison_table,
    latency_table,
    normalized_throughputs,
    speedup,
    best_result,
)
from repro.analysis.breakdown import phase_breakdown_table, attributed_fractions

__all__ = [
    "comparison_table",
    "latency_table",
    "normalized_throughputs",
    "speedup",
    "best_result",
    "phase_breakdown_table",
    "attributed_fractions",
]
