"""Phase and roofline-component breakdowns of engine runs.

Two views exist:

- **phase breakdown** — wall time per scheduler phase (prefill / decode /
  mixed / reshard / swap stall), the Fig. 12 view;
- **attributed breakdown** — the cost model's device time projected onto
  Fig. 1's categories (communication / compute / weight transfer).
"""

from __future__ import annotations

from typing import Mapping

from repro.costmodel.breakdown import Breakdown
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table

PHASES = ("prefill", "mixed", "decode", "reshard", "swap_stall")


def phase_breakdown_table(
    results: Mapping[str, EngineResult], title: str | None = None
) -> str:
    """Per-phase wall time of several runs side by side (Fig. 12 layout)."""
    headers = ["run"] + list(PHASES) + ["other", "total"]
    rows = []
    for key, r in results.items():
        known = sum(r.phase_time.get(p, 0.0) for p in PHASES)
        other = max(0.0, r.total_time - known)
        rows.append(
            [key]
            + [f"{r.phase_time.get(p, 0.0):.1f}" for p in PHASES]
            + [f"{other:.1f}", f"{r.total_time:.1f}"]
        )
    return ascii_table(headers, rows, title=title)


def attributed_fractions(breakdown: Breakdown) -> dict[str, float]:
    """Fractions of device time by Fig. 1 category (sums to 1)."""
    attributed = breakdown.attributed()
    total = sum(attributed.values())
    if total <= 0:
        return {k: 0.0 for k in attributed}
    return {k: v / total for k, v in attributed.items()}
