"""Comparison reports over engine results.

The paper reports *normalized throughput* (each bar divided by the best
vLLM configuration); these helpers compute the same quantities from
:class:`~repro.runtime.metrics.EngineResult` records and render them as
ASCII tables/charts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table


def speedup(candidate: EngineResult, baseline: EngineResult) -> float:
    """Throughput ratio candidate/baseline (> 1 means faster)."""
    return candidate.throughput_rps / baseline.throughput_rps


def best_result(results: Sequence[EngineResult]) -> EngineResult:
    """Highest-throughput run of a sweep."""
    if not results:
        raise ConfigurationError("no results to compare")
    return max(results, key=lambda r: r.throughput_rps)


def normalized_throughputs(
    results: Mapping[str, EngineResult], baseline_key: str
) -> dict[str, float]:
    """Throughput of each run divided by the named baseline's."""
    if baseline_key not in results:
        raise ConfigurationError(f"baseline {baseline_key!r} not in results")
    base = results[baseline_key].throughput_rps
    return {k: r.throughput_rps / base for k, r in results.items()}


def comparison_table(
    results: Mapping[str, EngineResult],
    baseline_key: str | None = None,
    title: str | None = None,
) -> str:
    """Tabulate runs: throughput, tokens/s, phase times, normalized column.

    When any run carries per-request latency statistics, TTFT/TPOT
    percentile columns are appended (blank for runs without them); when
    any run routed across multiple replicas, a dispatched-token imbalance
    column (max/mean, 1.00 = perfectly balanced) is appended too.
    """
    keys = list(results.keys())
    base = (
        results[baseline_key].throughput_rps
        if baseline_key is not None
        else max(r.throughput_rps for r in results.values())
    )
    with_latency = any(r.latency is not None for r in results.values())
    with_routing = any(
        r.router is not None and r.router.num_replicas > 1
        for r in results.values()
    )
    headers = ["run", "req/s", "norm", "out-tok/s", "time(s)", "transitions"]
    if with_latency:
        headers += ["ttft-p50(s)", "ttft-p99(s)", "tpot-p50(ms)"]
    if with_routing:
        headers += ["router", "tok-imbal"]
    rows = []
    for k in keys:
        r = results[k]
        row = [
            k,
            f"{r.throughput_rps:.4f}",
            f"{r.throughput_rps / base:.2f}",
            f"{r.throughput_tokens_per_s:.0f}",
            f"{r.total_time:.1f}",
            str(r.transitions),
        ]
        if with_latency:
            if r.latency is not None:
                row += [
                    f"{r.latency.ttft.p50:.3f}",
                    f"{r.latency.ttft.p99:.3f}",
                    f"{r.latency.tpot.p50 * 1e3:.1f}",
                ]
            else:
                row += ["-", "-", "-"]
        if with_routing:
            if r.router is not None and r.router.num_replicas > 1:
                row += [r.router.policy, f"{r.router.token_imbalance:.2f}"]
            else:
                row += ["-", "-"]
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def router_observability_cells(stats) -> tuple[str, str, str]:
    """(preempt, moved, idle) table cells for one router-stats record.

    Event-coupled runs report what was *measured* — observed preemptions
    (starred), re-dispatched requests, mean per-replica idle fraction —
    while decoupled runs report the predicted/rebalanced counters and no
    idle column. Shared by :func:`routing_table` and the coupled-sweep
    renderer so the two never drift.
    """
    if stats.coupled:
        return (
            f"{stats.total_observed_preemptions}*",
            str(stats.redispatched_requests),
            f"{stats.mean_idle_fraction * 100:.0f}%",
        )
    return (
        str(stats.total_predicted_preemptions),
        str(stats.rebalanced_requests),
        "-",
    )


def routing_table(
    results: Mapping[str, EngineResult],
    title: str | None = None,
) -> str:
    """Per-run replica load-imbalance detail from the routing subsystem.

    Columns: dispatch policy, replica count, per-replica dispatched-token
    spread (min/mean/max), dispatched-token and peak-queued-prefill
    imbalance ratios (max/mean; 1.00 = perfectly balanced), preemptions
    (predicted on the decoupled path, *observed* on the event-coupled
    path, marked ``*``), how many pending requests storm handling moved
    (rebalanced / re-dispatched), and — for coupled runs — the mean
    per-replica idle fraction. Runs without multi-replica routing stats
    are skipped; raises if none have any.
    """
    rows = []
    for k, r in results.items():
        stats = r.router
        if stats is None or stats.num_replicas <= 1:
            continue
        tokens = stats.tokens_per_replica
        preempt, moved, idle = router_observability_cells(stats)
        rows.append(
            [
                k,
                stats.policy + ("+coupled" if stats.coupled else ""),
                str(stats.num_replicas),
                f"{min(tokens)}/{sum(tokens) / len(tokens):.0f}/{max(tokens)}",
                f"{stats.token_imbalance:.2f}",
                f"{stats.peak_queue_imbalance:.2f}",
                preempt,
                moved,
                idle,
            ]
        )
    if not rows:
        raise ConfigurationError("no results carry multi-replica router stats")
    headers = [
        "run",
        "policy",
        "replicas",
        "tokens min/mean/max",
        "tok-imbal",
        "queue-imbal",
        "preempt",
        "moved",
        "idle",
    ]
    return ascii_table(headers, rows, title=title)


def fleet_table(
    results: Mapping[str, EngineResult],
    title: str | None = None,
    ttft_slo: float | None = None,
    tpot_slo: float | None = None,
) -> str:
    """Per-run elastic-fleet detail from the lifecycle-managed cluster.

    Columns: autoscaler policy, peak and time-weighted mean active
    replica count, scale events (ups/downs), billed replica-seconds
    (provisioning start to stop/makespan — the quantity autoscaling
    exists to shrink), and goodput per replica-second (SLO-met requests
    per billed replica-second; with no SLO given every served request
    counts). Fixed-fleet runs are shown too — peak == mean == dp and
    zero scale events — so autoscaled rows have their static baseline in
    the same table. Runs that never routed (no router stats at all) are
    skipped; raises if none qualify.

    Below the table, each autoscaled run's scale actions are listed with
    the autoscaler's recorded ``reason`` — the triggering signal and
    window values behind every up/down decision.
    """
    rows = []
    event_lines: list[str] = []
    for k, r in results.items():
        stats = r.router
        if stats is None:
            continue
        fleet = stats.fleet
        if fleet is None:
            # Fixed fleet: every replica is billed for the whole run.
            replica_seconds = stats.num_replicas * r.total_time
            policy, peak, mean = "none", stats.num_replicas, float(stats.num_replicas)
            ups = downs = 0
        else:
            replica_seconds = fleet.replica_seconds
            policy, peak, mean = fleet.autoscaler, fleet.peak_dp, fleet.mean_dp
            ups, downs = fleet.scale_ups, fleet.scale_downs
            scaled = [
                e for e in fleet.events if e.kind in ("scale-up", "scale-down")
            ]
            if scaled:
                event_lines.append(f"{k}:")
                for e in scaled:
                    reason = f"  [{e.reason}]" if e.reason else ""
                    event_lines.append(
                        f"  t={e.time:9.2f}s  {e.kind:<10} replica {e.replica_id}"
                        f"  active_dp={e.active_dp}{reason}"
                    )
        attainment = (
            r.latency.slo_attainment(ttft_slo=ttft_slo, tpot_slo=tpot_slo)
            if r.latency is not None and (ttft_slo is not None or tpot_slo is not None)
            else 1.0
        )
        goodput = (
            attainment * r.num_requests / replica_seconds
            if replica_seconds > 0
            else 0.0
        )
        rows.append(
            [
                k,
                policy,
                str(peak),
                f"{mean:.2f}",
                f"+{ups}/-{downs}",
                f"{replica_seconds:.1f}",
                f"{goodput:.4f}",
            ]
        )
    if not rows:
        raise ConfigurationError("no results carry replica fleet statistics")
    headers = [
        "run",
        "autoscaler",
        "peak-dp",
        "mean-dp",
        "scale",
        "replica-s",
        "goodput/replica-s",
    ]
    table = ascii_table(headers, rows, title=title)
    if event_lines:
        table += "\nscale actions (autoscaler reasons)\n"
        table += "\n".join(event_lines)
    return table


def telemetry_table(tel, title: str | None = None) -> str:
    """Summary table over a :class:`~repro.obs.Telemetry` hub: one row per
    recorded series with its point count, min/mean/max/last — a compact
    complement to the ``repro obs`` dashboard for report output.
    """
    rows = []
    for name in sorted(tel.series):
        pts = tel.series[name]
        if not pts:
            continue
        values = [v for _, v in pts]
        rows.append(
            [
                name,
                str(len(values)),
                f"{min(values):.4g}",
                f"{sum(values) / len(values):.4g}",
                f"{max(values):.4g}",
                f"{values[-1]:.4g}",
            ]
        )
    if not rows:
        raise ConfigurationError("telemetry hub holds no series")
    headers = ["series", "points", "min", "mean", "max", "last"]
    table = ascii_table(headers, rows, title=title)
    n_events = len(tel.events)
    if n_events or tel.dropped_events:
        kinds: dict[str, int] = {}
        for e in tel.events:
            kinds[e["event"]] = kinds.get(e["event"], 0) + 1
        parts = [f"{k}={v}" for k, v in sorted(kinds.items())]
        if tel.dropped_events:
            parts.append(f"dropped={tel.dropped_events}")
        table += f"\nevents: {', '.join(parts)}"
    return table


def critical_path_table(report, title: str | None = None) -> str:
    """Segment-kind contributions across the latency tail of a trace set.

    ``report`` is a :class:`~repro.obs.critical_path.TailReport` (from
    :func:`~repro.obs.critical_path.aggregate_tail`): one row per
    critical-path segment kind with the summed seconds the tail requests
    spent in it and its share of the tail's total end-to-end time —
    the additive attribution that tells you *where* the p99 lives.
    Zero-second kinds are omitted.
    """
    rows = []
    for kind, seconds in report.ranked():
        if seconds <= 0:
            continue
        rows.append([kind, f"{seconds:.4f}", f"{report.share(kind) * 100:.1f}%"])
    if not rows:
        raise ConfigurationError("tail report attributes no time to any segment")
    table = ascii_table(["segment", "seconds", "share"], rows, title=title)
    table += (
        f"\ntail: {report.num_tail}/{report.num_traces} traces with "
        f"e2e >= p{report.percentile:g} = {report.threshold:.4f}s "
        f"(total e2e {report.total_e2e:.4f}s)"
    )
    return table


def latency_table(
    results: Mapping[str, EngineResult],
    title: str | None = None,
    ttft_slo: float | None = None,
    tpot_slo: float | None = None,
) -> str:
    """Per-run latency detail: queue delay, TTFT, TPOT, E2E, SLO attainment.

    Runs without latency statistics are skipped; raises if none have any.
    """
    rows = []
    for k, r in results.items():
        lat = r.latency
        if lat is None:
            continue
        row = [
            k,
            f"{lat.queue_delay.mean:.3f}",
            f"{lat.ttft.p50:.3f}",
            f"{lat.ttft.p90:.3f}",
            f"{lat.ttft.p99:.3f}",
            f"{lat.tpot.p50 * 1e3:.1f}",
            f"{lat.tpot.p99 * 1e3:.1f}",
            f"{lat.e2e.p50:.2f}",
            f"{lat.e2e.p99:.2f}",
        ]
        if ttft_slo is not None or tpot_slo is not None:
            row.append(f"{lat.slo_attainment(ttft_slo, tpot_slo) * 100:.0f}%")
        rows.append(row)
    if not rows:
        raise ConfigurationError("no results carry latency statistics")
    headers = [
        "run",
        "queue(s)",
        "ttft-p50",
        "ttft-p90",
        "ttft-p99",
        "tpot-p50(ms)",
        "tpot-p99(ms)",
        "e2e-p50",
        "e2e-p99",
    ]
    if ttft_slo is not None or tpot_slo is not None:
        headers.append("slo")
    return ascii_table(headers, rows, title=title)
