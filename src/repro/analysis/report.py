"""Comparison reports over engine results.

The paper reports *normalized throughput* (each bar divided by the best
vLLM configuration); these helpers compute the same quantities from
:class:`~repro.runtime.metrics.EngineResult` records and render them as
ASCII tables/charts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.runtime.metrics import EngineResult
from repro.utils.tables import ascii_table


def speedup(candidate: EngineResult, baseline: EngineResult) -> float:
    """Throughput ratio candidate/baseline (> 1 means faster)."""
    return candidate.throughput_rps / baseline.throughput_rps


def best_result(results: Sequence[EngineResult]) -> EngineResult:
    """Highest-throughput run of a sweep."""
    if not results:
        raise ConfigurationError("no results to compare")
    return max(results, key=lambda r: r.throughput_rps)


def normalized_throughputs(
    results: Mapping[str, EngineResult], baseline_key: str
) -> dict[str, float]:
    """Throughput of each run divided by the named baseline's."""
    if baseline_key not in results:
        raise ConfigurationError(f"baseline {baseline_key!r} not in results")
    base = results[baseline_key].throughput_rps
    return {k: r.throughput_rps / base for k, r in results.items()}


def comparison_table(
    results: Mapping[str, EngineResult],
    baseline_key: str | None = None,
    title: str | None = None,
) -> str:
    """Tabulate runs: throughput, tokens/s, phase times, normalized column."""
    keys = list(results.keys())
    base = (
        results[baseline_key].throughput_rps
        if baseline_key is not None
        else max(r.throughput_rps for r in results.values())
    )
    headers = ["run", "req/s", "norm", "out-tok/s", "time(s)", "transitions"]
    rows = []
    for k in keys:
        r = results[k]
        rows.append(
            [
                k,
                f"{r.throughput_rps:.4f}",
                f"{r.throughput_rps / base:.2f}",
                f"{r.throughput_tokens_per_s:.0f}",
                f"{r.total_time:.1f}",
                str(r.transitions),
            ]
        )
    return ascii_table(headers, rows, title=title)
