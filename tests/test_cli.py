"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.model == "34b"
        assert args.config == "T4P2"


class TestCommands:
    def test_run_static(self, capsys):
        rc = main(
            [
                "run",
                "--model",
                "34b",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "8",
                "--config",
                "T4P2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "req/s" in out and "T4P2" in out

    def test_run_seesaw_with_timeline(self, capsys):
        rc = main(
            [
                "run",
                "--model",
                "34b",
                "--dataset",
                "const:512x32",
                "--num-requests",
                "8",
                "--config",
                "P8->T4P2",
                "--timeline",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "reshard" in out

    def test_run_chunked(self, capsys):
        rc = main(
            [
                "run",
                "--dataset",
                "const:512x16",
                "--num-requests",
                "6",
                "--config",
                "T2P2D2",
                "--chunked",
            ]
        )
        assert rc == 0
        assert "+chunked" in capsys.readouterr().out

    def test_predict(self, capsys):
        rc = main(["predict", "--model", "70b", "--config", "P8->T4P2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "prefill rate" in out and "req rate" in out

    def test_predict_static_config(self, capsys):
        rc = main(["predict", "--model", "34b", "--config", "T4P2"])
        assert rc == 0
        assert "T4P2 -> T4P2" in capsys.readouterr().out

    def test_reproduce_table1(self, capsys):
        rc = main(["reproduce", "table1"])
        assert rc == 0
        assert "GPU Model" in capsys.readouterr().out

    def test_reproduce_fig15(self, capsys):
        rc = main(["reproduce", "fig15"])
        assert rc == 0
        assert "Figure 15" in capsys.readouterr().out

    def test_reproduce_unknown(self, capsys):
        rc = main(["reproduce", "fig99"])
        assert rc == 2

    def test_error_maps_to_exit_code(self, capsys):
        # 70B cannot fit a 4-GPU A10 cluster: ReproError -> exit 1.
        rc = main(
            [
                "run",
                "--model",
                "70b",
                "--num-gpus",
                "4",
                "--dataset",
                "const:64x4",
                "--num-requests",
                "2",
                "--config",
                "T4",
            ]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_compare_small(self, capsys):
        rc = main(
            [
                "compare",
                "--model",
                "15b",
                "--num-gpus",
                "4",
                "--dataset",
                "const:512x64",
                "--num-requests",
                "12",
            ]
        )
        assert rc == 0
        assert "speedup:" in capsys.readouterr().out


class TestOnlineFlags:
    def test_run_with_request_rate_prints_latency(self, capsys):
        rc = main(
            [
                "run",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "8",
                "--config",
                "T4P2",
                "--request-rate",
                "2.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency:" in out and "ttft" in out
        assert "ttft-p50(s)" in out  # latency columns in the table

    def test_run_bursty_arrival(self, capsys):
        rc = main(
            [
                "run",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "8",
                "--config",
                "T4P2",
                "--request-rate",
                "2.0",
                "--arrival",
                "bursty",
                "--burstiness",
                "6.0",
            ]
        )
        assert rc == 0
        assert "latency:" in capsys.readouterr().out

    def test_offline_run_still_reports_latency(self, capsys):
        rc = main(
            [
                "run",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "8",
                "--config",
                "T4P2",
            ]
        )
        assert rc == 0
        assert "ttft" in capsys.readouterr().out

    def test_malformed_const_spec_is_repro_error(self, capsys):
        rc = main(["run", "--dataset", "const:axb", "--num-requests", "2"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "const:<prompt>x<output>" in err

    def test_arrival_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--arrival", "uniform"])

    def test_router_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--router", "fastest"])

    def test_run_with_jsq_router_prints_routing_stats(self, capsys):
        rc = main(
            [
                "run",
                "--model",
                "15b",
                "--num-gpus",
                "4",
                "--dataset",
                "const:512x64",
                "--num-requests",
                "8",
                "--config",
                "D2T2",
                "--request-rate",
                "2.0",
                "--router",
                "jsq",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "routing: jsq:" in out
        assert "tok-imbal" in out

    def test_run_with_trace_arrivals(self, capsys):
        from pathlib import Path

        trace = Path(__file__).parent.parent / "examples" / "arrival_trace.json"
        rc = main(
            [
                "run",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "8",
                "--config",
                "T4P2",
                "--arrival",
                f"trace:{trace}",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency:" in out

    def test_single_timestamp_trace_runs_as_offline(self, capsys, tmp_path):
        """Regression: a zero-span trace (one timestamp) has no measurable
        offered rate; it must run as offline, not error out."""
        import json

        trace = tmp_path / "one.json"
        trace.write_text(json.dumps([5.0]))
        rc = main(
            [
                "run",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "1",
                "--config",
                "T4P2",
                "--arrival",
                f"trace:{trace}",
            ]
        )
        assert rc == 0
        assert "req/s" in capsys.readouterr().out

    def test_negative_request_rate_rejected(self, capsys):
        rc = main(
            ["run", "--dataset", "const:256x16", "--num-requests", "2", "--request-rate", "-1"]
        )
        assert rc == 1
        assert "--request-rate" in capsys.readouterr().err

    def test_run_with_slo_flags_renders_slo_column(self, capsys):
        """Regression: latency_table's SLO-attainment column was dead code
        — no CLI flag ever reached it."""
        rc = main(
            [
                "run",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "8",
                "--config",
                "T4P2",
                "--request-rate",
                "2.0",
                "--ttft-slo",
                "5.0",
                "--tpot-slo",
                "0.5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "| slo" in out  # the attainment column header renders
        assert "%" in out

    def test_run_offline_with_slo_flags_renders_slo_column(self, capsys):
        rc = main(
            [
                "run",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "8",
                "--config",
                "T4P2",
                "--ttft-slo",
                "60.0",
            ]
        )
        assert rc == 0
        assert "| slo" in capsys.readouterr().out

    def test_compare_with_slo_objective_renders_slo_column(self, capsys):
        rc = main(
            [
                "compare",
                "--model",
                "15b",
                "--num-gpus",
                "4",
                "--dataset",
                "const:512x64",
                "--num-requests",
                "12",
                "--request-rate",
                "1.0",
                "--objective",
                "slo",
                "--ttft-slo",
                "30.0",
                "--tpot-slo",
                "0.5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup:" in out
        assert "| slo" in out
        assert "objective: slo" in out

    def test_run_with_slo_router(self, capsys):
        rc = main(
            [
                "run",
                "--model",
                "15b",
                "--num-gpus",
                "4",
                "--dataset",
                "const:512x64",
                "--num-requests",
                "8",
                "--config",
                "D2T2",
                "--request-rate",
                "2.0",
                "--router",
                "slo",
                "--ttft-slo",
                "10.0",
            ]
        )
        assert rc == 0
        assert "routing: slo:" in capsys.readouterr().out

    def test_objective_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--objective", "goodput"])

    def test_nonpositive_slo_rejected(self, capsys):
        rc = main(
            [
                "run",
                "--dataset",
                "const:256x16",
                "--num-requests",
                "2",
                "--ttft-slo",
                "-1",
            ]
        )
        assert rc == 1
        assert "ttft_slo" in capsys.readouterr().err

    def test_predict_with_slo_prints_attainment(self, capsys):
        rc = main(
            [
                "predict",
                "--model",
                "34b",
                "--config",
                "T4P2",
                "--request-rate",
                "0.3",
                "--ttft-slo",
                "10.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "slo attainment" in out and "goodput" in out

    def test_compare_online_prints_latency_table(self, capsys):
        rc = main(
            [
                "compare",
                "--model",
                "15b",
                "--num-gpus",
                "4",
                "--dataset",
                "const:512x64",
                "--num-requests",
                "12",
                "--request-rate",
                "1.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup:" in out and "ttft-p90" in out


class TestFleetCli:
    """Elastic-fleet flags: wiring and clean validation errors."""

    def test_autoscaled_run_prints_fleet_table(self, capsys):
        rc = main(
            [
                "run",
                "--model",
                "15b",
                "--num-gpus",
                "8",
                "--config",
                "T2",
                "--dataset",
                "const:1024x32",
                "--num-requests",
                "24",
                "--request-rate",
                "3.0",
                "--arrival",
                "diurnal:15",
                "--router",
                "jsq",
                "--coupled",
                "--autoscaler",
                "threshold",
                "--min-dp",
                "1",
                "--max-dp",
                "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet:" in out
        assert "peak-dp" in out and "replica-s" in out

    def assert_clean_error(self, capsys, argv, fragment):
        """The CLI must exit 1 with a one-line error (no traceback)."""
        rc = main(argv)
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert fragment in err
        assert "Traceback" not in err

    def test_negative_request_rate_is_clean_error(self, capsys):
        self.assert_clean_error(
            capsys,
            ["run", "--request-rate", "-1"],
            "--request-rate must be >= 0",
        )

    def test_autoscaler_without_rate_is_clean_error(self, capsys):
        self.assert_clean_error(
            capsys,
            ["run", "--coupled", "--autoscaler", "threshold"],
            "needs an online workload",
        )

    def test_diurnal_without_rate_is_clean_error(self, capsys):
        self.assert_clean_error(
            capsys,
            ["run", "--arrival", "diurnal:60"],
            "needs --request-rate > 0",
        )

    def test_unknown_autoscaler_is_clean_error(self, capsys):
        self.assert_clean_error(
            capsys,
            ["run", "--coupled", "--request-rate", "1", "--autoscaler", "bogus"],
            "unknown autoscaler policy 'bogus'",
        )

    def test_min_dp_above_max_dp_is_clean_error(self, capsys):
        self.assert_clean_error(
            capsys,
            [
                "run",
                "--coupled",
                "--request-rate",
                "1",
                "--autoscaler",
                "threshold",
                "--min-dp",
                "4",
                "--max-dp",
                "2",
            ],
            "min_dp (4) must be <= max_dp (2)",
        )

    def test_autoscaler_without_coupled_is_clean_error(self, capsys):
        self.assert_clean_error(
            capsys,
            ["run", "--request-rate", "1", "--autoscaler", "threshold"],
            "needs the event-coupled path",
        )

    def test_reproduce_lists_autoscale(self, capsys):
        rc = main(["reproduce", "definitely-not-an-artifact"])
        assert rc == 2
        assert "autoscale" in capsys.readouterr().err

    def test_dp_bounds_without_autoscaler_is_clean_error(self, capsys):
        self.assert_clean_error(
            capsys,
            ["run", "--coupled", "--request-rate", "1", "--min-dp", "2"],
            "only apply with an autoscaler",
        )
