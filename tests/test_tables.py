"""ASCII rendering helpers."""

import pytest

from repro.utils.tables import ascii_bar_chart, ascii_series, ascii_table


class TestAsciiTable:
    def test_contains_cells_and_headers(self):
        out = ascii_table(["a", "bb"], [["1", "22"], ["333", "4"]])
        assert "a" in out and "bb" in out
        assert "333" in out

    def test_title_first_line(self):
        out = ascii_table(["x"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment_width(self):
        out = ascii_table(["col"], [["longvalue"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows same width


class TestBarChart:
    def test_longest_bar_for_max(self):
        out = ascii_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})

    def test_zero_values_ok(self):
        out = ascii_bar_chart({"a": 0.0})
        assert "a" in out


class TestSeries:
    def test_renders_all_points(self):
        out = ascii_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        assert "s1" in out and "s2" in out
        assert "0.400" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_series("x", [1, 2], {"s": [0.1]})
