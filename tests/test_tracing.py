"""Per-request distributed tracing with critical-path attribution.

Contracts pinned by this PR:

1. **Zero overhead when off** — ``tracing=None`` (the default) leaves
   every engine on its exact pre-tracing path, and attaching a tracer
   must not perturb the simulation at all: tracing-on and tracing-off
   runs produce identical results on every engine and on the
   coupled/autoscaled/fluid paths (same contract as telemetry).
2. **Conservation** — every trace's critical-path segments tile
   ``[arrival, finish]`` exactly: contiguous, non-negative, summing to
   the request's e2e (enforced as a simsan-style invariant at finalize).
3. **Sampling** — ``all | slo_miss | p99_exemplars | rate:<f>`` select
   deterministically; bad specs raise.
4. **Artifacts** — repro-trace-v1 JSONL round-trips (including the
   dropped counter at the trace cap); a trailing partial line warns and
   flags truncation instead of raising; Chrome trace-event JSON parses
   and pairs its flow events.
5. **Burn-rate autoscaler** — ``threshold:burn_rate`` reacts a window
   earlier than the queue-depth threshold on a rising diurnal edge.
"""

import json
import math

import pytest

from repro.analysis.report import critical_path_table
from repro.cluster.autoscaler import (
    BurnRateThresholdAutoscaler,
    make_autoscaler,
)
from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.engines.base import EngineOptions
from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.disaggregated import DisaggregatedEngine, DisaggregationPlan
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError
from repro.obs import (
    Tracer,
    aggregate_tail,
    check_conservation,
    chrome_trace_events,
    decompose,
    load_trace_jsonl,
    parse_sampling,
    render_trace_flame,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.critical_path import (
    DECODE,
    PREEMPT_STALL,
    PREFILL,
    PREFILL_WAIT,
    QUEUE_WAIT,
    STORM_REDISPATCH,
    WARMUP_WAIT,
    Segment,
    TraceInvariantError,
)
from repro.parallel.config import parse_config
from repro.workloads.arrivals import diurnal_arrivals, poisson_arrivals
from repro.workloads.datasets import sharegpt_workload
from repro.workloads.synthetic import constant_workload


def assert_results_identical(a, b):
    assert a.total_time == b.total_time
    assert a.phase_time == b.phase_time
    assert a.iterations == b.iterations
    assert a.transitions == b.transitions
    if a.latency is not None:
        assert b.latency is not None
        for ra, rb in zip(a.latency.records, b.latency.records):
            assert ra == rb


def assert_conserved(trace):
    total = sum(s.duration for s in trace.segments)
    assert total == pytest.approx(trace.e2e, rel=1e-9, abs=1e-9)
    for prev, cur in zip(trace.segments, trace.segments[1:]):
        assert cur.start == pytest.approx(prev.end, abs=1e-9)
    check_conservation(trace.request_id, trace.segments, trace.e2e)


# --------------------------------------------------------------------- #
# Critical-path decomposition
# --------------------------------------------------------------------- #


class TestDecompose:
    def test_base_cuts_tile_the_request(self):
        segs = decompose(0.0, 10.0, first_schedule=2.0, first_token=3.0, dispatch=1.0)
        assert [s.kind for s in segs] == [QUEUE_WAIT, PREFILL_WAIT, PREFILL, DECODE]
        assert segs[0].start == 0.0 and segs[-1].end == 10.0
        check_conservation(1, segs, 10.0)

    def test_no_dispatch_folds_wait_into_queue(self):
        segs = decompose(0.0, 5.0, first_schedule=2.0, first_token=3.0)
        assert [s.kind for s in segs] == [QUEUE_WAIT, PREFILL, DECODE]
        assert segs[0].duration == pytest.approx(2.0)

    def test_overlay_splits_base_segment(self):
        segs = decompose(
            0.0,
            10.0,
            first_schedule=1.0,
            first_token=2.0,
            dispatch=0.5,
            overlays=[(PREEMPT_STALL, 4.0, 6.0, 1)],
            replica=1,
        )
        kinds = [s.kind for s in segs]
        assert kinds == [QUEUE_WAIT, PREFILL_WAIT, PREFILL, DECODE, PREEMPT_STALL, DECODE]
        stall = segs[kinds.index(PREEMPT_STALL)]
        assert (stall.start, stall.end) == (4.0, 6.0)
        check_conservation(2, segs, 10.0)

    def test_warmup_only_claims_wait_time(self):
        # A warming window overlapping the prefill segment must not
        # re-label compute as waiting: warmup is a wait-only overlay.
        segs = decompose(
            0.0,
            8.0,
            first_schedule=2.0,
            first_token=4.0,
            dispatch=0.0,
            overlays=[(WARMUP_WAIT, 1.0, 3.0, 0)],
        )
        by_kind = {}
        for s in segs:
            by_kind[s.kind] = by_kind.get(s.kind, 0.0) + s.duration
        assert by_kind[WARMUP_WAIT] == pytest.approx(1.0)  # [1, 2] only
        assert by_kind[PREFILL] == pytest.approx(2.0)  # untouched
        check_conservation(3, segs, 8.0)

    def test_stall_outranks_warmup(self):
        segs = decompose(
            0.0,
            6.0,
            first_schedule=4.0,
            first_token=5.0,
            dispatch=0.0,
            overlays=[
                (WARMUP_WAIT, 0.0, 3.0, 0),
                (STORM_REDISPATCH, 2.0, 4.0, 1),
            ],
        )
        by_kind = {}
        for s in segs:
            by_kind[s.kind] = by_kind.get(s.kind, 0.0) + s.duration
        assert by_kind[STORM_REDISPATCH] == pytest.approx(2.0)
        assert by_kind[WARMUP_WAIT] == pytest.approx(2.0)
        check_conservation(4, segs, 6.0)

    def test_unknown_overlay_kind_raises(self):
        with pytest.raises(TraceInvariantError):
            decompose(
                0.0, 1.0, first_schedule=0.1, first_token=0.2,
                overlays=[("coffee_break", 0.0, 0.5, 0)],
            )

    def test_zero_e2e_is_empty(self):
        assert decompose(5.0, 5.0, first_schedule=5.0, first_token=5.0) == ()

    def test_conservation_rejects_gap(self):
        segs = (
            Segment(QUEUE_WAIT, 0.0, 1.0),
            Segment(DECODE, 2.0, 3.0),  # gap [1, 2]
        )
        with pytest.raises(TraceInvariantError):
            check_conservation(7, segs, 3.0)

    def test_conservation_rejects_bad_sum(self):
        segs = (Segment(DECODE, 0.0, 1.0),)
        with pytest.raises(TraceInvariantError):
            check_conservation(8, segs, 2.0)


class TestAggregateTail:
    def _trace(self, request_id, e2e, kind=DECODE):
        class T:
            pass

        t = T()
        t.request_id = request_id
        t.e2e = e2e
        t.segments = (Segment(kind, 0.0, e2e),)
        return t

    def test_tail_selection_and_ranking(self):
        traces = [self._trace(i, float(i + 1)) for i in range(100)]
        traces[99].segments = (
            Segment(QUEUE_WAIT, 0.0, 60.0),
            Segment(DECODE, 60.0, 100.0),
        )
        report = aggregate_tail(traces, percentile=99.0)
        assert report.num_tail >= 1
        ranked = report.ranked()
        assert ranked[0][0] == QUEUE_WAIT
        assert report.share(QUEUE_WAIT) > report.share(DECODE)

    def test_single_trace_fallback(self):
        report = aggregate_tail([self._trace(0, 2.0)], percentile=99.0)
        assert report.num_tail == 1
        assert report.total_e2e == pytest.approx(2.0)

    def test_report_table_renders(self):
        report = aggregate_tail(
            [self._trace(i, 1.0 + i) for i in range(10)], percentile=90.0
        )
        table = critical_path_table(report, title="cp")
        assert "decode" in table
        assert "tail:" in table


# --------------------------------------------------------------------- #
# Sampling
# --------------------------------------------------------------------- #


class TestSampling:
    def test_parse_modes(self):
        assert parse_sampling("all") == ("all", 1.0)
        assert parse_sampling("slo_miss") == ("slo_miss", 1.0)
        assert parse_sampling("p99_exemplars") == ("p99_exemplars", 1.0)
        mode, rate = parse_sampling("rate:0.25")
        assert mode == "rate" and rate == 0.25

    @pytest.mark.parametrize("bad", ["rate:0", "rate:1.5", "rate:x", "sometimes"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_sampling(bad)

    def test_rate_sampling_is_deterministic_subset(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(64, 256, 16), 8.0, seed=9)

        def run(sampling):
            tr = Tracer(sampling)
            VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(tracing=tr),
            ).run(wl)
            return tr

        full = run("all")
        sampled_a = run("rate:0.5")
        sampled_b = run("rate:0.5")
        ids_a = [t.request_id for t in sampled_a.traces]
        ids_b = [t.request_id for t in sampled_b.traces]
        assert ids_a == ids_b  # deterministic, no RNG state involved
        assert 0 < len(ids_a) < len(full.traces)
        assert set(ids_a) <= {t.request_id for t in full.traces}

    def test_p99_exemplars_keep_the_worst(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(50, 256, 16), 10.0, seed=10)
        tr = Tracer("p99_exemplars")
        result = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(tracing=tr),
        ).run(wl)
        assert tr.num_requests == 50
        assert len(tr.traces) == max(1, int(50 * 0.01))
        worst_e2e = max(r.e2e for r in result.latency.records)
        assert max(t.e2e for t in tr.traces) == pytest.approx(worst_e2e)

    def test_slo_miss_keeps_only_violators(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(40, 512, 16), 12.0, seed=11)
        tr = Tracer("slo_miss")
        result = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(tracing=tr, ttft_slo=0.2),
        ).run(wl)
        misses = [r for r in result.latency.records if r.ttft > 0.2]
        assert len(tr.traces) == len(misses)
        assert {t.request_id for t in tr.traces} == {r.request_id for r in misses}

    def test_cap_counts_drops(self):
        tr = Tracer("all", max_requests=2)
        for i in range(5):
            tr.note_dispatch(float(i), i, 0)
        assert tr.dropped_requests == 3


# --------------------------------------------------------------------- #
# Zero-overhead contract: tracing must not perturb the simulation
# --------------------------------------------------------------------- #


class TestZeroOverheadContract:
    def run_pair(self, make_engine, workload):
        off = make_engine(None).run(workload)
        tr = Tracer("all")
        on = make_engine(tr).run(workload)
        return off, on, tr

    def test_decoupled_identical(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(16, 256, 16), 4.0, seed=1)
        off, on, tr = self.run_pair(
            lambda t: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(tracing=t),
            ),
            wl,
        )
        assert_results_identical(off, on)
        assert len(tr.traces) == 16
        for trace in tr.traces:
            assert_conserved(trace)

    def test_coupled_identical(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(24, 256, 16), 6.0, seed=2)
        off, on, tr = self.run_pair(
            lambda t: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(coupled=True, router="jsq", tracing=t),
            ),
            wl,
        )
        assert_results_identical(off, on)
        assert len(tr.traces) == 24
        for trace in tr.traces:
            assert_conserved(trace)
            assert trace.replica is not None

    def test_decode_prio_identical(self, tiny_model, cluster_a10_4):
        wl = constant_workload(12, 256, 16)
        off, on, tr = self.run_pair(
            lambda t: DecodePrioritizedEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("T4"),
                EngineOptions(tracing=t),
            ),
            wl,
        )
        assert_results_identical(off, on)
        for trace in tr.traces:
            assert_conserved(trace)

    def test_seesaw_identical_with_stalls(self, model_34b, cluster_a10_8):
        wl = sharegpt_workload(30, seed=7)
        off, on, tr = self.run_pair(
            lambda t: SeesawEngine(
                model_34b,
                cluster_a10_8,
                parse_config("P8"),
                parse_config("T4P2"),
                SeesawOptions(tracing=t),
            ),
            wl,
        )
        assert_results_identical(off, on)
        for trace in tr.traces:
            assert_conserved(trace)

    def test_disagg_identical_with_handoff(self, tiny_model, cluster_a10_4):
        wl = constant_workload(16, 256, 32)
        plan = DisaggregationPlan(
            prefill_config=parse_config("T2"), decode_config=parse_config("T2")
        )
        off, on, tr = self.run_pair(
            lambda t: DisaggregatedEngine(
                tiny_model, cluster_a10_4, plan, EngineOptions(tracing=t)
            ),
            wl,
        )
        assert_results_identical(off, on)
        assert tr.traces
        for trace in tr.traces:
            assert_conserved(trace)
            assert any(link.kind == "kv_handoff" for link in trace.links)

    def test_autoscaled_identical_with_warmup(self, tiny_model, cluster_a10_4):
        wl = diurnal_arrivals(constant_workload(128, 2048, 16), 16.0, 20.0, seed=3)
        off, on, tr = self.run_pair(
            lambda t: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("T2"),
                EngineOptions(
                    coupled=True,
                    router="jsq",
                    autoscaler="threshold",
                    min_dp=1,
                    max_dp=2,
                    tracing=t,
                ),
            ),
            wl,
        )
        assert_results_identical(off, on)
        for trace in tr.traces:
            assert_conserved(trace)

    def test_fluid_identical(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(32, 256, 16), 8.0, seed=4)
        off, on, tr = self.run_pair(
            lambda t: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(coupled=True, router="jsq", fidelity="fluid", tracing=t),
            ),
            wl,
        )
        assert off.total_time == on.total_time
        assert len(tr.traces) == 32
        for trace in tr.traces:
            assert_conserved(trace)
            assert trace.replica is not None

    def test_preemption_stall_segments(self, tiny_model, cluster_a10_4):
        """KV-pressure recompute preemptions must surface as stall
        segments attributed to the preempted requests, without breaking
        conservation or bit-exactness."""
        from repro.runtime.kvcache import KVCacheManager

        class TightKVEngine(VllmLikeEngine):
            def make_kv(self, config=None, reserve_tokens=0):
                return KVCacheManager(capacity_tokens=8192, block_size=16)

        wl = poisson_arrivals(constant_workload(8, 1000, 500), 100.0, seed=2)
        off, on, tr = self.run_pair(
            lambda t: TightKVEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("T2"),
                EngineOptions(tracing=t),
            ),
            wl,
        )
        assert_results_identical(off, on)
        preempted = [t for t in tr.traces if t.num_preemptions > 0]
        assert preempted
        for trace in preempted:
            assert_conserved(trace)
            stalls = [s for s in trace.segments if s.kind == PREEMPT_STALL]
            assert stalls
            assert sum(s.duration for s in stalls) > 0.0

    def test_rejects_non_tracer(self):
        with pytest.raises(ConfigurationError):
            EngineOptions(tracing=object())


# --------------------------------------------------------------------- #
# Storm re-dispatch spans (coupled preemption storms)
# --------------------------------------------------------------------- #


class TestStormSpans:
    def test_withdraw_redispatch_produces_storm_segment(self):
        from repro.runtime.latency import LatencyStats, RequestLatency
        from repro.runtime.metrics import EngineResult

        tr = Tracer("all")
        tr.note_dispatch(0.0, 0, 0)
        tr.note_withdraw(1.0, 0, 0)
        tr.note_redispatch(1.0, 0, 1)
        rec = RequestLatency(
            request_id=0,
            arrival_time=0.0,
            first_schedule_time=2.0,
            first_token_time=2.5,
            finish_time=4.0,
            output_len=8,
        )
        result = EngineResult(
            engine="x",
            label="x",
            num_requests=1,
            total_time=4.0,
            input_tokens=1,
            output_tokens=8,
            phase_time={},
            breakdown=None,
            iterations=1,
            transitions=0,
            latency=LatencyStats(records=(rec,)),
        )
        traces = tr.finalize(result)
        assert len(traces) == 1
        trace = traces[0]
        assert_conserved(trace)
        storm = [s for s in trace.segments if s.kind == STORM_REDISPATCH]
        assert storm and storm[0].duration == pytest.approx(1.0)
        assert any(link.type == "follows_from" for link in trace.links)
        assert trace.replica == 1


# --------------------------------------------------------------------- #
# Artifacts: JSONL roundtrip, truncation, Chrome export
# --------------------------------------------------------------------- #


def _traced_run(tmp_path, tiny_model, cluster, sampling="all", max_requests=None):
    wl = poisson_arrivals(constant_workload(20, 256, 16), 6.0, seed=5)
    kwargs = {} if max_requests is None else {"max_requests": max_requests}
    tr = Tracer(sampling, **kwargs)
    VllmLikeEngine(
        tiny_model,
        cluster,
        parse_config("D2T2"),
        EngineOptions(coupled=True, router="jsq", tracing=tr),
    ).run(wl)
    return tr


class TestTraceArtifacts:
    def test_jsonl_roundtrip(self, tmp_path, tiny_model, cluster_a10_4):
        tr = _traced_run(tmp_path, tiny_model, cluster_a10_4)
        path = str(tmp_path / "traces.jsonl")
        n = write_trace_jsonl(tr, path, meta={"cell": "test"})
        assert n == len(tr.traces)
        artifact = load_trace_jsonl(path)
        assert artifact.sampling == "all"
        assert artifact.num_requests == 20
        assert artifact.meta == {"cell": "test"}
        assert not artifact.truncated
        assert len(artifact.traces) == len(tr.traces)
        for orig, loaded in zip(tr.traces, artifact.traces):
            assert loaded.request_id == orig.request_id
            assert loaded.e2e == pytest.approx(orig.e2e)
            assert [s.kind for s in loaded.segments] == [
                s.kind for s in orig.segments
            ]
            assert len(loaded.links) == len(orig.links)
            assert_conserved(loaded)

    def test_dropped_counter_survives_roundtrip(self, tmp_path, tiny_model, cluster_a10_4):
        """The mark cap bounds in-run memory: marks past ``max_requests``
        are counted in ``dropped_requests`` (traces for the affected
        requests still exist, backfilled from latency records, but lose
        their causal overlays). The counter must survive the JSONL
        roundtrip so a loaded artifact discloses the loss."""
        tr = _traced_run(tmp_path, tiny_model, cluster_a10_4, max_requests=4)
        assert tr.dropped_requests > 0
        assert len(tr._marks) <= 4
        path = str(tmp_path / "capped.jsonl")
        write_trace_jsonl(tr, path)
        artifact = load_trace_jsonl(path)
        assert artifact.dropped_requests == tr.dropped_requests

    def test_truncated_artifact_warns(self, tmp_path, tiny_model, cluster_a10_4):
        tr = _traced_run(tmp_path, tiny_model, cluster_a10_4)
        path = tmp_path / "trunc.jsonl"
        write_trace_jsonl(tr, str(path))
        text = path.read_text()
        path.write_text(text[: len(text) - 40])  # chop mid-row
        with pytest.warns(UserWarning, match="truncated"):
            artifact = load_trace_jsonl(str(path))
        assert artifact.truncated
        assert len(artifact.traces) < len(tr.traces)

    def test_midfile_corruption_raises(self, tmp_path, tiny_model, cluster_a10_4):
        tr = _traced_run(tmp_path, tiny_model, cluster_a10_4)
        path = tmp_path / "corrupt.jsonl"
        write_trace_jsonl(tr, str(path))
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:10]  # mangle a middle row
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError):
            load_trace_jsonl(str(path))

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "nope"}) + "\n")
        with pytest.raises(ConfigurationError):
            load_trace_jsonl(str(path))

    def test_chrome_export_parses_and_pairs_flows(self, tmp_path, tiny_model, cluster_a10_4):
        tr = _traced_run(tmp_path, tiny_model, cluster_a10_4)
        doc = chrome_trace_events(tr.traces)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events
        slices = [e for e in events if e["ph"] == "X"]
        for e in slices:
            assert e["ts"] >= 0 and e["dur"] >= 0
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(ends)
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        path = tmp_path / "chrome.json"
        n = write_chrome_trace(tr.traces, str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == n

    def test_flame_render(self, tmp_path, tiny_model, cluster_a10_4):
        tr = _traced_run(tmp_path, tiny_model, cluster_a10_4)
        out = render_trace_flame(tr.traces[0], width=40)
        assert f"request {tr.traces[0].request_id}" in out
        assert "[" in out and "]" in out


# --------------------------------------------------------------------- #
# Telemetry export truncation (satellite: obs-v1 gets the same tolerance)
# --------------------------------------------------------------------- #


class TestTelemetryTruncation:
    def test_trailing_partial_line_warns_not_raises(self, tmp_path):
        from repro.obs import Telemetry, load_jsonl, write_jsonl

        tel = Telemetry()
        for t in (0.0, 1.0, 2.0):
            tel.point("cluster.active_dp", t, 1.0)
        tel.event(0.5, "dispatch", request_id=0)
        path = tmp_path / "tel.jsonl"
        write_jsonl(tel, path)
        text = path.read_text()
        path.write_text(text[:-15])  # chop the final row mid-JSON
        with pytest.warns(UserWarning, match="truncated"):
            loaded = load_jsonl(path)
        assert loaded.series["cluster.active_dp"]

    def test_midfile_corruption_still_raises(self, tmp_path):
        from repro.obs import Telemetry, load_jsonl, write_jsonl

        tel = Telemetry()
        for t in (0.0, 1.0, 2.0):
            tel.point("cluster.active_dp", t, 1.0)
        path = tmp_path / "tel.jsonl"
        write_jsonl(tel, path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:5]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError):
            load_jsonl(path)


# --------------------------------------------------------------------- #
# Burn-rate autoscaler
# --------------------------------------------------------------------- #


class TestBurnRateAutoscaler:
    def test_factory_dispatch_and_validation(self):
        scaler = make_autoscaler(
            "threshold:burn_rate",
            1,
            4,
            up_queue_tokens=2048.0,
            capacity_rps_per_replica=1.0,
            ttft_slo=0.5,
        )
        assert isinstance(scaler, BurnRateThresholdAutoscaler)
        with pytest.raises(ConfigurationError):
            make_autoscaler(
                "threshold:burn_rate",
                1,
                4,
                up_queue_tokens=2048.0,
                capacity_rps_per_replica=1.0,
            )

    def test_reacts_a_window_earlier_than_queue_depth(
        self, tiny_model, cluster_a10_4
    ):
        """On a rising diurnal edge with short prompts, queued requests
        become guaranteed TTFT misses long before a full prefill budget
        of queue *tokens* accumulates: the burn-rate signal must fire at
        least one evaluation window before the queue-depth rule (which on
        this cell never fires at all — 64-token prompts cannot pile up a
        token threshold sized for a prefill batch)."""
        wl = diurnal_arrivals(constant_workload(200, 64, 64), 20.0, 60.0, seed=6)

        def first_scale_up(policy):
            eng = VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("T2"),
                EngineOptions(
                    coupled=True,
                    router="jsq",
                    autoscaler=policy,
                    min_dp=1,
                    max_dp=2,
                    ttft_slo=0.4,
                    max_num_seqs=4,
                ),
            )
            result = eng.run(wl)
            fleet = result.router.fleet
            ups = [e.time for e in fleet.events if e.kind == "scale-up"]
            return ups[0] if ups else math.inf, fleet

        t_thresh, _ = first_scale_up("threshold")
        t_burn, fleet_burn = first_scale_up("threshold:burn_rate")
        assert t_burn < t_thresh
        from repro.cluster.autoscaler import DEFAULT_EVAL_INTERVAL_S

        assert t_thresh - t_burn >= DEFAULT_EVAL_INTERVAL_S
        up_events = [e for e in fleet_burn.events if e.kind == "scale-up"]
        assert any("burn rate" in e.reason for e in up_events)

    def test_falls_back_to_threshold_rules_when_healthy(self):
        scaler = BurnRateThresholdAutoscaler(
            1, 4, up_queue_tokens=100.0, ttft_slo=10.0
        )

        class _Load:
            def queued_prefill_tokens(self, now):
                return 500.0

        class _Fleet:
            target_count = 1

            def active_handles(self):
                return []

            def dispatch_loads(self):
                return [_Load()]

        # No queued requests are doomed (SLO 10s), so the verdict must be
        # the plain threshold one: queue depth 500 > 100 -> scale up.
        assert scaler.target_dp(0.0, _Fleet()) == 2

    def test_fluid_path_runs_with_burn_rate(self, tiny_model, cluster_a10_4):
        wl = diurnal_arrivals(constant_workload(200, 512, 8), 24.0, 30.0, seed=8)
        result = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(
                coupled=True,
                router="jsq",
                fidelity="fluid",
                autoscaler="threshold:burn_rate",
                min_dp=1,
                max_dp=2,
                ttft_slo=0.35,
            ),
        ).run(wl)
        assert result.router.fleet is not None


# --------------------------------------------------------------------- #
# Goldens checker (repro check goldens)
# --------------------------------------------------------------------- #


class TestGoldensChecker:
    def test_fast_cells_pass(self):
        from repro.check.goldens import render_goldens_table, run_goldens

        outcomes = run_goldens(("vllm_plain", "disagg"))
        assert all(o.passed for o in outcomes)
        table = render_goldens_table(outcomes)
        assert "PASS" in table and "FAIL" not in table

    def test_mismatch_reports_detail(self):
        from dataclasses import replace

        from repro.check.goldens import check_result, golden_scenarios

        result = golden_scenarios()["vllm_plain"]()
        broken = replace(result, total_time=result.total_time * 1.5)
        outcome = check_result("vllm_plain", broken)
        assert not outcome.passed
        assert any("total_time" in m for m in outcome.mismatches)

    def test_literals_match_test_suite_pins(self):
        """The src-side literals must stay in lockstep with the tier-1
        pins in tests/test_online_serving.py."""
        from repro.check.goldens import GOLDEN_SEED as SRC

        from test_online_serving import GOLDEN_SEED as TESTS

        assert SRC == TESTS
