"""RNG determinism and statistics helpers."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rng
from repro.utils.stats import Summary, geomean, mean, percentile, summarize


class TestRng:
    def test_default_seed_is_deterministic(self):
        a = make_rng().integers(0, 1000, 10)
        b = make_rng().integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_explicit_seed(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(8), make_rng(2).random(8))

    def test_spawn_is_deterministic(self):
        c1 = spawn_rng(make_rng(3), "workload").random(4)
        c2 = spawn_rng(make_rng(3), "workload").random(4)
        assert np.array_equal(c1, c2)

    def test_spawn_keys_are_independent(self):
        parent = make_rng(3)
        a = spawn_rng(parent, "a").random(4)
        parent2 = make_rng(3)
        b = spawn_rng(parent2, "b").random(4)
        assert not np.array_equal(a, b)


class TestGeomean:
    def test_simple(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_identity(self):
        assert geomean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_less_than_arithmetic_mean(self):
        values = [1.0, 2.0, 10.0]
        assert geomean(values) < mean(values)


class TestSummarize:
    def test_fields(self):
        s = summarize([1, 2, 3, 4, 5])
        assert isinstance(s, Summary)
        assert s.count == 5
        assert s.mean == pytest.approx(3.0)
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.p50 == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            percentile([], 50)
