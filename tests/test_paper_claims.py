"""Integration tests of the paper's headline claims (shape, not absolutes).

Each test corresponds to a quantitative statement in the paper; these are
the acceptance criteria of the reproduction. EXPERIMENTS.md records the
measured values next to the paper's.
"""

import pytest

from repro.core.engine import SeesawEngine
from repro.engines.vllm_like import VllmLikeEngine
from repro.experiments.fig1_breakdown import run_fig1
from repro.experiments.fig2_scheduling import run_fig2
from repro.experiments.fig4_disagg import run_fig4
from repro.experiments.fig10_e2e import run_fig10_cell
from repro.experiments.fig13_dp_ratio import run_fig13
from repro.experiments.fig14_bandwidth import run_fig14
from repro.hardware.cluster import make_cluster
from repro.parallel.config import parse_config
from repro.workloads.datasets import arxiv_workload


class TestFig1Claims:
    """Section 1/3: the two observations behind the paper."""

    @pytest.fixture(scope="class")
    def fig1(self):
        return run_fig1()

    def test_prefill_time_increases_with_tp(self, fig1):
        times = [r.prefill_time for r in fig1.rows]  # TP1PP8 ... TP8PP1
        assert times == sorted(times)

    def test_tp8_prefill_is_comm_dominated(self, fig1):
        parts = fig1.rows[-1].prefill_parts
        assert parts["communication"] > 0.6 * sum(parts.values())

    def test_pp8_decode_is_weight_transfer_dominated(self, fig1):
        parts = fig1.rows[0].decode_parts
        assert parts["weight_transfer"] > 0.6 * sum(parts.values())

    def test_decode_time_decreases_with_tp(self, fig1):
        times = [r.decode_time for r in fig1.rows]
        assert times[0] > times[1] > times[2]
        assert times[3] <= times[1]  # TP8 at worst mid-pack

    def test_pp_beats_tp_for_prefill_by_multiples(self, fig1):
        assert fig1.rows[-1].prefill_time > 3 * fig1.rows[0].prefill_time


class TestFig2Claims:
    """Section 4.2: scheduling-policy trade-offs under re-sharding."""

    @pytest.fixture(scope="class")
    def fig2(self):
        return run_fig2(num_requests=300)

    def test_eager_transitions_are_frequent_and_slow(self, fig2):
        eager = fig2.policies["prefill-prioritizing"]
        tiered = fig2.policies["tiered+transition-minimizing"]
        assert eager.transitions > 4 * max(1, tiered.transitions)
        assert tiered.throughput_rps > 1.3 * eager.throughput_rps

    def test_tiered_beats_decode_prioritizing(self, fig2):
        dp = fig2.policies["decode-prioritizing"]
        tiered = fig2.policies["tiered+transition-minimizing"]
        assert tiered.throughput_rps > dp.throughput_rps

    def test_tiered_has_minimal_transitions(self, fig2):
        assert fig2.policies["tiered+transition-minimizing"].transitions <= 3


class TestFig4Claims:
    """Section 3.2: disaggregation's mismatch on constrained clusters."""

    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4(num_requests=200)

    def test_only_one_split_feasible(self, fig4):
        assert fig4.feasible_splits == ["4+4"]

    def test_stage_mismatch_large(self, fig4):
        """Paper: >6x prefill/decode mismatch; we require >=4x."""
        assert fig4.mismatch_ratio >= 4.0

    def test_halved_decode_pool_loses_disproportionately(self, fig4):
        """Paper: 4-GPU decode ~15% of 8-GPU; we require <=40%."""
        assert fig4.decode_fraction_of_8gpu <= 0.40


class TestFig10Claims:
    """Section 6.2: end-to-end speedups on PCIe machines."""

    def test_arxiv_34b_a10_speedup_band(self):
        c = run_fig10_cell("A10", "34b", "arxiv", num_requests=80)
        assert 1.05 <= c.speedup <= 2.0

    def test_arxiv_l4_34b_speedup_band(self):
        c = run_fig10_cell("L4", "34b", "arxiv", num_requests=80)
        assert 1.1 <= c.speedup <= 2.0

    def test_seesaw_never_loses_badly(self):
        c = run_fig10_cell("A10", "34b", "sharegpt", num_requests=200)
        assert c.speedup >= 0.95

    def test_seesaw_uses_different_stage_configs_on_arxiv(self):
        c = run_fig10_cell("A10", "34b", "arxiv", num_requests=80)
        assert "->" in c.seesaw.label
        cp_label, cd_label = c.seesaw.label.split("->")
        assert cp_label != cd_label


class TestFig11Claims:
    """Section 6.4: NVLink narrows but does not erase the gap."""

    def test_nvlink_reduces_comm_benefit(self, model_70b):
        wl = arxiv_workload(40, seed=11)
        pcie = make_cluster("A100-PCIE", 8)
        nvlink = make_cluster("A100-SXM", 8)

        def speedup(cluster):
            vllm = VllmLikeEngine(model_70b, cluster, parse_config("T4P2")).run(wl)
            seesaw = SeesawEngine(
                model_70b, cluster, parse_config("P8"), parse_config("T4P2")
            ).run(wl)
            return seesaw.throughput_rps / vllm.throughput_rps

        assert speedup(pcie) > speedup(nvlink)

    def test_vllm_pcie_fraction_of_nvlink(self, model_70b):
        """Paper: vLLM on PCIe reaches ~60% of its NVLink throughput."""
        wl = arxiv_workload(40, seed=11)
        vllm_pcie = VllmLikeEngine(
            model_70b, make_cluster("A100-PCIE", 8), parse_config("T4P2")
        ).run(wl)
        vllm_nv = VllmLikeEngine(
            model_70b, make_cluster("A100-SXM", 8), parse_config("T4P2")
        ).run(wl)
        frac = vllm_pcie.throughput_rps / vllm_nv.throughput_rps
        assert 0.3 < frac < 0.9

    def test_seesaw_closes_the_pcie_gap(self, model_70b):
        """Paper: Seesaw lifts PCIe to 82-89% of the NVLink baseline."""
        wl = arxiv_workload(40, seed=11)
        vllm_nv = VllmLikeEngine(
            model_70b, make_cluster("A100-SXM", 8), parse_config("T4P2")
        ).run(wl)
        seesaw_pcie = SeesawEngine(
            model_70b,
            make_cluster("A100-PCIE", 8),
            parse_config("P8"),
            parse_config("T4P2"),
        ).run(wl)
        vllm_pcie = VllmLikeEngine(
            model_70b, make_cluster("A100-PCIE", 8), parse_config("T4P2")
        ).run(wl)
        recovery_seesaw = seesaw_pcie.throughput_rps / vllm_nv.throughput_rps
        recovery_vllm = vllm_pcie.throughput_rps / vllm_nv.throughput_rps
        assert recovery_seesaw > recovery_vllm


class TestFig13Claims:
    """Section 6.5: sensitivity to the D:P ratio."""

    @pytest.fixture(scope="class")
    def fig13(self):
        return run_fig13(num_requests=32)

    def test_pp8_wins_prefill_only(self, fig13):
        assert fig13.best_static_at(0) == "pp8"

    def test_tp_heavy_wins_decode_heavy(self, fig13):
        assert fig13.best_static_at(len(fig13.ratios) - 1) == "tp4pp2"

    def test_crossover_region_exists(self, fig13):
        winners = [fig13.best_static_at(i) for i in range(len(fig13.ratios))]
        assert "tp2pp4" in winners  # the middle regime the paper highlights

    def test_pp8_collapses_with_output_length(self, fig13):
        pp8 = fig13.throughput["pp8"]
        assert pp8[-1] < 0.2 * pp8[0]

    def test_seesaw_tracks_the_upper_envelope(self, fig13):
        for i in range(len(fig13.ratios)):
            best_static = max(
                fig13.throughput[k][i] for k in ("tp4pp2", "tp2pp4", "pp8")
            )
            assert fig13.throughput["pp8->tp4pp2"][i] >= 0.93 * best_static

    def test_seesaw_strictly_best_in_mixed_regime(self, fig13):
        for i, ratio in enumerate(fig13.ratios):
            if 0.02 <= ratio <= 0.35:
                best_static = max(
                    fig13.throughput[k][i] for k in ("tp4pp2", "tp2pp4", "pp8")
                )
                assert fig13.throughput["pp8->tp4pp2"][i] > best_static


class TestFig14Claims:
    """Section 6.5: sensitivity to interconnect bandwidth."""

    @pytest.fixture(scope="class")
    def fig14(self):
        return run_fig14(scales=(0.1, 1.0, 10.0, 50.0), num_requests=32)

    def test_pp_heavy_wins_at_low_bandwidth(self, fig14):
        assert fig14.best_static_at(0) in ("d2t1p4", "d1t1p8")

    def test_tp_heavy_wins_at_high_bandwidth(self, fig14):
        assert fig14.best_static_at(3) in ("d1t8p1", "d2t4p1", "d1t4p2")

    def _best_static(self, fig14, i):
        return max(
            fig14.throughput[k][i]
            for k in fig14.throughput
            if "->" not in k and k != "seesaw(auto)"
        )

    def test_fixed_seesaw_pair_beats_statics_near_pcie(self, fig14):
        """Around real PCIe bandwidth (0.1x-1x) the paper's fixed pair sits
        on top of every static curve."""
        for i in (0, 1):
            assert fig14.throughput["d2p4->d2t4"][i] >= self._best_static(fig14, i)

    def test_fixed_pair_competitive_at_high_bandwidth(self, fig14):
        """At 10x+ bandwidth TP becomes cheap and the fixed pair's edge
        shrinks; it must stay within ~10% of the static envelope."""
        for i in (2, 3):
            assert fig14.throughput["d2p4->d2t4"][i] >= 0.85 * self._best_static(
                fig14, i
            )

    def test_adaptive_seesaw_tracks_envelope_everywhere(self, fig14):
        for i in range(4):
            assert fig14.throughput["seesaw(auto)"][i] >= 0.95 * self._best_static(
                fig14, i
            )
