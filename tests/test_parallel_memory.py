"""Per-GPU memory math and the max-batch-size formula (Appendix A.3)."""

import pytest

from repro.errors import CapacityError
from repro.hardware.cluster import make_cluster
from repro.parallel.config import ParallelConfig, parse_config
from repro.parallel.enumerate import enumerate_configs, feasible_configs
from repro.parallel.memory import (
    fits,
    kv_bytes_per_token_per_gpu,
    kv_capacity_tokens,
    max_batch_size,
    weight_bytes_per_gpu,
)


class TestWeightBytes:
    def test_tp_pp_shard_equally(self, model_70b):
        full = weight_bytes_per_gpu(model_70b, ParallelConfig())
        half_tp = weight_bytes_per_gpu(model_70b, ParallelConfig(tp=2))
        half_pp = weight_bytes_per_gpu(model_70b, ParallelConfig(pp=2))
        assert half_tp == pytest.approx(full / 2, rel=0.01)
        assert half_pp == pytest.approx(full / 2, rel=0.01)

    def test_dp_does_not_shard(self, model_70b):
        a = weight_bytes_per_gpu(model_70b, ParallelConfig(tp=2, pp=2))
        b = weight_bytes_per_gpu(model_70b, ParallelConfig(tp=2, pp=2, dp=2))
        assert a == b

    def test_70b_needs_four_40g_gpus(self, model_70b):
        """The paper: at least four 40 GiB GPUs to fit 140 GiB of weights."""
        cluster = make_cluster("A100-PCIE", 8)
        assert not fits(model_70b, cluster, ParallelConfig(tp=2))
        assert fits(model_70b, cluster, ParallelConfig(tp=4))


class TestKVCapacity:
    def test_oom_raises(self, model_70b):
        cluster = make_cluster("A10", 8)
        with pytest.raises(CapacityError):
            kv_capacity_tokens(model_70b, cluster, ParallelConfig(tp=2))

    def test_tp_pp_scale_capacity_superlinearly(self, model_70b, cluster_a10_8):
        """Appendix A.3: TP/PP shrink the weight replica so KV capacity
        grows faster than linearly in the degree."""
        cap4 = kv_capacity_tokens(model_70b, cluster_a10_8, parse_config("T4P2"))
        # T4P2 uses 8 GPUs; halving to 4 GPUs (T4) must leave less than
        # half the tokens because weights take a fixed share.
        cluster4 = make_cluster("A100-PCIE", 4)
        cap_t4 = kv_capacity_tokens(model_70b, cluster4, parse_config("T4"))
        assert cap_t4 < cap4  # despite bigger per-GPU memory on A100

    def test_kv_token_bytes_sharded(self, model_34b):
        full = kv_bytes_per_token_per_gpu(model_34b, ParallelConfig())
        sharded = kv_bytes_per_token_per_gpu(model_34b, parse_config("T4P2"))
        assert sharded == pytest.approx(full / 8)

    def test_max_batch_dp_linear(self, model_34b, cluster_a10_8):
        b1 = max_batch_size(model_34b, cluster_a10_8, parse_config("T4"), 2048)
        b2 = max_batch_size(model_34b, cluster_a10_8, parse_config("D2T4"), 2048)
        assert b2 == pytest.approx(2 * b1, abs=2)

    def test_max_batch_rejects_bad_len(self, model_34b, cluster_a10_8):
        with pytest.raises(CapacityError):
            max_batch_size(model_34b, cluster_a10_8, parse_config("T4P2"), 0)


class TestEnumeration:
    def test_all_gpus_used(self):
        for cfg in enumerate_configs(8):
            assert cfg.num_gpus == 8

    def test_partial_allowed(self):
        sizes = {c.num_gpus for c in enumerate_configs(8, require_all_gpus=False)}
        assert 4 in sizes and 8 in sizes

    def test_no_dp(self):
        assert all(c.dp == 1 for c in enumerate_configs(8, allow_dp=False))

    def test_feasible_excludes_oom(self, model_70b, cluster_a10_8):
        cfgs = feasible_configs(model_70b, cluster_a10_8)
        assert parse_config("T4P2") in cfgs
        assert parse_config("T2P2D2") not in cfgs  # replica too big
        assert all(c.num_gpus == 8 for c in cfgs)

    def test_feasible_nonempty_for_small_model(self, tiny_model, cluster_a10_4):
        assert feasible_configs(tiny_model, cluster_a10_4)
