"""Property-based tests: KV cache allocator and CPU buffer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import CapacityError
from repro.runtime.cpu_buffer import CPUKVBuffer
from repro.runtime.kvcache import KVCacheManager


class KVCacheMachine(RuleBasedStateMachine):
    """The allocator never oversubscribes and block accounting balances."""

    def __init__(self):
        super().__init__()
        self.kv = KVCacheManager(capacity_tokens=4096, block_size=16)
        self.sizes: dict[int, int] = {}
        self.next_id = 0

    @rule(tokens=st.integers(min_value=1, max_value=1024))
    def allocate(self, tokens):
        seq_id = self.next_id
        self.next_id += 1
        if self.kv.can_allocate(tokens):
            self.kv.allocate(seq_id, tokens)
            self.sizes[seq_id] = tokens
        else:
            try:
                self.kv.allocate(seq_id, tokens)
                raise AssertionError("allocate succeeded beyond capacity")
            except CapacityError:
                pass

    @precondition(lambda self: self.sizes)
    @rule(data=st.data(), extra=st.integers(min_value=1, max_value=64))
    def grow(self, data, extra):
        seq_id = data.draw(st.sampled_from(sorted(self.sizes)))
        target = self.sizes[seq_id] + extra
        try:
            self.kv.grow(seq_id, target)
            self.sizes[seq_id] = target
        except CapacityError:
            pass  # allowed under pressure; state unchanged

    @precondition(lambda self: self.sizes)
    @rule(data=st.data())
    def free(self, data):
        seq_id = data.draw(st.sampled_from(sorted(self.sizes)))
        self.kv.free(seq_id)
        del self.sizes[seq_id]

    @invariant()
    def blocks_match_sizes(self):
        expected = sum(self.kv.blocks_for(t) for t in self.sizes.values())
        assert self.kv.used_blocks == expected

    @invariant()
    def never_oversubscribed(self):
        assert 0 <= self.kv.used_blocks <= self.kv.total_blocks
        assert self.kv.free_tokens >= 0


TestKVCacheMachine = KVCacheMachine.TestCase


class CPUBufferMachine(RuleBasedStateMachine):
    """FIFO order and token accounting of the tiered buffer."""

    def __init__(self):
        super().__init__()
        self.buf = CPUKVBuffer(capacity_tokens=8192)
        self.shadow: list[tuple[int, int]] = []
        self.next_id = 0

    @rule(tokens=st.integers(min_value=0, max_value=2048))
    def push(self, tokens):
        seq_id = self.next_id
        self.next_id += 1
        if self.buf.fits(tokens):
            self.buf.push(seq_id, tokens)
            self.shadow.append((seq_id, tokens))
        else:
            try:
                self.buf.push(seq_id, tokens)
                raise AssertionError("push succeeded beyond capacity")
            except CapacityError:
                pass

    @precondition(lambda self: self.shadow)
    @rule()
    def pop(self):
        assert self.buf.pop() == self.shadow.pop(0)

    @invariant()
    def accounting(self):
        assert self.buf.used_tokens == sum(t for _, t in self.shadow)
        assert self.buf.num_sequences == len(self.shadow)
        assert 0 <= self.buf.used_tokens <= self.buf.capacity_tokens


TestCPUBufferMachine = CPUBufferMachine.TestCase


class TestChannelProperties:
    @given(
        jobs=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_channel_monotone_and_conserves_busy_time(self, jobs):
        from repro.runtime.channel import TransferChannel

        ch = TransferChannel("x")
        last_end = 0.0
        submitted = sorted(jobs, key=lambda j: j[0])
        for now, dur in submitted:
            end = ch.submit(now, dur)
            assert end >= now + dur - 1e-9
            assert end >= last_end  # FIFO: completions are ordered
            last_end = end
        assert ch.busy_time <= last_end + 1e-9
