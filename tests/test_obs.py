"""The telemetry subsystem (``repro.obs``).

Contracts pinned by this PR:

1. **Zero overhead when off** — ``telemetry=None`` (the default) leaves
   every engine on its exact pre-telemetry path: results match the seed
   goldens bit-for-bit (pinned elsewhere) and, stronger, attaching a hub
   must not perturb the simulation at all — telemetry-on and
   telemetry-off runs produce identical results on every engine and on
   the coupled/autoscaled/fluid paths.
2. **One schema for every tier** — coupled, decoupled and fluid runs
   emit the same ``cluster.* `` / windowed series names.
3. **Grid sampling** — probes and ``boundaries()`` emit on the fixed
   interval grid starting at 0, no duplicates, irregular call times.
4. **Artifact roundtrip** — ``write_jsonl`` then ``load_jsonl``
   reconstructs series, events, meta and counters.
5. **Reasons** — every autoscaler scale action carries a human-readable
   ``reason``, surfaced in ``fleet_table`` and the dashboard.
6. **Deprecated alias** — ``ClusterSimulator.dispatch_log`` still yields
   ``(request_id, replica, queues)`` tuples, now fed by the event log.
"""

import json
import math

import pytest

from repro.analysis.report import fleet_table, telemetry_table
from repro.cluster import ClusterSimulator
from repro.engines.base import EngineOptions
from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_MAX_EVENTS,
    Counter,
    Histogram,
    Telemetry,
    load_jsonl,
    percentiles,
    render_dashboard,
    sparkline,
    worst_windows,
    write_csv,
    write_jsonl,
)
from repro.parallel.config import parse_config
from repro.workloads.arrivals import diurnal_arrivals, poisson_arrivals
from repro.workloads.synthetic import constant_workload


def assert_results_identical(a, b):
    assert a.total_time == b.total_time
    assert a.phase_time == b.phase_time
    assert a.iterations == b.iterations
    assert a.transitions == b.transitions
    if a.latency is not None:
        assert b.latency is not None
        for ra, rb in zip(a.latency.records, b.latency.records):
            assert ra == rb


# --------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------- #


class TestInstruments:
    def test_counter_and_gauge(self):
        tel = Telemetry()
        tel.counter("reqs").inc()
        tel.counter("reqs").inc(2)
        tel.gauge("depth").set(7)
        assert tel.counter("reqs").value == 3
        assert tel.gauge("depth").value == 7.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter("x").inc(-1)

    def test_histogram_percentiles_match_linear_interpolation(self):
        import numpy as np

        h = Histogram("ttft")
        values = [0.3, 1.1, 0.2, 5.0, 0.9, 2.4, 0.05]
        for i, v in enumerate(values):
            h.observe(float(i), v)
        got = h.percentiles((50, 90, 99))
        want = tuple(float(np.percentile(values, q)) for q in (50, 90, 99))
        assert got == pytest.approx(want)

    def test_histogram_windows_bucket_by_time(self):
        h = Histogram("ttft")
        h.observe(0.5, 1.0)
        h.observe(0.9, 3.0)
        h.observe(2.5, 10.0)
        wins = h.windows(1.0)
        assert [w for w, _ in wins] == [1.0, 3.0]
        assert wins[0][1][0] == 2.0  # p50 of [1, 3]
        assert wins[1][1] == (10.0, 10.0, 10.0)

    def test_percentiles_empty_is_nan(self):
        assert all(math.isnan(v) for v in percentiles([]))

    def test_event_log_caps_and_counts_drops(self):
        tel = Telemetry(max_events=3)
        for i in range(5):
            tel.event(float(i), "dispatch", request_id=i)
        assert len(tel.events) == 3
        assert tel.dropped_events == 2
        assert Telemetry().max_events == DEFAULT_MAX_EVENTS


class TestBoundaries:
    def test_grid_starts_at_zero_without_duplicates(self):
        tel = Telemetry(interval_s=1.0)
        assert tel.boundaries("c", 2.5) == [0.0, 1.0, 2.0]
        assert tel.boundaries("c", 2.9) == []
        assert tel.boundaries("c", 4.0) == [3.0, 4.0]

    def test_custom_interval(self):
        tel = Telemetry(interval_s=1.0)
        assert tel.boundaries("f", 1.0, interval=0.5) == [0.0, 0.5, 1.0]

    def test_keys_are_independent(self):
        tel = Telemetry()
        tel.boundaries("a", 5.0)
        assert tel.boundaries("b", 0.0) == [0.0]

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            Telemetry(interval_s=0.0)


# --------------------------------------------------------------------- #
# Zero-overhead contract: telemetry must not perturb the simulation
# --------------------------------------------------------------------- #


class TestZeroOverheadContract:
    def run_pair(self, make_engine, workload):
        off = make_engine(None).run(workload)
        tel = Telemetry()
        on = make_engine(tel).run(workload)
        return off, on, tel

    def test_decoupled_identical(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(16, 256, 16), 4.0, seed=1)
        off, on, tel = self.run_pair(
            lambda t: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(telemetry=t),
            ),
            wl,
        )
        assert_results_identical(off, on)
        assert tel.series["replica0.running"]
        assert tel.series["replica1.kv_util"]

    def test_coupled_identical(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(24, 256, 16), 6.0, seed=2)
        off, on, tel = self.run_pair(
            lambda t: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(coupled=True, router="jsq", telemetry=t),
            ),
            wl,
        )
        assert_results_identical(off, on)
        assert tel.series["cluster.active_dp"]
        assert tel.events_of("dispatch")

    def test_decode_prio_identical(self, tiny_model, cluster_a10_4):
        wl = constant_workload(12, 256, 16)
        off, on, _ = self.run_pair(
            lambda t: DecodePrioritizedEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("T4"),
                EngineOptions(telemetry=t),
            ),
            wl,
        )
        assert_results_identical(off, on)

    def test_autoscaled_identical(self, tiny_model, cluster_a10_4):
        wl = diurnal_arrivals(constant_workload(128, 2048, 16), 16.0, 20.0, seed=3)
        off, on, tel = self.run_pair(
            lambda t: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("T2"),
                EngineOptions(
                    coupled=True,
                    router="jsq",
                    autoscaler="threshold",
                    min_dp=1,
                    max_dp=2,
                    telemetry=t,
                ),
            ),
            wl,
        )
        assert_results_identical(off, on)
        assert tel.series["cluster.provisioning"]

    def test_fluid_identical_and_same_schema(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(32, 256, 16), 8.0, seed=4)
        off, on, tel = self.run_pair(
            lambda t: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(
                    coupled=True, router="jsq", fidelity="fluid", telemetry=t
                ),
            ),
            wl,
        )
        assert off.total_time == on.total_time
        for name in (
            "cluster.active_dp",
            "cluster.queued_prefill_tokens",
            "cluster.arrival_rate",
            "slo.burn_rate",
        ):
            assert tel.series[name], name

    def test_rejects_non_hub(self):
        with pytest.raises(ConfigurationError):
            EngineOptions(telemetry=object())


# --------------------------------------------------------------------- #
# Probes and grid alignment
# --------------------------------------------------------------------- #


class TestSampledSeries:
    def test_samples_land_on_the_interval_grid(self, tiny_model, cluster_a10_4):
        tel = Telemetry(interval_s=0.5)
        wl = poisson_arrivals(constant_workload(20, 512, 16), 5.0, seed=5)
        VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq", telemetry=tel),
        ).run(wl)
        for name in ("replica0.queued_prefill_tokens", "cluster.active_dp"):
            times = [t for t, _ in tel.series[name]]
            assert times == sorted(times)
            for t in times:
                assert abs(t / 0.5 - round(t / 0.5)) < 1e-6, (name, t)

    def test_fold_emits_windowed_slo_series(self, tiny_model, cluster_a10_4):
        tel = Telemetry()
        wl = poisson_arrivals(constant_workload(16, 512, 16), 8.0, seed=6)
        VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(
                coupled=True,
                router="jsq",
                ttft_slo=1e-6,  # unattainable: every window burns
                telemetry=tel,
            ),
        ).run(wl)
        burn = [v for _, v in tel.series["slo.burn_rate"]]
        att = [v for _, v in tel.series["slo.attainment"]]
        assert any(v > 0 for v in burn)
        assert all(0.0 <= a <= 1.0 for a in att)
        # burn = (1 - attainment) / budget, window by window
        for a, b in zip(att, burn):
            assert b == pytest.approx((1.0 - a) / tel.slo_budget)

    def test_fold_is_idempotent(self, tiny_model, cluster_a10_4):
        tel = Telemetry()
        wl = diurnal_arrivals(constant_workload(128, 2048, 16), 16.0, 20.0, seed=3)
        result = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(
                coupled=True,
                router="jsq",
                autoscaler="threshold",
                max_dp=2,
                telemetry=tel,
            ),
        ).run(wl)
        before_series = {k: list(v) for k, v in tel.series.items()}
        before_scale = len(tel.events_of("scale"))
        tel.fold_result(result)
        assert tel.series == before_series
        assert len(tel.events_of("scale")) == before_scale


# --------------------------------------------------------------------- #
# Artifact export / import
# --------------------------------------------------------------------- #


class TestArtifacts:
    def _hub(self):
        tel = Telemetry(interval_s=2.0)
        tel.point("cluster.active_dp", 0.0, 1)
        tel.point("cluster.active_dp", 2.0, 2)
        tel.event(1.5, "scale", action="scale-up", replica=1, reason="why not")
        tel.counter("reqs").inc(5)
        tel.gauge("depth").set(3)
        tel.meta["engine"] = "vllm"
        return tel

    def test_jsonl_roundtrip(self, tmp_path):
        tel = self._hub()
        path = tmp_path / "tel.jsonl"
        write_jsonl(tel, path)
        back = load_jsonl(path)
        assert back.series == tel.series
        assert back.events == tel.events
        assert back.interval_s == tel.interval_s
        assert back.meta["engine"] == "vllm"
        assert back.counter("reqs").value == 5
        assert back.gauge("depth").value == 3.0

    def test_jsonl_header_schema(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        write_jsonl(self._hub(), path)
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == "repro-obs-v1"
        rows = [json.loads(line) for line in lines[1:]]
        assert any("series" in r for r in rows)
        assert any(r.get("event") == "scale" for r in rows)

    def test_load_rejects_other_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "not-obs"}\n')
        with pytest.raises(ConfigurationError):
            load_jsonl(path)

    def test_csv_rows(self, tmp_path):
        path = tmp_path / "tel.csv"
        write_csv(self._hub(), path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "t,series,value"
        assert "0.0,cluster.active_dp,1.0" in lines[1]


# --------------------------------------------------------------------- #
# Dashboard
# --------------------------------------------------------------------- #


class TestDashboard:
    def test_sparkline_resamples_and_holds(self):
        pts = [(float(i), float(i)) for i in range(10)]
        line = sparkline(pts, 20)
        assert len(line) == 20
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_constant_and_empty(self):
        assert sparkline([], 5) == "     "
        assert sparkline([(0.0, 2.0), (1.0, 2.0)], 4) == "@@@@"
        assert sparkline([(0.0, 0.0)], 4) == "    "

    def test_render_includes_series_events_and_reasons(self, tiny_model, cluster_a10_4):
        tel = Telemetry()
        wl = diurnal_arrivals(constant_workload(128, 2048, 16), 16.0, 20.0, seed=3)
        VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(
                coupled=True,
                router="jsq",
                autoscaler="threshold",
                max_dp=2,
                ttft_slo=0.5,
                telemetry=tel,
            ),
        ).run(wl)
        text = render_dashboard(tel)
        assert "cluster.active_dp" in text
        assert "replica0.queued_prefill_tokens" in text
        assert "scale events" in text
        assert "mean queued prefill" in text  # the recorded reason
        metric, worst = worst_windows(tel)
        assert worst and metric in ("slo.burn_rate", "ttft.p99")

    def test_worst_windows_label_matches_values(self):
        tel = Telemetry()
        tel.set_series("slo.burn_rate", [(1.0, 0.0), (2.0, 0.0)])
        tel.set_series("ttft.p99", [(1.0, 3.0), (2.0, 1.0)])
        metric, worst = worst_windows(tel, top=1)
        assert metric == "ttft.p99"
        assert worst == [(1.0, 3.0)]


# --------------------------------------------------------------------- #
# Fleet-event reasons and the dispatch_log alias
# --------------------------------------------------------------------- #


class TestReasonsAndAliases:
    def _autoscaled_result(self, tiny_model, cluster_a10_4, telemetry=None):
        wl = diurnal_arrivals(constant_workload(128, 2048, 16), 16.0, 20.0, seed=3)
        return VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(
                coupled=True,
                router="jsq",
                autoscaler="threshold",
                max_dp=2,
                telemetry=telemetry,
            ),
        ).run(wl)

    def test_scale_actions_carry_reasons(self, tiny_model, cluster_a10_4):
        result = self._autoscaled_result(tiny_model, cluster_a10_4)
        fleet = result.router.fleet
        scaled = [e for e in fleet.events if e.kind in ("scale-up", "scale-down")]
        assert scaled
        assert all(e.reason for e in scaled)

    def test_fleet_table_prints_reasons(self, tiny_model, cluster_a10_4):
        result = self._autoscaled_result(tiny_model, cluster_a10_4)
        text = fleet_table({"cell": result})
        assert "scale actions" in text
        assert "mean queued prefill" in text

    def test_telemetry_table_summarizes(self, tiny_model, cluster_a10_4):
        tel = Telemetry()
        self._autoscaled_result(tiny_model, cluster_a10_4, telemetry=tel)
        text = telemetry_table(tel)
        assert "cluster.active_dp" in text
        assert "events:" in text

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")  # uses the alias on purpose
    def test_dispatch_log_alias_shape(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(12, 256, 16), 4.0, seed=1)
        engine = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq", debug_dispatch_log=True),
        )
        sim = ClusterSimulator(engine, list(wl.requests))
        sim.run()
        assert len(sim.dispatch_log) == 12
        for req_id, rid, queues in sim.dispatch_log:
            assert isinstance(req_id, int) and isinstance(rid, int)
            assert isinstance(queues, tuple) and len(queues) == 2
        # The alias is fed by the event log; without the debug flag (and
        # with no hub attached) it stays empty.
        engine2 = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq"),
        )
        sim2 = ClusterSimulator(engine2, list(wl.requests))
        sim2.run()
        assert sim2.dispatch_log == []


# --------------------------------------------------------------------- #
# Trace completeness (satellite: coupled-path trace gaps)
# --------------------------------------------------------------------- #


class TestTraceCompleteness:
    def test_decode_prio_traces_prefill_spans(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(12, 512, 16), 4.0, seed=2)
        engine = DecodePrioritizedEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T4"),
            EngineOptions(trace=True),
        )
        result = engine.run(wl)
        kinds = {e.kind for e in engine.last_trace.events}
        assert "prefill" in kinds and "decode" in kinds
        # Spans tile the run: no hole longer than numeric noise between
        # consecutive events on the replica timeline.
        events = sorted(engine.last_trace.events, key=lambda e: e.start)
        cursor = 0.0
        for e in events:
            assert e.start <= cursor + 1e-6, f"hole before {e}"
            cursor = max(cursor, e.end)
        assert cursor == pytest.approx(result.total_time, rel=1e-6)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestObsCli:
    RUN_FLAGS = [
        "--model",
        "34b",
        "--dataset",
        "const:512x16",
        "--num-requests",
        "16",
        "--config",
        "T4",
        "--num-gpus",
        "8",
        "--request-rate",
        "4.0",
        "--coupled",
        "--router",
        "jsq",
    ]

    def test_run_telemetry_writes_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "tel.jsonl"
        rc = main(["run", *self.RUN_FLAGS, "--telemetry-out", str(out)])
        assert rc == 0
        assert "telemetry written" in capsys.readouterr().out
        tel = load_jsonl(out)
        assert tel.series["cluster.active_dp"]

    def test_obs_renders_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "tel.jsonl"
        assert main(["run", *self.RUN_FLAGS, "--telemetry-out", str(out)]) == 0
        capsys.readouterr()
        rc = main(["obs", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "timelines" in text
        assert "cluster.active_dp" in text

    def test_obs_live(self, capsys):
        from repro.cli import main

        rc = main(["obs", "--live", *self.RUN_FLAGS])
        assert rc == 0
        assert "timelines" in capsys.readouterr().out

    def test_obs_without_input_errors(self, capsys):
        from repro.cli import main

        assert main(["obs"]) == 1
        assert "needs a JSONL artifact" in capsys.readouterr().err
