"""Per-request latency records and aggregate statistics."""

import pytest

from repro.errors import SimulationError
from repro.runtime.latency import LatencyStats, RequestLatency
from repro.runtime.request import Request, Sequence


def rec(
    rid=0,
    arrival=0.0,
    sched=1.0,
    first=2.0,
    finish=6.0,
    out=5,
    preempts=0,
) -> RequestLatency:
    return RequestLatency(
        request_id=rid,
        arrival_time=arrival,
        first_schedule_time=sched,
        first_token_time=first,
        finish_time=finish,
        output_len=out,
        num_preemptions=preempts,
    )


class TestRequestLatency:
    def test_derived_metrics_hand_computed(self):
        r = rec(arrival=1.0, sched=1.5, first=3.0, finish=7.0, out=5)
        assert r.queue_delay == pytest.approx(0.5)
        assert r.ttft == pytest.approx(2.0)
        assert r.e2e == pytest.approx(6.0)
        # 4 decode tokens over 4 seconds.
        assert r.tpot == pytest.approx(1.0)

    def test_single_token_request_has_undefined_tpot(self):
        """Regression: TPOT used to be 0.0 for output_len <= 1, so
        single-token requests trivially satisfied any TPOT SLO."""
        r = rec(first=2.0, finish=2.0, out=1)
        assert r.tpot is None
        assert not r.has_decode_phase
        assert r.ttft == pytest.approx(2.0)

    def test_rejects_unset_timestamps(self):
        with pytest.raises(SimulationError):
            rec(finish=float("nan"))

    def test_rejects_non_monotone_lifecycle(self):
        with pytest.raises(SimulationError):
            rec(arrival=5.0, sched=1.0)

    def test_from_sequence(self):
        seq = Sequence(Request(request_id=7, prompt_len=10, output_len=3, arrival_time=2.0))
        seq.mark_scheduled(3.0)
        seq.mark_first_token(4.0)
        seq.mark_finished(6.0)
        r = RequestLatency.from_sequence(seq)
        assert r.request_id == 7
        assert r.queue_delay == pytest.approx(1.0)
        assert r.ttft == pytest.approx(2.0)
        assert r.tpot == pytest.approx(1.0)

    def test_sticky_marks_survive_preemption(self):
        seq = Sequence(Request(request_id=0, prompt_len=10, output_len=4, arrival_time=0.0))
        seq.mark_scheduled(1.0)
        seq.mark_first_token(2.0)
        seq.preempt_recompute()
        seq.num_preemptions += 1
        seq.mark_scheduled(9.0)  # re-admission must not move the stamp
        seq.mark_first_token(10.0)
        seq.mark_finished(12.0)
        r = RequestLatency.from_sequence(seq)
        assert r.first_schedule_time == pytest.approx(1.0)
        assert r.first_token_time == pytest.approx(2.0)
        assert r.num_preemptions == 1

    def test_finish_backfills_first_token(self):
        seq = Sequence(Request(request_id=0, prompt_len=10, output_len=1))
        seq.mark_scheduled(0.5)
        seq.mark_finished(1.5)
        assert seq.first_token_time == pytest.approx(1.5)


class TestLatencyStats:
    def stats(self) -> LatencyStats:
        # TTFTs 1, 2, 3; TPOTs 0.25, 0.5, 0.75 (4 decode tokens each).
        return LatencyStats(
            records=tuple(
                rec(rid=i, sched=float(i + 1), first=float(i + 1), finish=float(i + 1) + (i + 1), out=5)
                for i in range(3)
            )
        )

    def test_percentiles_hand_computed(self):
        s = self.stats()
        assert s.num_requests == 3
        assert s.ttft.p50 == pytest.approx(2.0)
        assert s.ttft.mean == pytest.approx(2.0)
        assert s.ttft.p99 == pytest.approx(2.98)
        assert s.tpot.p50 == pytest.approx(0.5)
        assert s.e2e.p50 == pytest.approx(4.0)
        assert s.queue_delay.mean == pytest.approx(2.0)

    def test_slo_attainment(self):
        s = self.stats()
        assert s.slo_attainment() == 1.0
        assert s.slo_attainment(ttft_slo=2.5) == pytest.approx(2 / 3)
        assert s.slo_attainment(ttft_slo=2.5, tpot_slo=0.3) == pytest.approx(1 / 3)
        assert s.slo_attainment(e2e_slo=0.1) == 0.0
        with pytest.raises(SimulationError):
            s.slo_attainment(ttft_slo=-1.0)

    def test_single_token_requests_do_not_inflate_tpot_attainment(self):
        """Regression: a no-decode-phase record must not count as meeting
        a TPOT SLO it was never subject to."""
        s = LatencyStats(
            records=(
                rec(rid=0, first=2.0, finish=2.0, out=1),  # no decode phase
                rec(rid=1, first=2.0, finish=6.0, out=5),  # tpot = 1.0
            )
        )
        # Only a TPOT bound: the single-token record is excluded from the
        # population entirely (old behaviour scored this 1/2).
        assert s.slo_attainment(tpot_slo=0.5) == 0.0
        assert s.slo_attainment(tpot_slo=2.0) == 1.0
        # Combined bounds: the single-token record is judged on TTFT only.
        assert s.slo_attainment(ttft_slo=3.0, tpot_slo=0.5) == pytest.approx(0.5)
        assert s.slo_attainment(ttft_slo=1.0, tpot_slo=2.0) == 0.0

    def test_all_single_token_population_is_vacuous(self):
        s = LatencyStats(records=(rec(rid=0, first=2.0, finish=2.0, out=1),))
        assert s.slo_attainment(tpot_slo=0.001) == 1.0  # vacuously met
        assert s.tpot.count == 0
        assert s.tpot.p99 == 0.0

    def test_tpot_summary_skips_undefined_records(self):
        s = LatencyStats(
            records=(
                rec(rid=0, first=2.0, finish=2.0, out=1),
                rec(rid=1, first=2.0, finish=6.0, out=5),
            )
        )
        assert s.tpot.count == 1
        assert s.tpot.p50 == pytest.approx(1.0)  # not dragged toward 0

    def test_merge_is_exact_union(self):
        a = LatencyStats(records=(rec(rid=0, first=1.0, finish=5.0),))
        b = LatencyStats(records=(rec(rid=1, first=9.0, finish=13.0),))
        m = LatencyStats.merged([a, b])
        assert m.num_requests == 2
        # Percentiles over the union, not an average of summaries.
        assert m.ttft.p50 == pytest.approx(5.0)
        with pytest.raises(SimulationError):
            LatencyStats.merged([])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            LatencyStats(records=())

    def test_describe_mentions_metrics(self):
        out = self.stats().describe()
        assert "ttft" in out and "tpot" in out and "e2e" in out
