"""Experiment harnesses run end-to-end and render (small scales)."""

import pytest

from repro.experiments import (
    render_fig1,
    render_fig2,
    render_fig4,
    render_fig9,
    render_fig12,
    render_fig13,
    render_fig15,
    render_table1,
    run_fig1,
    run_fig2,
    run_fig4,
    run_fig9,
    run_fig12,
    run_fig13,
    run_fig15,
    run_table1,
)
from repro.experiments.fig10_e2e import run_fig10_cell
from repro.experiments.fig13_dp_ratio import Fig13Result
from repro.experiments.fig14_bandwidth import run_fig14, render_fig14


class TestTable1:
    def test_rows(self):
        rows = run_table1()
        names = {r.gpu for r in rows}
        assert {"A10", "L4"} <= names

    def test_render(self):
        out = render_table1()
        assert "600 GB/s" in out and "NVLink" in out


class TestFig1:
    def test_runs_and_normalizes(self):
        r = run_fig1()
        assert len(r.rows) == 4
        norm = r.normalized("prefill")
        assert max(norm.values()) == pytest.approx(1.0)

    def test_render(self):
        assert "Figure 1" in render_fig1(run_fig1())


class TestFig2:
    def test_policies_present(self):
        r = run_fig2(num_requests=120)
        assert set(r.policies) == {
            "prefill-prioritizing",
            "decode-prioritizing",
            "tiered+transition-minimizing",
        }
        assert "Figure 2" in render_fig2(r)


class TestFig4:
    def test_shapes(self):
        r = run_fig4(num_requests=120)
        assert r.feasible_splits == ["4+4"]
        assert r.mismatch_ratio > 1.0
        assert "Figure 4" in render_fig4(r)


class TestFig9:
    def test_stats_and_render(self):
        r = run_fig9(num_sharegpt=200, num_arxiv=100)
        assert set(r.stats) == {"arxiv-summarization", "sharegpt"}
        assert "Figure 9" in render_fig9(r)


class TestFig10:
    def test_single_cell(self):
        c = run_fig10_cell("A10", "15b", "arxiv", num_requests=24, simulate_top=0)
        assert c.vllm.num_requests == 24
        assert c.seesaw.num_requests == 24
        assert c.speedup > 0


class TestFig12:
    def test_runs(self):
        r = run_fig12(num_requests=40)
        assert set(r.runs) == {"tp4", "pp4", "p4->t4", "tp2pp2+chunked"}
        assert "Figure 12" in render_fig12(r)


class TestFig13:
    def test_runs(self):
        r = run_fig13(ratios=(0.01, 0.1), num_requests=16)
        assert isinstance(r, Fig13Result)
        norm = r.normalized()
        assert max(max(v) for v in norm.values()) == pytest.approx(1.0)
        assert "Figure 13" in render_fig13(r)


class TestFig14:
    def test_runs(self):
        r = run_fig14(scales=(0.5, 5.0), num_requests=16)
        assert len(r.throughput["d2p4->d2t4"]) == 2
        assert "Figure 14" in render_fig14(r)


class TestFig15:
    def test_oom_and_batch_shape(self):
        r = run_fig15()
        assert not r.row("TP1DP8").fits
        assert r.row("TP8DP1").max_batch > r.row("TP4DP2").max_batch
        assert "Figure 15" in render_fig15(r)


class TestSLOSweep:
    def test_slo_tuning_attains_at_least_the_throughput_pick(self):
        """Acceptance: at >= 1 sweep point the SLO-tuned config's measured
        attainment matches or beats the throughput-tuned pick's — and with
        the default (calibrated) SLOs it strictly beats it somewhere."""
        from repro.experiments import render_slo_sweep, run_slo_sweep

        r = run_slo_sweep(num_requests=24, load_fractions=(0.3, 0.6))
        assert len(r.points) == 2
        assert any(
            p.slo_attainment >= p.throughput_attainment for p in r.points
        )
        assert any(
            p.slo_attainment > p.throughput_attainment for p in r.points
        )
        for p in r.points:
            assert 0.0 <= p.slo_attainment <= 1.0
            assert p.slo_goodput_rps >= p.throughput_goodput_rps
        out = render_slo_sweep(r)
        assert "SLO sweep" in out
        assert "slo-att" in out and "goodput" in out
        assert len(r.attainments("slo")) == 2


class TestLatencySweep:
    def test_runs_and_trends(self):
        from repro.experiments import render_latency_sweep, run_latency_sweep

        r = run_latency_sweep(num_requests=16, rates=(0.05, 0.2))
        assert len(r.points) == 2
        for p in r.points:
            assert p.static.latency is not None
            assert p.seesaw.latency is not None
            assert p.static.latency.ttft.p99 > 0
        out = render_latency_sweep(r)
        assert "Load-latency sweep" in out and "ttft-p99" in out
        assert len(r.ttft_p99("seesaw")) == 2
