"""Parallel cell executor, cell specs, and the on-disk result cache."""

from __future__ import annotations

import pickle

import pytest

from repro.check.goldens import run_goldens
from repro.check.sanitizer import Sanitizer
from repro.cli import main
from repro.core.options import SeesawOptions
from repro.engines.base import EngineOptions
from repro.errors import CapacityError, ConfigurationError
from repro.exec import (
    CellExecutionError,
    CellExecutor,
    CellSpec,
    ResultCache,
    code_salt,
)
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.synthetic import constant_workload


def _spec(tiny_model, cluster_a10_4, **overrides) -> CellSpec:
    base = dict(
        engine="vllm",
        model=tiny_model,
        cluster=cluster_a10_4,
        config="T2P2",
        options=EngineOptions(),
        workload=constant_workload(12, 256, 16),
        seed=0,
    )
    base.update(overrides)
    return CellSpec(**base)


class _FakeHub:
    probe = None


class _FakeTracer:
    def finalize(self):  # pragma: no cover - never called
        return None


class TestCellSpec:
    def test_rejects_process_local_hooks(self, tiny_model, cluster_a10_4):
        hooked = [
            EngineOptions(telemetry=_FakeHub()),
            EngineOptions(tracing=_FakeTracer()),
            EngineOptions(sanitize=Sanitizer(), coupled=True),
            EngineOptions(trace=True),
        ]
        for options in hooked:
            with pytest.raises(ConfigurationError, match="pure values"):
                _spec(tiny_model, cluster_a10_4, options=options)

    def test_rejects_unknown_engine(self, tiny_model, cluster_a10_4):
        with pytest.raises(ConfigurationError, match="unknown engine kind"):
            _spec(tiny_model, cluster_a10_4, engine="bogus")

    def test_config_shape_validation(self, tiny_model, cluster_a10_4):
        with pytest.raises(ConfigurationError, match="transition config"):
            _spec(
                tiny_model, cluster_a10_4,
                engine="seesaw", config="T2P2", options=SeesawOptions(),
            )
        with pytest.raises(ConfigurationError, match="SeesawOptions"):
            _spec(tiny_model, cluster_a10_4, engine="seesaw", config="P2->T2")
        with pytest.raises(ConfigurationError, match="disagg"):
            _spec(tiny_model, cluster_a10_4, engine="disagg", config="T2P2")
        with pytest.raises(ConfigurationError, match="static config label"):
            _spec(tiny_model, cluster_a10_4, config="P2->T2")

    def test_cell_key_stable_across_constructions(
        self, tiny_model, cluster_a10_4
    ):
        a = _spec(tiny_model, cluster_a10_4)
        b = _spec(tiny_model, cluster_a10_4)
        assert a.cell_key == b.cell_key
        assert a.canonical_json() == b.canonical_json()

    def test_cell_key_distinguishes_every_axis(self, tiny_model, cluster_a10_4):
        base = _spec(tiny_model, cluster_a10_4)
        variants = [
            _spec(tiny_model, cluster_a10_4, seed=1),
            _spec(tiny_model, cluster_a10_4, config="T4"),
            _spec(
                tiny_model, cluster_a10_4,
                options=EngineOptions(chunked_prefill=True),
            ),
            _spec(
                tiny_model, cluster_a10_4,
                workload=constant_workload(12, 256, 17),
            ),
            _spec(
                tiny_model, cluster_a10_4,
                workload=poisson_arrivals(
                    constant_workload(12, 256, 16), 4.0, seed=3
                ),
            ),
        ]
        keys = {base.cell_key, *(v.cell_key for v in variants)}
        assert len(keys) == 1 + len(variants)

    def test_spec_pickles(self, tiny_model, cluster_a10_4):
        spec = _spec(tiny_model, cluster_a10_4)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cell_key == spec.cell_key

    def test_po2_router_seed_derived_deterministically(
        self, tiny_model, cluster_a10_4
    ):
        spec = _spec(
            tiny_model, cluster_a10_4,
            config="D2T2",
            options=EngineOptions(router="po2"),
            workload=poisson_arrivals(
                constant_workload(12, 256, 16), 4.0, seed=3
            ),
        )
        first = spec._resolved_options()
        second = spec._resolved_options()
        assert first.router_seed is not None
        assert first.router_seed == second.router_seed
        # A different cell identity decorrelates the derived seed.
        other = _spec(
            tiny_model, cluster_a10_4,
            config="D2T2",
            options=EngineOptions(router="po2"),
            workload=poisson_arrivals(
                constant_workload(12, 256, 16), 4.0, seed=3
            ),
            seed=1,
        )
        assert other._resolved_options().router_seed != first.router_seed


def _mixed_cells(tiny_model, cluster_a10_4) -> list[CellSpec]:
    """Small cells covering all four engines plus coupled/fluid and a
    derived-seed po2 router — the shapes the determinism contract must
    hold across worker boundaries."""
    const = constant_workload(12, 256, 16)
    online = poisson_arrivals(constant_workload(16, 256, 16), 4.0, seed=3)
    return [
        _spec(tiny_model, cluster_a10_4),
        _spec(tiny_model, cluster_a10_4, engine="decode-prio", config="T4"),
        _spec(
            tiny_model, cluster_a10_4,
            engine="seesaw", config="P2->T2", options=SeesawOptions(),
        ),
        _spec(
            tiny_model, cluster_a10_4,
            engine="disagg", config="T2|T2", workload=const,
        ),
        _spec(
            tiny_model, cluster_a10_4,
            config="D2T2",
            options=EngineOptions(
                router="jsq", coupled=True, fidelity="fluid"
            ),
            workload=online,
        ),
        _spec(
            tiny_model, cluster_a10_4,
            config="D2T2",
            options=EngineOptions(router="po2", coupled=True),
            workload=online,
        ),
    ]


class TestCellExecutor:
    def test_serial_matches_direct_execution(self, tiny_model, cluster_a10_4):
        specs = _mixed_cells(tiny_model, cluster_a10_4)
        serial = CellExecutor(jobs=1).run(specs)
        direct = [spec.execute() for spec in specs]
        assert serial == direct

    def test_parallel_bit_identical_to_serial(self, tiny_model, cluster_a10_4):
        specs = _mixed_cells(tiny_model, cluster_a10_4)
        serial = CellExecutor(jobs=1).run(specs)
        parallel = CellExecutor(jobs=2).run(specs)
        assert parallel == serial

    def test_outcomes_carry_rss_and_order(self, tiny_model, cluster_a10_4):
        specs = _mixed_cells(tiny_model, cluster_a10_4)[:2]
        outcomes = CellExecutor(jobs=2).run_outcomes(specs)
        assert [o.spec for o in outcomes] == specs
        assert all(not o.cached for o in outcomes)
        assert all(o.peak_rss_mb > 0 for o in outcomes)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError, match="--jobs"):
            CellExecutor(jobs=0)

    def test_worker_failure_raises_with_spec(self, tiny_model, cluster_a10_4):
        doomed = _spec(
            tiny_model, cluster_a10_4,
            workload=constant_workload(1, 5_000_000, 1),
        )
        with pytest.raises(CellExecutionError) as excinfo:
            CellExecutor(jobs=2).run([doomed])
        err = excinfo.value
        assert err.spec == doomed
        assert err.exc_type == "CapacityError"
        assert "5000000" in str(err) or "5,000,000" in str(err)
        assert doomed.describe() in str(err)
        assert "Traceback" in err.child_traceback

    def test_inline_failure_raises_raw_exception(
        self, tiny_model, cluster_a10_4
    ):
        # --jobs 1 keeps the exact legacy code path, including the
        # original exception type.
        doomed = _spec(
            tiny_model, cluster_a10_4,
            workload=constant_workload(1, 5_000_000, 1),
        )
        with pytest.raises(CapacityError):
            CellExecutor(jobs=1).run([doomed])


class TestResultCache:
    def test_miss_then_hit_bit_identical(
        self, tmp_path, tiny_model, cluster_a10_4
    ):
        spec = _spec(tiny_model, cluster_a10_4)
        cache = ResultCache(root=tmp_path)
        executor = CellExecutor(jobs=1, cache=cache)
        (cold,) = executor.run_outcomes([spec])
        (warm,) = executor.run_outcomes([spec])
        assert not cold.cached and warm.cached
        assert warm.result == cold.result
        assert warm.peak_rss_mb == 0.0
        assert cache.hits == 1 and cache.misses == 1

    def test_pooled_run_populates_cache(self, tmp_path, tiny_model, cluster_a10_4):
        specs = _mixed_cells(tiny_model, cluster_a10_4)[:2]
        cold = CellExecutor(jobs=2, cache=ResultCache(root=tmp_path)).run(specs)
        warm_cache = ResultCache(root=tmp_path)
        warm = CellExecutor(jobs=2, cache=warm_cache).run_outcomes(specs)
        assert all(o.cached for o in warm)
        assert [o.result for o in warm] == cold
        assert warm_cache.hits == len(specs)

    def test_code_salt_invalidates(self, tmp_path, tiny_model, cluster_a10_4):
        spec = _spec(tiny_model, cluster_a10_4)
        old = ResultCache(root=tmp_path, salt="old-code")
        executor = CellExecutor(jobs=1, cache=old)
        (outcome,) = executor.run_outcomes([spec])
        new = ResultCache(root=tmp_path, salt="new-code")
        assert new.get(spec) is None
        # The old generation's entry is untouched on disk.
        assert old.get(spec) == outcome.result

    def test_corrupted_entry_recovers(self, tmp_path, tiny_model, cluster_a10_4):
        spec = _spec(tiny_model, cluster_a10_4)
        cache = ResultCache(root=tmp_path)
        executor = CellExecutor(jobs=1, cache=cache)
        (cold,) = executor.run([spec])
        path = cache.path_for(spec)
        path.write_bytes(b"not a pickle")
        assert cache.get(spec) is None
        assert not path.exists()
        # The executor transparently re-simulates and re-populates.
        (again,) = executor.run([spec])
        assert again == cold
        assert cache.get(spec) == cold

    def test_wrong_payload_shape_is_a_miss(
        self, tmp_path, tiny_model, cluster_a10_4
    ):
        spec = _spec(tiny_model, cluster_a10_4)
        cache = ResultCache(root=tmp_path)
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"schema": "other", "result": 42}))
        assert cache.get(spec) is None
        assert not path.exists()

    def test_stats_and_clear(self, tmp_path, tiny_model, cluster_a10_4):
        spec = _spec(tiny_model, cluster_a10_4)
        for salt in ("gen-a", "gen-b"):
            cache = ResultCache(root=tmp_path, salt=salt)
            CellExecutor(jobs=1, cache=cache).run([spec])
        cache = ResultCache(root=tmp_path, salt="gen-b")
        stats = cache.stats()
        assert stats.generations == 2
        assert stats.entries == 2
        assert stats.current_entries == 1
        assert stats.total_bytes > 0
        assert cache.clear() == 2
        empty = cache.stats()
        assert empty.entries == 0 and empty.current_entries == 0

    def test_code_salt_is_stable(self):
        assert code_salt() == code_salt()
        assert len(code_salt()) == 16


class TestGoldensExecutorPath:
    def test_goldens_pass_through_executor_and_cache(self, tmp_path):
        names = ("vllm_plain", "disagg")
        cache = ResultCache(root=tmp_path)
        executor = CellExecutor(jobs=1, cache=cache)
        outcomes = run_goldens(names, executor=executor)
        assert all(o.passed for o in outcomes)
        assert cache.misses == len(names) and cache.hits == 0
        again = run_goldens(names, executor=executor)
        assert all(o.passed for o in again)
        assert cache.hits == len(names)


SWEEP_ARGS = [
    "sweep",
    "--model", "34b",
    "--dataset", "const:256x16",
    "--num-requests", "6",
    "--num-gpus", "4",
]


class TestCliExecFlags:
    def test_sweep_stdout_byte_identical_across_jobs(self, capsys):
        assert main([*SWEEP_ARGS, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*SWEEP_ARGS, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sweep_cache_keeps_stdout_and_reports_on_stderr(
        self, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(SWEEP_ARGS) == 0
        plain = capsys.readouterr().out
        assert main([*SWEEP_ARGS, "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr()
        assert cold.out == plain
        assert "cache:" in cold.err and "0 hit(s)" in cold.err
        assert main([*SWEEP_ARGS, "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr()
        assert warm.out == plain
        assert "0 miss(es)" in warm.err

    def test_cache_stats_and_clear_commands(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([*SWEEP_ARGS, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out and code_salt() in stats_out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries         : 0" in capsys.readouterr().out

    def test_sanitize_is_incompatible_with_exec_flags(self, capsys):
        rc = main([*SWEEP_ARGS, "--coupled", "--sanitize", "--jobs", "2"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "--sanitize is incompatible" in err

    def test_goldens_cli_accepts_jobs(self, capsys):
        rc = main(["check", "goldens", "vllm_plain", "--jobs", "2"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out
