"""Cross-cutting integration tests: public API, engine cross-consistency."""

import pytest

import repro
from repro import (
    DecodePrioritizedEngine,
    EngineOptions,
    SeesawEngine,
    VllmLikeEngine,
    constant_workload,
    get_model,
    make_cluster,
    parse_config,
)
from repro.errors import (
    CapacityError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    SimulationError,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_error_hierarchy(self):
        for exc in (CapacityError, ConfigurationError, SchedulingError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_quickstart_docstring_flow(self):
        """The exact flow advertised in the package docstring works."""
        model = get_model("34b")
        cluster = make_cluster("A10", 8)
        workload = constant_workload(16, 512, 32)
        baseline = VllmLikeEngine(model, cluster, parse_config("T4P2")).run(workload)
        seesaw = SeesawEngine(
            model, cluster, parse_config("P8"), parse_config("T4P2")
        ).run(workload)
        assert seesaw.throughput_rps > 0 and baseline.throughput_rps > 0


class TestCrossEngineConsistency:
    """Different engines on the same work must agree on the invariants."""

    @pytest.fixture(scope="class")
    def setup(self):
        model = get_model("34b")
        cluster = make_cluster("A10", 8)
        workload = constant_workload(32, 1024, 64)
        return model, cluster, workload

    def test_all_engines_process_same_tokens(self, setup):
        model, cluster, wl = setup
        results = [
            VllmLikeEngine(model, cluster, parse_config("T4P2")).run(wl),
            VllmLikeEngine(
                model,
                cluster,
                parse_config("T4P2"),
                EngineOptions(chunked_prefill=True, chunk_size=2048),
            ).run(wl),
            DecodePrioritizedEngine(model, cluster, parse_config("T4P2")).run(wl),
            SeesawEngine(
                model, cluster, parse_config("P8"), parse_config("T4P2")
            ).run(wl),
        ]
        for r in results:
            assert r.num_requests == 32
            assert r.input_tokens == wl.total_input_tokens
            assert r.output_tokens == wl.total_output_tokens

    def test_decode_prioritized_never_faster_than_continuous(self, setup):
        """Continuous batching dominates batch-at-a-time for same config
        (equal only when a single batch holds everything)."""
        model, cluster, wl = setup
        cb = VllmLikeEngine(model, cluster, parse_config("T4P2")).run(wl)
        dp = DecodePrioritizedEngine(model, cluster, parse_config("T4P2")).run(wl)
        assert cb.total_time <= dp.total_time * 1.01

    def test_seesaw_beats_both_parents(self, setup):
        """The core property: the transition engine beats both of its
        endpoint static configurations on a mixed workload."""
        model, cluster, wl = setup
        pp8 = VllmLikeEngine(model, cluster, parse_config("P8")).run(wl)
        t4p2 = VllmLikeEngine(model, cluster, parse_config("T4P2")).run(wl)
        seesaw = SeesawEngine(
            model, cluster, parse_config("P8"), parse_config("T4P2")
        ).run(wl)
        assert seesaw.throughput_rps > pp8.throughput_rps
        assert seesaw.throughput_rps > t4p2.throughput_rps

    def test_dp_improves_or_matches_small_model(self):
        """DP on a small model trades KV space for parallel replicas; with
        ample memory it should not catastrophically lose."""
        model = get_model("15b")
        cluster = make_cluster("A10", 8)
        wl = constant_workload(64, 512, 64)
        single = VllmLikeEngine(model, cluster, parse_config("T4P2")).run(wl)
        dp = VllmLikeEngine(model, cluster, parse_config("D2T2P2")).run(wl)
        assert dp.throughput_rps > 0.5 * single.throughput_rps

    def test_bandwidth_scaling_monotone_for_tp(self, setup):
        """More all-reduce bandwidth never hurts a TP-heavy config."""
        model, _, wl = setup
        base = make_cluster("A10", 8)
        slow = VllmLikeEngine(
            model, base.scaled_bandwidth(0.5), parse_config("T8")
        ).run(wl)
        fast = VllmLikeEngine(
            model, base.scaled_bandwidth(4.0), parse_config("T8")
        ).run(wl)
        assert fast.total_time < slow.total_time

    def test_nvlink_class_fabric_helps_tp(self, setup):
        model, _, wl = setup
        from repro.hardware.interconnect import NVLINK_A100

        pcie = make_cluster("A10", 8)
        nv = pcie.with_fabric(NVLINK_A100)
        t_pcie = VllmLikeEngine(model, pcie, parse_config("T8")).run(wl).total_time
        t_nv = VllmLikeEngine(model, nv, parse_config("T8")).run(wl).total_time
        assert t_nv < t_pcie
