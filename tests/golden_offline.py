"""Golden offline totals captured from the seed revision.

These numbers were recorded by running the seed engines (all arrival
times at 0) on the fixed scenarios in ``scenarios()``; the event-driven
refactor must reproduce them exactly. Regenerate with::

    PYTHONPATH=src:tests python -m golden_offline

only when an intentional cost-model change invalidates them.
"""

from __future__ import annotations

from repro.core.engine import SeesawEngine
from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.disaggregated import DisaggregatedEngine, DisaggregationPlan
from repro.engines.vllm_like import VllmLikeEngine
from repro.engines.base import EngineOptions
from repro.hardware.cluster import make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import parse_config
from repro.workloads.datasets import sharegpt_workload
from repro.workloads.synthetic import constant_workload


def _tiny_model() -> ModelConfig:
    return ModelConfig(
        name="tiny-2b",
        num_layers=16,
        hidden_size=2048,
        num_heads=16,
        num_kv_heads=4,
        intermediate_size=5504,
        vocab_size=32000,
    )


def scenarios() -> dict[str, object]:
    """Engine runs covering all four engines (plus DP and chunked paths)."""
    tiny = _tiny_model()
    m34 = get_model("34b")
    a10_4 = make_cluster("A10", 4)
    a10_8 = make_cluster("A10", 8)
    const = constant_workload(16, 256, 32)
    chat = sharegpt_workload(40, seed=7)

    def vllm_plain():
        return VllmLikeEngine(tiny, a10_4, parse_config("T2P2")).run(const)

    def vllm_chunked():
        opts = EngineOptions(chunked_prefill=True, chunk_size=512)
        return VllmLikeEngine(tiny, a10_4, parse_config("T2P2"), opts).run(chat)

    def vllm_dp():
        return VllmLikeEngine(tiny, a10_4, parse_config("D2T2")).run(chat)

    def decode_prio():
        return DecodePrioritizedEngine(tiny, a10_4, parse_config("T4")).run(chat)

    def seesaw():
        return SeesawEngine(
            m34, a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(sharegpt_workload(30, seed=7))

    def disagg():
        plan = DisaggregationPlan(
            prefill_config=parse_config("T2"), decode_config=parse_config("T2")
        )
        return DisaggregatedEngine(tiny, a10_4, plan).run(const)

    return {
        "vllm_plain": vllm_plain,
        "vllm_chunked": vllm_chunked,
        "vllm_dp": vllm_dp,
        "decode_prio": decode_prio,
        "seesaw": seesaw,
        "disagg": disagg,
    }


def capture() -> dict[str, dict[str, object]]:
    out: dict[str, dict[str, object]] = {}
    for name, fn in scenarios().items():
        r = fn()
        out[name] = {
            "total_time": r.total_time,
            "phase_time": dict(sorted(r.phase_time.items())),
            "transitions": r.transitions,
            "output_tokens": r.output_tokens,
        }
    return out


if __name__ == "__main__":
    import json

    print(json.dumps(capture(), indent=2, sort_keys=True))
