"""Correctness tooling: the determinism linter (simlint) and the
shared-clock invariant sanitizer (simsan).

The lint tests feed each rule a minimal positive and negative sample
through :func:`lint_source`. The sanitizer tests are mutation-style:
inject the exact fault each rule guards against and assert it raises a
:class:`SanitizerError` carrying the right rule id — plus the golden
identity that a sanitized run is bit-exact with an unsanitized one.
"""

from __future__ import annotations

import dataclasses
import textwrap
import warnings

import pytest

from repro.check import (
    ALL_RULES,
    LEGAL_TRANSITIONS,
    RULES_BY_ID,
    Sanitizer,
    SanitizerError,
    lint_paths,
    lint_source,
)
from repro.cluster.simulator import ClusterSimulator
from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError
from repro.parallel.config import parse_config
from repro.routing.policies import DEFAULT_STORM_PREEMPTIONS
from repro.runtime.request import Request
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.synthetic import constant_workload


def rules_of(source: str, rel: str = "src/repro/cluster/mod.py") -> list[str]:
    """Rule ids simlint reports for ``source`` pretending it lives at
    ``rel`` (a path inside the scheduling tree, so every rule applies)."""
    return [f.rule for f in lint_source(textwrap.dedent(source), rel=rel)]


class TestLintRules:
    def test_registry_is_complete(self):
        assert sorted(RULES_BY_ID) == ["R1", "R2", "R3", "R4", "R5", "R6"]
        assert len(ALL_RULES) == 6
        for rule in ALL_RULES:
            assert rule.severity in ("error", "warning")
            assert rule.description

    # R1 — wall-clock reads -------------------------------------------- #

    def test_r1_flags_wallclock_call(self):
        assert "R1" in rules_of("import time\nt = time.time()\n")

    def test_r1_resolves_import_aliases(self):
        assert "R1" in rules_of(
            "from time import perf_counter as pc\nt = pc()\n"
        )

    def test_r1_ignores_virtual_clocks(self):
        src = "def step(self):\n    self.clock = self.next_event_time()\n"
        assert rules_of(src) == []

    def test_r1_exempts_bench(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, rel="src/repro/bench.py") == []

    # R2 — unseeded global RNG ----------------------------------------- #

    def test_r2_flags_global_random(self):
        assert "R2" in rules_of("import random\nx = random.random()\n")

    def test_r2_flags_numpy_global_seed(self):
        assert "R2" in rules_of("import numpy as np\nnp.random.seed(0)\n")

    def test_r2_allows_seeded_generators(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.integers(0, 10)\n"
        )
        assert rules_of(src) == []

    # R3 — iteration-order hazards in scheduling code ------------------ #

    def test_r3_flags_set_iteration(self):
        src = "stepped: set[int] = set()\nfor rid in stepped:\n    pass\n"
        assert "R3" in rules_of(src)

    def test_r3_flags_dict_keys_iteration(self):
        assert "R3" in rules_of("d = {}\nfor k in d.keys():\n    pass\n")

    def test_r3_sorted_is_clean(self):
        src = "stepped: set[int] = set()\nfor rid in sorted(stepped):\n    pass\n"
        assert rules_of(src) == []

    def test_r3_scoped_to_scheduling_dirs(self):
        src = "s = {1, 2}\nfor x in s:\n    pass\n"
        assert lint_source(src, rel="src/repro/analysis/report.py") == []

    # R4 — unguarded telemetry in hot loops ---------------------------- #

    def test_r4_flags_unguarded_probe(self):
        src = (
            "def step(self):\n"
            "    self._probe.tick(self.clock)\n"
        )
        assert "R4" in rules_of(src)

    def test_r4_accepts_none_guard(self):
        src = (
            "def step(self):\n"
            "    if self._probe is not None:\n"
            "        self._probe.tick(self.clock)\n"
        )
        assert rules_of(src) == []

    def test_r4_accepts_early_return_guard(self):
        src = (
            "def step(self):\n"
            "    if self._probe is None:\n"
            "        return\n"
            "    self._probe.tick(self.clock)\n"
        )
        assert rules_of(src) == []

    # R5 — relative clock accumulation --------------------------------- #

    def test_r5_flags_invariant_increment(self):
        src = (
            "def run(self, dt):\n"
            "    while self.pending:\n"
            "        self.clock += dt\n"
        )
        assert "R5" in rules_of(src)

    def test_r5_allows_loop_varying_increment(self):
        src = (
            "def run(self):\n"
            "    for _ in range(3):\n"
            "        dt = self.iteration_time()\n"
            "        self.clock += dt\n"
        )
        assert rules_of(src) == []

    # R6 — options mutation after construction ------------------------- #

    def test_r6_flags_attribute_write(self):
        assert "R6" in rules_of("def f(opts):\n    opts.chunk_size = 1\n")

    def test_r6_flags_object_setattr(self):
        assert "R6" in rules_of("object.__setattr__(options, 'router', 'jsq')\n")

    def test_r6_allows_construction(self):
        src = (
            "def __init__(self, options):\n"
            "    self.options = options\n"
        )
        assert rules_of(src) == []


#: Built by concatenation so this file's own lines never spell the
#: marker (the suppression scan is line-based and would consume it).
SUPPRESS_R3 = "# repro-check: " + "ignore[R3]"


class TestSuppressions:
    def test_suppression_silences_finding(self):
        src = (
            "d = {}\n"
            f"for k in d.keys():  {SUPPRESS_R3}\n"
            "    pass\n"
        )
        assert rules_of(src) == []

    def test_unused_suppression_is_reported(self):
        src = f"x = 1  {SUPPRESS_R3}\n"
        assert rules_of(src) == ["R0"]

    def test_select_narrows_rules(self):
        src = "import time\nimport random\nt = time.time()\nx = random.random()\n"
        found = lint_source(src, rel="src/repro/cluster/mod.py", select={"R2"})
        assert [f.rule for f in found] == ["R2"]

    def test_unknown_select_rejected(self):
        with pytest.raises(ConfigurationError):
            lint_source("x = 1\n", select={"R99"})


class TestLintPaths:
    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([bad])
        assert report.files_checked == 1
        assert [f.rule for f in report.findings] == ["E0"]
        assert report.exit_code() == 1

    def test_strict_gates_warnings(self, tmp_path):
        mod = tmp_path / "cluster" / "mod.py"
        mod.parent.mkdir()
        mod.write_text(
            "def run(self, dt):\n"
            "    while self.pending:\n"
            "        self.clock += dt\n"
        )
        report = lint_paths([tmp_path])
        assert report.errors == 0 and report.warnings == 1
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_repo_source_is_clean(self):
        import repro

        from pathlib import Path

        report = lint_paths([Path(repro.__file__).parent])
        assert [f.format() for f in report.findings] == []


class TestSanitizerUnits:
    def test_rule_table(self):
        assert ("active", "draining") in LEGAL_TRANSITIONS
        assert ("active", "stopped") not in LEGAL_TRANSITIONS

    def test_s1_replica_clock_regression(self):
        san = Sanitizer()
        san.note_replica_clock(0, 4.0, 5.0)
        with pytest.raises(SanitizerError) as exc:
            san.note_replica_clock(0, 5.0, 4.0)
        assert exc.value.rule == "S1"
        assert exc.value.replica == 0

    def test_s1_cluster_clock_regression(self):
        san = Sanitizer()
        san.note_cluster_clock(10.0)
        with pytest.raises(SanitizerError) as exc:
            san.note_cluster_clock(9.0)
        assert exc.value.rule == "S1"

    def test_s2_late_heap_pop(self):
        san = Sanitizer()
        san.note_event_pop(3.0, 0, 3.0)
        with pytest.raises(SanitizerError) as exc:
            san.note_event_pop(5.0, 0, 3.0)
        assert exc.value.rule == "S2"

    def test_s2_dispatch_before_arrival(self):
        san = Sanitizer()
        req = Request(0, 128, 8, arrival_time=10.0)
        with pytest.raises(SanitizerError) as exc:
            san.note_dispatch(req, 0, 9.0)
        assert exc.value.rule == "S2"

    def test_s5_duplicate_dispatch(self):
        san = Sanitizer()
        req = Request(0, 128, 8, arrival_time=0.0)
        san.note_dispatch(req, 0, 0.0)
        with pytest.raises(SanitizerError) as exc:
            san.note_dispatch(req, 1, 1.0)
        assert exc.value.rule == "S5"

    def test_s5_withdraw_requires_ownership(self):
        san = Sanitizer()
        req = Request(0, 128, 8, arrival_time=0.0)
        san.note_dispatch(req, 0, 0.0)
        with pytest.raises(SanitizerError) as exc:
            san.note_withdraw(req, 1, 1.0)
        assert exc.value.rule == "S5"
        # A legal withdraw releases the id for re-dispatch (the storm path).
        san.note_withdraw(req, 0, 1.0)
        san.note_dispatch(req, 1, 1.0)

    def test_s6_illegal_transition(self):
        san = Sanitizer()
        san.note_transition(0, "provisioning", "warming", 0.0)
        with pytest.raises(SanitizerError) as exc:
            san.note_transition(0, "active", "stopped", 1.0)
        assert exc.value.rule == "S6"

    def test_begin_run_resets_ownership(self):
        san = Sanitizer()
        req = Request(0, 128, 8, arrival_time=0.0)
        san.note_dispatch(req, 0, 0.0)
        san.note_cluster_clock(50.0)
        san.begin_run()
        san.note_cluster_clock(0.0)  # fresh run starts earlier: legal
        san.note_dispatch(req, 1, 0.0)  # same id in a new run: legal

    def test_error_message_carries_context(self):
        err = SanitizerError("S1", "boom", time=1.5, replica=3)
        assert "[S1:clock-monotonic]" in str(err)
        assert "t=1.500000" in str(err)
        assert "replica=3" in str(err)


class TestSanitizerConservation:
    def _drained_sim(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("T2"),
            EngineOptions(coupled=True),
        )
        sim = engine.start_replica(0)
        sim.inject(Request(0, 256, 8, arrival_time=0.0))
        sim.finish()
        return sim

    def test_s3_clean_drain_passes(self, tiny_model, cluster_a10_4):
        sim = self._drained_sim(tiny_model, cluster_a10_4)
        san = Sanitizer()
        san.check_drained(0, sim.run.state, sim.clock)
        assert san.checks["S3"] == 1 and san.checks["S4"] == 1

    def test_s3_undrained_request_caught(self, tiny_model, cluster_a10_4):
        sim = self._drained_sim(tiny_model, cluster_a10_4)
        sim.inject(Request(1, 256, 8, arrival_time=sim.clock + 1.0))
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().check_drained(0, sim.run.state, sim.clock)
        assert exc.value.rule == "S3"

    def test_s3_token_mismatch_caught(self, tiny_model, cluster_a10_4):
        sim = self._drained_sim(tiny_model, cluster_a10_4)
        seq = sim.run.state.finished[0]
        seq.generated_tokens += 1  # fake an extra decoded token
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().check_drained(0, sim.run.state, sim.clock)
        assert exc.value.rule == "S3"
        seq.generated_tokens -= 1

    def test_s4_leaked_block_caught(self, tiny_model, cluster_a10_4):
        sim = self._drained_sim(tiny_model, cluster_a10_4)
        kv = sim.run.state.kv
        kv.allocate(99, 128)  # a sequence the drain never freed
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().check_kv(kv, 0, sim.clock)
        assert exc.value.rule == "S4"
        kv.free(99)

    def test_s4_unbalanced_books_caught(self, tiny_model, cluster_a10_4):
        sim = self._drained_sim(tiny_model, cluster_a10_4)
        kv = sim.run.state.kv
        kv._used += 1  # emulate a double-free re-credit
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().check_kv(kv, 0, sim.clock)
        assert exc.value.rule == "S4"
        kv._used -= 1


class TestSanitizedRuns:
    def _run(self, tiny_model, cluster_a10_4, san):
        wl = poisson_arrivals(
            constant_workload(24, 512, 16), 6.0, seed=11
        )
        engine = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq", sanitize=san),
        )
        return engine.run(wl)

    def test_reference_run_is_violation_free(self, tiny_model, cluster_a10_4):
        san = Sanitizer()
        self._run(tiny_model, cluster_a10_4, san)
        assert san.total_checks > 0
        # Every rule family exercised except the storm-withdraw arm of S5.
        for rule in ("S1", "S2", "S3", "S4", "S5", "S6"):
            assert san.checks[rule] > 0, rule

    def test_sanitize_off_is_bit_exact(self, tiny_model, cluster_a10_4):
        plain = self._run(tiny_model, cluster_a10_4, None)
        checked = self._run(tiny_model, cluster_a10_4, Sanitizer())

        def key(result):
            recs = tuple(
                dataclasses.astuple(r) for r in result.latency.records
            )
            return (result.throughput_rps, result.total_time, recs)

        assert key(plain) == key(checked)

    def test_storm_redispatch_keeps_ownership(self, tiny_model, cluster_a10_4):
        san = Sanitizer()
        engine = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq", sanitize=san),
        )
        reqs = [Request(i, 200, 4, arrival_time=float(i)) for i in range(6)]
        sim = ClusterSimulator(engine, reqs)
        src = sim.sims[0]
        for r in reqs[:3]:
            san.note_dispatch(r, src.replica_id, r.arrival_time)  # as run() does
            src.inject(r)
        src.run.metrics.preemptions = DEFAULT_STORM_PREEMPTIONS
        moved = sim._redispatch_storms(5.0)
        assert moved == 3
        # Ownership followed the re-dispatch: all three ids now live on
        # the calm replica, and none were lost or duplicated.
        assert san._owner == {0: 1, 1: 1, 2: 1}

    def test_options_validation(self):
        with pytest.raises(ConfigurationError, match="coupled"):
            EngineOptions(sanitize=Sanitizer())
        with pytest.raises(ConfigurationError, match="Sanitizer"):
            EngineOptions(sanitize=object(), coupled=True)
        # The fluid fidelity carries its own conservation analogs now.
        EngineOptions(sanitize=Sanitizer(), coupled=True, fidelity="fluid")

    def test_describe_reports_counts(self, tiny_model, cluster_a10_4):
        san = Sanitizer()
        self._run(tiny_model, cluster_a10_4, san)
        text = san.describe()
        assert "checks passed" in text
        assert "S4 kv-balance" in text
        assert san.summary()["S5"] == 24


class TestFluidSanitizedRuns:
    """simsan on the fluid fidelity: the mean-field conservation analogs
    (S3), plus the usual clock/causality/identity hooks per arrival."""

    def _run(self, tiny_model, cluster_a10_4, san):
        wl = poisson_arrivals(constant_workload(48, 512, 16), 6.0, seed=11)
        engine = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("D2T2"),
            EngineOptions(
                coupled=True, router="jsq", fidelity="fluid", sanitize=san
            ),
        )
        return engine.run(wl)

    def test_fluid_run_is_violation_free_and_counted(
        self, tiny_model, cluster_a10_4
    ):
        san = Sanitizer()
        self._run(tiny_model, cluster_a10_4, san)
        # One S1 + S2 + S5 per arrival, one S3 per request timeline plus
        # the drain conservation sweep: --sanitize on the fluid path is
        # not a silent no-op.
        assert san.checks["S1"] == 48
        assert san.checks["S2"] == 48
        assert san.checks["S5"] == 48
        assert san.checks["S3"] == 49

    def test_fluid_sanitize_off_is_bit_exact(self, tiny_model, cluster_a10_4):
        plain = self._run(tiny_model, cluster_a10_4, None)
        checked = self._run(tiny_model, cluster_a10_4, Sanitizer())
        assert plain == checked

    def test_fluid_timeline_ordering_caught(self):
        san = Sanitizer()
        with pytest.raises(SanitizerError) as exc:
            san.note_fluid_request(
                7, 0, arrival=1.0, sched=0.5, first=2.0, finish=3.0
            )
        assert exc.value.rule == "S3"
        with pytest.raises(SanitizerError, match="finish"):
            san.note_fluid_request(
                7, 0, arrival=1.0, sched=1.5, first=2.0, finish=1.9
            )

    def test_fluid_conservation_mismatches_caught(self):
        san = Sanitizer()
        good = dict(
            num_requests=10,
            dispatched=10,
            prompt_tokens=5120,
            served_prompt_tokens=5120.0,
            decode_tokens=150,
            expected_decode_tokens=150,
            total_tokens=5280,
            expected_total_tokens=5280,
            now=100.0,
        )
        san.check_fluid_conservation(**good)
        for field, bad in (
            ("dispatched", 9),
            ("decode_tokens", 151),
            ("total_tokens", 5279),
            ("served_prompt_tokens", 5000.0),
        ):
            with pytest.raises(SanitizerError) as exc:
                san.check_fluid_conservation(**{**good, field: bad})
            assert exc.value.rule == "S3"
        # The prefill-stream check is a float accumulation: tiny drift
        # inside the tolerance must not trip it.
        san.check_fluid_conservation(
            **{**good, "served_prompt_tokens": 5120.0 + 1e-7 * 5120}
        )


class TestDispatchLogDeprecation:
    def test_warns_exactly_once_per_simulator(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("D2T2"),
            EngineOptions(coupled=True, debug_dispatch_log=True),
        )
        sim = ClusterSimulator(
            engine, [Request(0, 128, 4, arrival_time=0.0)]
        )
        sim.run()
        with pytest.warns(DeprecationWarning, match="dispatch_log"):
            first = sim.dispatch_log
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            again = sim.dispatch_log
        assert first == again
