"""Property-based tests: parallel configs, shard maps, cost monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.breakdown import Breakdown
from repro.hardware.cluster import make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig, parse_config
from repro.parallel.resharding import plan_reshard
from repro.parallel.sharding import build_shard_map

degrees = st.sampled_from([1, 2, 4, 8])


@st.composite
def configs(draw, max_gpus=8):
    tp = draw(degrees)
    pp = draw(degrees)
    dp = draw(degrees)
    if tp * pp * dp > max_gpus:
        tp, pp, dp = 1, 1, 1
    return ParallelConfig(tp=tp, pp=pp, dp=dp)


class TestConfigProperties:
    @given(cfg=configs())
    def test_label_roundtrip(self, cfg):
        assert parse_config(cfg.label()) == cfg

    @given(cfg=configs())
    def test_gpu_count_consistent(self, cfg):
        assert cfg.num_gpus == cfg.dp * cfg.model_gpus


class TestShardMapProperties:
    model = get_model("34b")

    @given(cfg=configs())
    @settings(max_examples=40)
    def test_layers_cover_exactly_once_per_replica(self, cfg):
        m = build_shard_map(self.model, cfg)
        for dp_rank in range(cfg.dp):
            for tp_rank in range(cfg.tp):
                covered = []
                for s in m.shards:
                    if s.dp_rank == dp_rank and s.tp_rank == tp_rank:
                        covered.extend(range(*s.layer_range))
                assert sorted(covered) == list(range(self.model.num_layers))

    @given(src=configs(), dst=configs())
    @settings(max_examples=40)
    def test_reshard_reuse_bounded(self, src, dst):
        full = plan_reshard(self.model, src, dst, reuse_overlap=False)
        reuse = plan_reshard(self.model, src, dst, reuse_overlap=True)
        assert reuse.total_transfer_bytes <= full.total_transfer_bytes + 1e-6
        for need, xfer in zip(reuse.bytes_per_gpu, reuse.transfer_bytes_per_gpu):
            assert -1e-6 <= xfer <= need + 1e-6


class TestBreakdownProperties:
    components = st.floats(min_value=0, max_value=1e3)

    @given(
        a=st.tuples(*[components] * 6),
        b=st.tuples(*[components] * 6),
    )
    def test_total_subadditive(self, a, b):
        """Roofline totals are subadditive: max(x+y) <= max(x)+max(y)."""
        ba = Breakdown(*a)
        bb = Breakdown(*b)
        assert (ba + bb).total <= ba.total + bb.total + 1e-9

    @given(a=st.tuples(*[components] * 6), k=st.floats(min_value=0, max_value=100))
    def test_scale_scales_total(self, a, k):
        b = Breakdown(*a)
        assert b.scale(k).total == b.total * k or abs(
            b.scale(k).total - b.total * k
        ) < 1e-6 * max(1.0, b.total * k)

    @given(a=st.tuples(*[components] * 6))
    def test_attribution_conserves_total(self, a):
        b = Breakdown(*a)
        assert sum(b.attributed().values()) <= b.total + 1e-9


class TestCostMonotonicity:
    model = get_model("34b")
    cluster = make_cluster("A10", 8)

    @given(
        tokens=st.integers(min_value=1, max_value=8192),
        extra=st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=30)
    def test_prefill_cost_monotone_in_tokens(self, tokens, extra):
        from repro.costmodel.step import StepCostModel

        m = StepCostModel(self.model, self.cluster, parse_config("T2P2D2"))
        t1 = m.prefill_stage_time([tokens]).total
        t2 = m.prefill_stage_time([tokens + extra]).total
        assert t2 >= t1

    @given(
        seqs=st.integers(min_value=1, max_value=256),
        extra=st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=30)
    def test_decode_iteration_monotone_in_batch(self, seqs, extra):
        from repro.costmodel.step import StepCostModel

        m = StepCostModel(self.model, self.cluster, parse_config("T4P2"))
        t1 = m.decode_iteration_time(seqs, seqs * 1000).total
        t2 = m.decode_iteration_time(seqs + extra, (seqs + extra) * 1000).total
        assert t2 >= t1 - 1e-12

    @given(seqs=st.integers(min_value=1, max_value=128))
    @settings(max_examples=30)
    def test_decode_throughput_improves_with_batch(self, seqs):
        """Per-token cost falls (or holds) as the batch grows — the
        batching-amortizes-weights effect of Section 2.2."""
        from repro.costmodel.step import StepCostModel

        m = StepCostModel(self.model, self.cluster, parse_config("T4P2"))
        t1 = m.decode_iteration_time(seqs, seqs * 500).total / seqs
        t2 = m.decode_iteration_time(2 * seqs, 2 * seqs * 500).total / (2 * seqs)
        assert t2 <= t1 * 1.01


class TestModelAccountingProperties:
    @given(
        layers=st.integers(min_value=1, max_value=100),
        heads=st.sampled_from([8, 16, 32, 64]),
        kv_ratio=st.sampled_from([1, 2, 4, 8]),
        head_dim=st.sampled_from([64, 128]),
    )
    @settings(max_examples=40)
    def test_param_and_kv_accounting_consistent(self, layers, heads, kv_ratio, head_dim):
        m = ModelConfig(
            name="gen",
            num_layers=layers,
            hidden_size=heads * head_dim,
            num_heads=heads,
            num_kv_heads=max(1, heads // kv_ratio),
            intermediate_size=4 * heads * head_dim,
            vocab_size=1000,
        )
        assert m.total_params == layers * m.layer_params + 2 * m.embedding_params
        assert m.kv_bytes_per_token == layers * m.kv_bytes_per_token_per_layer
        assert m.total_weight_bytes == m.total_params * 2
