"""Decode-prioritized and disaggregated engines."""

import pytest

from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.disaggregated import (
    DisaggregatedEngine,
    DisaggregationPlan,
)
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.cluster import make_cluster
from repro.parallel.config import parse_config
from repro.workloads.datasets import sharegpt_workload
from repro.workloads.synthetic import constant_workload


class TestDecodePrioritized:
    def test_completes(self, tiny_model, cluster_a10_4):
        wl = constant_workload(24, 300, 40)
        r = DecodePrioritizedEngine(
            tiny_model, cluster_a10_4, parse_config("T2P2")
        ).run(wl)
        assert r.num_requests == 24

    def test_batch_at_a_time_transitions(self, model_70b, cluster_a10_8):
        """One prefill->decode->prefill cycle per admitted batch."""
        wl = sharegpt_workload(120, seed=2)
        r = DecodePrioritizedEngine(
            model_70b, cluster_a10_8, parse_config("T4P2")
        ).run(wl)
        assert r.transitions >= 2

    def test_oversized_request_raises(self, tiny_model, cluster_a10_4):
        wl = constant_workload(1, 2_000_000, 2_000_000)
        with pytest.raises(CapacityError):
            DecodePrioritizedEngine(
                tiny_model, cluster_a10_4, parse_config("T2P2")
            ).run(wl)

    def test_slower_than_continuous_batching(
        self, model_70b, cluster_a10_8
    ):
        """Draining batches wastes decode capacity vs continuous batching
        once the workload exceeds GPU KV space."""
        from repro.engines.vllm_like import VllmLikeEngine

        wl = sharegpt_workload(400, seed=2)
        dp = DecodePrioritizedEngine(
            model_70b, cluster_a10_8, parse_config("T4P2")
        ).run(wl)
        cb = VllmLikeEngine(model_70b, cluster_a10_8, parse_config("T4P2")).run(wl)
        assert cb.throughput_rps > dp.throughput_rps


class TestDisaggregated:
    def plan(self):
        return DisaggregationPlan(
            prefill_config=parse_config("P4"), decode_config=parse_config("T4")
        )

    def test_plan_labels(self):
        plan = self.plan()
        assert plan.total_gpus == 8
        assert plan.label() == "P4|T4"

    def test_pools_must_fit(self, model_70b):
        cluster = make_cluster("A100-PCIE", 8)
        bad = DisaggregationPlan(
            prefill_config=parse_config("T2"), decode_config=parse_config("T4P1").__class__(tp=4, pp=1, dp=1)
        )
        with pytest.raises(CapacityError):
            DisaggregatedEngine(model_70b, cluster, bad)

    def test_plan_cannot_exceed_cluster(self, model_70b):
        cluster = make_cluster("A100-PCIE", 4)
        with pytest.raises(ConfigurationError):
            DisaggregatedEngine(model_70b, cluster, self.plan())

    def test_analysis_and_run(self, model_70b):
        cluster = make_cluster("A100-PCIE", 8)
        wl = constant_workload(64, 512, 256)
        engine = DisaggregatedEngine(model_70b, cluster, self.plan())
        analysis = engine.analyze(wl)
        assert analysis.prefill_throughput_rps > 0
        assert analysis.decode_throughput_rps > 0
        assert analysis.mismatch_ratio >= 1.0
        result = engine.run(wl)
        assert result.num_requests == 64
        # Overall time bounded below by the slower stage.
        slower = max(analysis.prefill_time, analysis.decode_time)
        assert result.total_time >= slower

    def test_prefill_pool_faster_than_decode_pool(self, model_70b):
        """Fig. 4: the balanced 4+4 split still mismatches badly."""
        cluster = make_cluster("A100-PCIE", 8)
        wl = constant_workload(64, 512, 512)
        analysis = DisaggregatedEngine(model_70b, cluster, self.plan()).analyze(wl)
        assert analysis.prefill_throughput_rps > 2 * analysis.decode_throughput_rps
