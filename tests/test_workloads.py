"""Workload samplers: shapes, determinism, statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.datasets import arxiv_workload, sample_dataset, sharegpt_workload
from repro.workloads.spec import WorkloadSpec, workload_stats
from repro.workloads.synthetic import (
    constant_workload,
    poisson_arrival_workload,
    ratio_workload,
    uniform_workload,
)


class TestSpec:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="x", requests=())

    def test_totals(self):
        wl = constant_workload(10, 100, 20)
        assert wl.total_input_tokens == 1000
        assert wl.total_output_tokens == 200
        assert wl.decode_prefill_ratio == pytest.approx(0.2)

    def test_subset(self):
        wl = constant_workload(10, 100, 20)
        assert wl.subset(3).num_requests == 3
        with pytest.raises(ConfigurationError):
            wl.subset(0)

    def test_offline_subset_keeps_zero_arrivals(self):
        wl = constant_workload(10, 100, 20)
        assert all(r.arrival_time == 0.0 for r in wl.subset(4).requests)

    def test_subset_preserves_offered_rate(self):
        """Regression: a raw prefix kept the original timestamps, so a
        bursty workload's subsample could grossly misstate the offered
        load that simulate_top / tune_chunk_size tuned against."""
        from repro.workloads.arrivals import bursty_arrivals, offered_rate

        wl = bursty_arrivals(
            constant_workload(64, 100, 20), 4.0, burstiness=16.0, seed=3
        )
        full = offered_rate(wl)
        for n in (8, 16, 48):
            sub = wl.subset(n)
            assert sub.num_requests == n
            assert offered_rate(sub) == pytest.approx(full)
            # Arrival order survives the rescale.
            stamps = [r.arrival_time for r in sub.requests]
            assert stamps == sorted(stamps)
        # The full-size "subset" is the identity on timestamps.
        assert [r.arrival_time for r in wl.subset(64).requests] == [
            r.arrival_time for r in wl.requests
        ]

    def test_subset_of_burst_prefix_spreads_at_full_rate(self):
        """A prefix that is entirely a t=0 burst of an online workload is
        re-stamped (evenly) rather than mistaken for an offline run."""
        from dataclasses import replace

        from repro.workloads.arrivals import offered_rate

        base = constant_workload(8, 100, 20)
        stamps = [0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 4.0]
        wl = WorkloadSpec(
            name="burst",
            requests=tuple(
                replace(r, arrival_time=t)
                for r, t in zip(base.requests, stamps)
            ),
        )
        sub = wl.subset(3)
        assert offered_rate(sub) == pytest.approx(offered_rate(wl))
        assert all(r.arrival_time > 0 for r in sub.requests)

    def test_stats(self):
        stats = workload_stats(constant_workload(5, 100, 20))
        assert stats.input_mean == 100
        assert stats.output_p90 == 20


class TestSynthetic:
    def test_constant(self):
        wl = constant_workload(4, 128, 32)
        assert all(r.prompt_len == 128 and r.output_len == 32 for r in wl.requests)

    def test_uniform_in_range(self):
        wl = uniform_workload(50, (10, 20), (1, 5), seed=3)
        assert all(10 <= r.prompt_len <= 20 for r in wl.requests)
        assert all(1 <= r.output_len <= 5 for r in wl.requests)

    def test_uniform_deterministic(self):
        a = uniform_workload(10, (10, 20), (1, 5), seed=3)
        b = uniform_workload(10, (10, 20), (1, 5), seed=3)
        assert [r.prompt_len for r in a.requests] == [r.prompt_len for r in b.requests]

    def test_uniform_invalid_range(self):
        with pytest.raises(ConfigurationError):
            uniform_workload(10, (20, 10), (1, 5))

    def test_ratio(self):
        wl = ratio_workload(10, 0.1, prompt_len=3000)
        assert wl.requests[0].output_len == 300
        assert wl.requests[0].prompt_len == 3000

    def test_ratio_zero_gives_prefill_only(self):
        wl = ratio_workload(10, 0.0)
        assert all(r.output_len == 1 for r in wl.requests)

    def test_ratio_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ratio_workload(10, -0.1)

    def test_poisson_arrivals_increase(self):
        base = constant_workload(20, 100, 10)
        wl = poisson_arrival_workload(base, rate_rps=2.0, seed=1)
        times = [r.arrival_time for r in wl.requests]
        assert times == sorted(times)
        assert times[0] > 0


class TestDatasets:
    def test_arxiv_shape(self):
        """Fig. 9a: long inputs, short outputs -> low D:P."""
        stats = workload_stats(arxiv_workload(500, seed=1))
        assert stats.input_mean > 2000
        assert stats.output_mean < 400
        assert stats.decode_prefill_ratio < 0.15

    def test_sharegpt_shape(self):
        """Fig. 9b: comparable input/output lengths -> D:P near 1."""
        stats = workload_stats(sharegpt_workload(2000, seed=1))
        assert 150 < stats.input_mean < 800
        assert 150 < stats.output_mean < 500
        assert 0.3 < stats.decode_prefill_ratio < 1.5

    def test_arxiv_much_longer_inputs_than_sharegpt(self):
        a = workload_stats(arxiv_workload(300, seed=2))
        s = workload_stats(sharegpt_workload(300, seed=2))
        assert a.input_mean > 3 * s.input_mean

    def test_deterministic(self):
        a = sharegpt_workload(50, seed=9)
        b = sharegpt_workload(50, seed=9)
        assert [r.prompt_len for r in a.requests] == [r.prompt_len for r in b.requests]

    def test_sample_dataset_defaults(self):
        assert sample_dataset("sharegpt").num_requests == 2000
        assert sample_dataset("arxiv").num_requests == 500

    def test_sample_dataset_unknown(self):
        with pytest.raises(ConfigurationError):
            sample_dataset("wikipedia")

    def test_lengths_positive_and_bounded(self):
        for wl in (arxiv_workload(200, seed=3), sharegpt_workload(200, seed=3)):
            for r in wl.requests:
                assert 1 <= r.prompt_len <= 8192
                assert 1 <= r.output_len <= 4096
