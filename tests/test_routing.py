"""The multi-replica routing subsystem.

Covers the four contracts the PR pins down:

1. **Golden equivalence** — the ``static`` policy is bit-exact with the
   seed's t=0 ``split_requests`` deal, so every pinned golden offline
   number survives (the engines now always route through the router).
2. **JSQ balances** — under a bursty, round-robin-adversarial workload
   JSQ strictly reduces the max/mean queued-prefill-token imbalance and
   the p99 TTFT versus static.
3. **po2 determinism** — the sampled policy is a pure function of its
   seed.
4. **Storm rebalancing** — a replica predicted to thrash its KV cache
   has its still-pending requests re-routed away.
"""

import pytest

from repro.engines.base import EngineOptions, split_requests
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError
from repro.experiments.routing_sweep import run_routing_sweep
from repro.parallel.config import parse_config
from repro.routing import (
    JSQRouter,
    LeastWorkRouter,
    Po2Router,
    ROUTER_POLICIES,
    ReplicaLoad,
    RouterContext,
    SLORouter,
    StaticRouter,
    make_router,
)
from repro.runtime.request import Request
from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.synthetic import bimodal_workload, constant_workload

from golden_offline import scenarios
from test_online_serving import GOLDEN_SEED


def requests_at(arrivals, prompt_len=100, output_len=10):
    return [
        Request(request_id=i, prompt_len=prompt_len, output_len=output_len, arrival_time=t)
        for i, t in enumerate(arrivals)
    ]


def ctx(prefill=1000.0, decode=1000.0, kv=None):
    return RouterContext(
        prefill_tokens_per_s=prefill,
        decode_tokens_per_s=decode,
        kv_capacity_tokens=kv,
    )


class TestConstruction:
    def test_make_router_policies(self):
        for policy in ROUTER_POLICIES:
            router = make_router(policy, 2)
            assert router.name == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown router policy"):
            make_router("round-robin", 2)

    def test_engine_options_validate_policy(self):
        with pytest.raises(ConfigurationError, match="unknown router policy"):
            EngineOptions(router="fastest")

    def test_needs_a_replica(self):
        with pytest.raises(ConfigurationError):
            StaticRouter(0)

    def test_empty_request_list_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticRouter(2).route([])


class TestStaticEquivalence:
    def test_partitions_match_split_requests_offline(self):
        reqs = requests_at([0.0] * 11)
        plan = StaticRouter(3).route(reqs)
        assert [list(p) for p in plan.partitions] == split_requests(reqs, 3)

    def test_partitions_match_split_requests_online(self):
        """Membership stays a pure function of the submission index even
        when arrivals are stamped (the seed's deal, made arrival-aware)."""
        wl = poisson_arrivals(constant_workload(20, 100, 10), 5.0, seed=3)
        reqs = list(wl.requests)
        plan = StaticRouter(4, context=ctx()).route(reqs)
        assert [list(p) for p in plan.partitions] == split_requests(reqs, 4)

    @pytest.mark.parametrize("name", sorted(GOLDEN_SEED))
    def test_explicit_static_router_reproduces_seed_golden(self, name):
        """Acceptance: --router static == the pinned seed numbers for all
        four engines (scenarios default to the static router)."""
        result = scenarios()[name]()
        golden = GOLDEN_SEED[name]
        assert result.total_time == pytest.approx(golden["total_time"], rel=1e-12)
        for phase, seconds in golden["phase_time"].items():
            assert result.phase_time[phase] == pytest.approx(seconds, rel=1e-12)

    def test_static_option_is_the_default_and_identical(
        self, tiny_model, cluster_a10_4
    ):
        wl = bursty_arrivals(constant_workload(24, 256, 32), 10.0, seed=5)
        run = lambda opts: VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("D2T2"), opts
        ).run(wl)
        default = run(EngineOptions())
        explicit = run(EngineOptions(router="static"))
        assert default.total_time == explicit.total_time
        assert default.phase_time == explicit.phase_time
        assert default.router is not None
        assert default.router.policy == "static"

    def test_static_never_rebalances(self):
        # A capacity small enough that every dispatch predicts a preemption.
        reqs = requests_at([float(i) * 0.01 for i in range(40)])
        plan = StaticRouter(2, context=ctx(kv=50)).route(reqs)
        assert plan.stats.rebalanced_requests == 0
        assert [list(p) for p in plan.partitions] == split_requests(reqs, 2)


class TestJSQ:
    def bursty_bimodal(self, n=48, rate=10.0):
        return list(
            bursty_arrivals(bimodal_workload(n), rate, burstiness=8.0, seed=11).requests
        )

    def test_reduces_queued_token_imbalance_vs_static(self):
        """Round-robin sends every long prompt to replica 0; JSQ must
        strictly flatten both the max and the max/mean of the peak
        queued-prefill-token depth."""
        reqs = self.bursty_bimodal()
        context = ctx(prefill=20000.0, decode=50000.0)
        static = StaticRouter(2, context=context).route(reqs).stats
        jsq = JSQRouter(2, context=context).route(reqs).stats
        assert jsq.peak_queue_imbalance < static.peak_queue_imbalance
        assert jsq.max_peak_queued_tokens < static.max_peak_queued_tokens
        assert jsq.token_imbalance < static.token_imbalance

    def test_prefers_idle_replica(self):
        context = ctx()
        router = JSQRouter(2, context=context)
        # Pile work on replica 0 by hand, then ask where the next goes.
        router.loads[0].dispatch(0, Request(0, 5000, 10), 0.0)
        assert router.select(Request(1, 100, 10), 1, 0.0) == 1

    def test_engine_run_carries_jsq_stats(self, tiny_model, cluster_a10_4):
        wl = bursty_arrivals(bimodal_workload(32), 8.0, burstiness=8.0, seed=11)
        r = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(router="jsq"),
        ).run(wl)
        assert r.router is not None
        assert r.router.policy == "jsq"
        assert r.router.num_requests == 32
        assert r.latency is not None and r.latency.num_requests == 32


class TestLeastWork:
    def test_counts_decode_backlog_jsq_ignores(self):
        """A replica with a drained prefill queue but a deep predicted
        decode backlog looks idle to JSQ and busy to least-work."""
        context = ctx(prefill=1e9, decode=100.0)  # prefill is near-instant
        router = LeastWorkRouter(2, context=context)
        router.loads[0].dispatch(0, Request(0, 10, 5000), 0.0)
        for load in router.loads:
            load.advance(1.0)  # prefill done; ~49s of decode remains
        assert router.loads[0].queued_prefill_tokens() == pytest.approx(0.0)
        assert router.loads[0].outstanding_tokens() > 0
        assert router.select(Request(1, 10, 10), 1, 1.0) == 1

    def test_drains_over_time(self):
        load = LeastWorkRouter(1, context=ctx(prefill=100.0, decode=100.0)).loads[0]
        load.dispatch(0, Request(0, 100, 101), 0.0)  # 1s prefill + 1s decode
        assert load.outstanding_tokens(0.0) == pytest.approx(200.0)
        load.advance(1.0)
        assert load.outstanding_tokens() == pytest.approx(100.0)
        load.advance(2.0)
        assert load.outstanding_tokens() == pytest.approx(0.0)
        assert not load.records  # retired


class TestPo2:
    def test_deterministic_per_seed(self):
        reqs = requests_at([float(i) * 0.05 for i in range(60)])
        plan = lambda seed: Po2Router(4, context=ctx(), seed=seed).route(reqs)
        assert plan(7).assignments == plan(7).assignments
        assert plan(None).assignments == plan(None).assignments  # default seed

    def test_seed_changes_sampling(self):
        reqs = requests_at([float(i) * 0.05 for i in range(60)])
        a = Po2Router(4, context=ctx(), seed=7).route(reqs).assignments
        b = Po2Router(4, context=ctx(), seed=8).route(reqs).assignments
        assert a != b

    def test_single_replica_trivial(self):
        plan = Po2Router(1, context=ctx(), seed=0).route(requests_at([0.0, 1.0]))
        assert plan.assignments == (0, 0)


class TestSLORouter:
    def slo_ctx(self, kv=None, ttft_slo=None):
        return RouterContext(
            prefill_tokens_per_s=1000.0,
            decode_tokens_per_s=1000.0,
            kv_capacity_tokens=kv,
            ttft_slo=ttft_slo,
        )

    def test_in_policy_registry(self):
        assert "slo" in ROUTER_POLICIES
        assert make_router("slo", 2).name == "slo"

    def test_deterministic(self):
        """Same inputs, same assignments — no stochastic state at all."""
        reqs = requests_at([float(i) * 0.05 for i in range(60)])
        plan = lambda: SLORouter(
            3, context=self.slo_ctx(ttft_slo=1.0)
        ).route(reqs)
        first = plan().assignments
        assert first == plan().assignments
        # The seed argument is inert for this policy (no sampling).
        seeded = SLORouter(3, context=self.slo_ctx(ttft_slo=1.0), seed=99)
        assert seeded.route(reqs).assignments == first

    def test_prefers_soonest_predicted_first_token(self):
        router = SLORouter(2, context=self.slo_ctx())
        router.loads[0].dispatch(0, Request(0, 5000, 10), 0.0)  # 5s of prefill
        assert router.select(Request(1, 100, 10), 1, 0.0) == 1

    def test_penalizes_predicted_preemption(self):
        """A replica predicted to preempt loses even when its predicted
        TTFT is better."""
        router = SLORouter(2, context=self.slo_ctx(kv=800))
        # Replica 0: one request fully resident, filling KV to the brim.
        router.loads[0].dispatch(0, Request(0, 100, 700), 0.0)
        # Replica 1: KV-light, but a long prompt queued (unstarted) behind
        # a small one -> far worse predicted TTFT, no KV pressure.
        router.loads[1].dispatch(1, Request(1, 50, 2), 0.0)
        router.loads[1].dispatch(2, Request(2, 5000, 2), 0.0)
        probe = Request(3, 100, 150)
        assert router.loads[0].would_preempt(probe, 0.0)
        assert not router.loads[1].would_preempt(probe, 0.0)
        assert router.loads[0].predicted_ttft(probe, 0.0) < router.loads[
            1
        ].predicted_ttft(probe, 0.0)
        assert router.select(probe, 3, 0.0) == 1

    def test_slo_miss_breaks_toward_meeting_replica(self):
        """With a TTFT SLO set, a replica predicted to meet it wins over
        one predicted to miss, regardless of raw TTFT ordering among the
        missing class."""
        router = SLORouter(2, context=self.slo_ctx(ttft_slo=0.5))
        router.loads[0].dispatch(0, Request(0, 1000, 10), 0.0)  # 1s drain
        # Replica 0 predicted TTFT ~1.1s (miss); replica 1 ~0.1s (meet).
        assert router.select(Request(1, 100, 10), 1, 0.0) == 1

    def test_engine_run_carries_slo_stats(self, tiny_model, cluster_a10_4):
        wl = bursty_arrivals(bimodal_workload(32), 8.0, burstiness=8.0, seed=11)
        r = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(router="slo", ttft_slo=2.0, tpot_slo=0.5),
        ).run(wl)
        assert r.router is not None
        assert r.router.policy == "slo"
        assert r.router.num_requests == 32


class TestStormRebalance:
    def storm_router(self):
        # Tiny KV and a slow replica: one long-prompt pile-up predicts
        # preemptions and leaves plenty of still-queued work to move.
        return JSQRouter(2, context=ctx(prefill=100.0, decode=1e9, kv=400))

    def test_rebalances_pending_away_from_storm(self):
        router = self.storm_router()
        # Force everything onto replica 0 initially: simultaneous arrivals
        # tie-break to the lowest id until queues differentiate.
        reqs = requests_at([0.0] * 8, prompt_len=200, output_len=2)
        plan = router.route(reqs)
        assert plan.stats.rebalanced_requests > 0
        assert plan.stats.rebalances > 0
        assert plan.stats.total_predicted_preemptions > 0
        # The moved requests really live on the other replica now.
        assert all(len(p) > 0 for p in plan.partitions)
        assert sorted(r.request_id for p in plan.partitions for r in p) == list(
            range(8)
        )

    def test_no_rebalance_without_pressure(self):
        router = JSQRouter(2, context=ctx(prefill=1e9, decode=1e9, kv=10**9))
        plan = router.route(requests_at([float(i) for i in range(8)]))
        assert plan.stats.rebalanced_requests == 0
        assert plan.stats.total_predicted_preemptions == 0


class TestPlanInvariants:
    @pytest.mark.parametrize("policy", ROUTER_POLICIES)
    def test_partitions_are_a_partition(self, policy):
        reqs = list(
            bursty_arrivals(bimodal_workload(30), 6.0, burstiness=8.0, seed=3).requests
        )
        plan = make_router(policy, 3, context=ctx(), seed=0).route(reqs)
        ids = sorted(r.request_id for part in plan.partitions for r in part)
        assert ids == sorted(r.request_id for r in reqs)
        assert len(plan.assignments) == len(reqs)
        assert all(0 <= a < 3 for a in plan.assignments)
        assert plan.stats.num_requests == len(reqs)

    def test_stats_describe_mentions_policy(self):
        plan = StaticRouter(2).route(requests_at([0.0, 0.0]))
        assert "static" in plan.stats.describe()


class TestRoutingSweep:
    def test_jsq_beats_static_p99_ttft_under_bursty(self, tiny_model, cluster_a10_4):
        """Acceptance: at the same offered rate, bursty arrivals give JSQ a
        strictly lower p99 TTFT than the static deal (which lets a burst
        of long prompts pile onto one replica)."""
        sweep = run_routing_sweep(
            tiny_model,
            cluster_a10_4,
            bimodal_workload(48),
            config=parse_config("D2T2"),
            policies=("static", "jsq"),
            rate_rps=10.0,
            burstiness=8.0,
            seed=0,
        )
        assert sweep.ttft_p99("bursty", "jsq") < sweep.ttft_p99("bursty", "static")
        # The latency win comes from balance: JSQ's queue imbalance is flat.
        static_stats = sweep.result("bursty", "static").router
        jsq_stats = sweep.result("bursty", "jsq").router
        assert jsq_stats.peak_queue_imbalance < static_stats.peak_queue_imbalance

    def test_same_offered_rate_across_policies(self, tiny_model, cluster_a10_4):
        sweep = run_routing_sweep(
            tiny_model,
            cluster_a10_4,
            bimodal_workload(24),
            config=parse_config("D2T2"),
            policies=("static", "jsq"),
            rate_rps=6.0,
            seed=0,
        )
        assert sweep.rate_rps == 6.0
        for point in sweep.points:
            assert point.result.num_requests == 24

    def test_requires_data_parallel_config(self, tiny_model, cluster_a10_4):
        with pytest.raises(ConfigurationError, match="data-parallel"):
            run_routing_sweep(
                tiny_model,
                cluster_a10_4,
                bimodal_workload(8),
                config=parse_config("T2"),
                rate_rps=1.0,
            )


class TestDrainClamp:
    """Regression: the ledger's drain is clamped to dispatched work, so a
    provably idle replica reports exactly zero predicted load."""

    def test_idle_replica_reports_exactly_zero_work(self):
        """Retirement tolerates a 1e-12 epsilon; before the clamp, a
        record whose float finish landed just past the clock left a stale
        positive busy_until on an empty ledger forever after."""
        load = ReplicaLoad(0, ctx(prefill=10.0, decode=1000.0))
        load.advance(0.1)
        # prompt 2 @ 10 tok/s from t=0.1: finish = 0.1 + 0.2 = 0.30000...04
        load.dispatch(0, Request(0, 2, 1), 0.1)
        assert load.busy_until > 0.3  # float residue above the clock
        load.advance(0.3)
        assert not load.records  # retired within the epsilon
        assert load.work_seconds() == 0.0  # exactly zero, not 1e-17 stale
        probe = Request(1, 50, 1)
        assert load.predicted_ttft(probe) == 50 / 10.0

    def test_queue_views_clamped_to_dispatched_work(self):
        """Property: queued/outstanding depth is never negative and never
        exceeds the live dispatched work, across dispatch / advance /
        steal sequences."""
        import random

        rng = random.Random(7)
        for _ in range(200):
            load = ReplicaLoad(0, ctx(prefill=100.0, decode=50.0, kv=2000))
            now, rid = 0.0, 0
            for _step in range(20):
                now += rng.random()
                load.advance(now)
                op = rng.random()
                if op < 0.6:
                    load.dispatch(rid, Request(rid, rng.randint(1, 400), rng.randint(1, 40)), now)
                    rid += 1
                elif op < 0.8:
                    load.steal_queued(now)
                live_prompt = sum(r.request.prompt_len for r in load.records)
                live_total = sum(
                    r.request.prompt_len + r.request.output_len - 1
                    for r in load.records
                )
                q = load.queued_prefill_tokens(now)
                o = load.outstanding_tokens(now)
                assert 0.0 <= q <= live_prompt + 1e-9
                assert 0.0 <= o <= live_total + 1e-9
                assert load.work_seconds(now) >= 0.0
                if not load.records:
                    assert load.work_seconds(now) == 0.0
