"""Event-driven serving: offline equivalence, arrival gating, load latency.

The central contract of the arrival-aware refactor is that *offline*
workloads (every request at t=0) reproduce the seed revision's numbers
exactly — the golden values below were captured at the seed commit via
``tests/golden_offline.py`` — while stamped arrival processes yield
sensible online behaviour: idle gaps, queue delays, and latency that
degrades monotonically-in-trend with offered load.
"""

import pytest

from repro.core.engine import SeesawEngine
from repro.engines.base import EngineOptions, ReplicaState
from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.disaggregated import DisaggregatedEngine, DisaggregationPlan
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import SimulationError
from repro.parallel.config import parse_config
from repro.runtime.kvcache import KVCacheManager
from repro.runtime.metrics import EngineResult, merge_dp_results
from repro.runtime.request import Request
from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals, stamp_arrivals
from repro.workloads.datasets import sharegpt_workload
from repro.workloads.synthetic import constant_workload

from golden_offline import scenarios

# Captured at the seed commit (see tests/golden_offline.py). Keys map to
# the scenario functions; values are the seed's totals and phase times.
GOLDEN_SEED = {
    "vllm_plain": {
        "total_time": 0.2112616800702835,
        "phase_time": {"decode": 0.09752755413333335, "prefill": 0.11373412593695029},
        "transitions": 0,
    },
    "vllm_chunked": {
        "total_time": 1.9104881969623662,
        "phase_time": {
            "decode": 1.7512111765333342,
            "mixed": 0.15079988755797333,
            "prefill": 0.008477132871059393,
        },
        "transitions": 0,
    },
    "vllm_dp": {
        "total_time": 1.917398817420879,
        "phase_time": {"decode": 1.7761419093333337, "prefill": 0.14125690808754426},
        "transitions": 0,
    },
    "decode_prio": {
        "total_time": 2.928148100890377,
        "phase_time": {"decode": 2.425880832, "prefill": 0.5022672688903757},
        "transitions": 2,
    },
    "seesaw": {
        "total_time": 44.14296480022675,
        "phase_time": {
            "decode": 36.980176979200024,
            "prefill": 6.551680282203229,
            "reshard": 0.610655774117647,
            "swap_stall": 0.00045176470588259576,
        },
        "transitions": 1,
    },
    "disagg": {
        "total_time": 0.1195430348080097,
        "phase_time": {"decode": 0.10313784320000002, "prefill": 0.1116169739369503},
        "transitions": 0,
    },
}


class TestOfflineEquivalence:
    """All-arrivals-at-0 runs must reproduce the seed bit-for-bit."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_SEED))
    def test_matches_seed_golden(self, name):
        result = scenarios()[name]()
        golden = GOLDEN_SEED[name]
        assert result.total_time == pytest.approx(golden["total_time"], rel=1e-12)
        assert set(result.phase_time) == set(golden["phase_time"])
        for phase, seconds in golden["phase_time"].items():
            assert result.phase_time[phase] == pytest.approx(seconds, rel=1e-12), phase
        assert result.transitions == golden["transitions"]
        assert "idle" not in result.phase_time

    def test_explicit_zero_arrivals_identical(self, tiny_model, cluster_a10_4):
        """Stamping arrival_time=0.0 must be indistinguishable from the
        default offline construction."""
        base = constant_workload(16, 256, 32)
        stamped = stamp_arrivals(base, [0.0] * base.num_requests)
        eng = lambda: VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2"))
        a, b = eng().run(base), eng().run(stamped)
        assert a.total_time == b.total_time
        assert a.phase_time == b.phase_time


class TestReplicaStateGating:
    def make_state(self, arrivals):
        reqs = [
            Request(request_id=i, prompt_len=10, output_len=2, arrival_time=t)
            for i, t in enumerate(arrivals)
        ]
        return ReplicaState(reqs, KVCacheManager(capacity_tokens=4096, block_size=16))

    def test_pending_gated_by_clock(self):
        state = self.make_state([0.0, 5.0, 2.0])
        # t=0: only the first request has arrived.
        assert [s.seq_id for s in state.waiting] == [0]
        assert state.next_arrival_time == pytest.approx(2.0)
        assert state.admit_arrivals(2.0) == 1
        assert [s.seq_id for s in state.waiting] == [0, 2]
        assert state.admit_arrivals(10.0) == 1
        assert not state.pending
        assert [s.seq_id for s in state.waiting] == [0, 2, 1]

    def test_simultaneous_arrivals_keep_submission_order(self):
        state = self.make_state([1.0, 1.0, 1.0])
        state.admit_arrivals(1.0)
        assert [s.seq_id for s in state.waiting] == [0, 1, 2]

    def test_next_arrival_requires_pending(self):
        state = self.make_state([0.0])
        with pytest.raises(SimulationError):
            state.next_arrival_time


class TestOnlineBehaviour:
    def test_idle_phase_and_total_span_arrivals(self, tiny_model, cluster_a10_4):
        """Sparse arrivals force idle gaps; the run cannot end before the
        last request arrives."""
        base = constant_workload(8, 256, 32)
        wl = poisson_arrivals(base, 1.0, seed=3)
        last = max(r.arrival_time for r in wl.requests)
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2")).run(wl)
        assert r.phase_time.get("idle", 0.0) > 0.0
        assert r.total_time > last
        assert r.latency is not None
        # Every request was served after it arrived.
        for rec in r.latency.records:
            assert rec.first_schedule_time >= rec.arrival_time

    @pytest.mark.parametrize(
        "make_engine",
        [
            lambda m, c: VllmLikeEngine(m, c, parse_config("T2P2")),
            lambda m, c: VllmLikeEngine(
                m, c, parse_config("T2P2"), EngineOptions(chunked_prefill=True, chunk_size=512)
            ),
            lambda m, c: DecodePrioritizedEngine(m, c, parse_config("T4")),
            lambda m, c: DisaggregatedEngine(
                m,
                c,
                DisaggregationPlan(
                    prefill_config=parse_config("T2"), decode_config=parse_config("T2")
                ),
            ),
        ],
        ids=["vllm", "vllm-chunked", "decode-prio", "disagg"],
    )
    def test_all_engines_report_online_latency(self, tiny_model, cluster_a10_4, make_engine):
        wl = poisson_arrivals(constant_workload(16, 256, 32), 20.0, seed=3)
        r = make_engine(tiny_model, cluster_a10_4).run(wl)
        assert r.latency is not None
        assert r.latency.num_requests == 16
        lat = r.latency
        assert 0.0 < lat.ttft.p50 <= lat.ttft.p99
        assert 0.0 < lat.tpot.p50 <= lat.tpot.p99
        assert lat.e2e.p99 >= lat.ttft.p99

    def test_bursty_sub_epsilon_gaps_survive(self, tiny_model, cluster_a10_4):
        """High-burstiness Gamma processes produce inter-arrival gaps below
        the admission epsilon (1e-12); the latency records must tolerate a
        first-schedule stamp that tiny amount before the arrival instead of
        crashing at result construction."""
        wl = bursty_arrivals(constant_workload(400, 256, 16), 2.0, burstiness=8.0, seed=3)
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2")).run(wl)
        assert r.latency is not None and r.latency.num_requests == 400
        assert all(rec.queue_delay >= 0.0 for rec in r.latency.records)

    def test_seesaw_online_latency(self, model_34b, cluster_a10_8):
        wl = poisson_arrivals(sharegpt_workload(24, seed=7), 1.0, seed=3)
        r = SeesawEngine(
            model_34b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(wl)
        assert r.latency is not None and r.latency.num_requests == 24
        assert r.latency.ttft.p99 > 0.0
        assert r.total_time >= max(req.arrival_time for req in wl.requests)

    def test_ttft_trends_up_with_load(self, tiny_model, cluster_a10_4):
        """The load-latency curve: median TTFT at saturating load must
        exceed TTFT at a trickle."""
        base = constant_workload(32, 512, 64)
        eng = lambda: VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2"))
        p50s = []
        for rate in (2.0, 50.0, 500.0):
            r = eng().run(poisson_arrivals(base, rate, seed=11))
            assert r.latency is not None
            p50s.append(r.latency.ttft.p50)
        assert p50s[-1] > p50s[0]
        # Offered load is capped by engine capacity: completion throughput
        # at the highest rate approaches the offline rate.
        offline = eng().run(base)
        assert offline.latency is not None

    def test_preemption_under_load_records_queue_delay(self, tiny_model, cluster_a10_4):
        """KV-pressure preemptions must be counted and must not corrupt
        the sticky first-schedule stamp (queue delay measured to first
        service, not to the post-preemption retry)."""

        class TightKVEngine(VllmLikeEngine):
            """The tiny model leaves KV pressure unreachable on 24 GiB
            GPUs; cap the cache so growth must evict."""

            def make_kv(self, config=None, reserve_tokens=0):
                return KVCacheManager(capacity_tokens=8192, block_size=16)

        wl = poisson_arrivals(constant_workload(8, 1000, 500), 100.0, seed=2)
        r = TightKVEngine(tiny_model, cluster_a10_4, parse_config("T2")).run(wl)
        assert r.latency is not None
        assert r.latency.total_preemptions > 0
        for rec in r.latency.records:
            assert rec.arrival_time <= rec.first_schedule_time <= rec.first_token_time
            assert rec.queue_delay >= 0.0
        preempted = [x for x in r.latency.records if x.num_preemptions > 0]
        assert preempted
        # Preempted requests still report a first token before their finish.
        for rec in preempted:
            assert rec.first_token_time < rec.finish_time


class TestDpMerge:
    def make_result(self, iterations, transitions=1, latency=None):
        from repro.costmodel.breakdown import Breakdown

        return EngineResult(
            engine="x",
            label="T2",
            num_requests=4,
            total_time=2.0,
            input_tokens=40,
            output_tokens=8,
            phase_time={"decode": 2.0},
            breakdown=Breakdown(),
            iterations=iterations,
            transitions=transitions,
            latency=latency,
        )

    def test_iterations_sum_across_replicas(self):
        merged = merge_dp_results(
            [self.make_result(5), self.make_result(9)], engine="x", label="D2"
        )
        assert merged.iterations == 14  # work adds up across replicas
        assert merged.transitions == 1  # lock-step re-shards take the max
        assert merged.total_time == 2.0

    def test_dp_engine_iterations_exceed_single_replica_max(
        self, tiny_model, cluster_a10_4
    ):
        wl = constant_workload(40, 300, 40)
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2T2")).run(wl)
        # Two replicas of 20 requests each: summed iterations must exceed
        # what any single replica could report alone (>= 20 decode steps
        # per replica -> the old max-merge would report about half).
        assert r.iterations >= 2 * 39

    def test_latency_merges_across_replicas(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(24, 256, 32), 20.0, seed=3)
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2T2")).run(wl)
        assert r.latency is not None
        assert r.latency.num_requests == 24
        ids = sorted(rec.request_id for rec in r.latency.records)
        assert ids == list(range(24))


class TestTraceSelection:
    def test_trace_with_empty_trailing_partitions(self, tiny_model, cluster_a10_4):
        """Fewer requests than replicas leaves partitions empty; tracing
        must still capture the partition that ran."""
        wl = constant_workload(1, 256, 8)
        opts = EngineOptions(trace=True)
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D4"), opts)
        r = engine.run(wl)
        assert r.num_requests == 1
        assert engine.last_trace.enabled
        assert len(engine.last_trace) > 0

    def test_trace_attaches_to_first_nonempty_partition(
        self, tiny_model, cluster_a10_4, monkeypatch
    ):
        """If partition 0 is empty the trace must attach to the first
        partition that actually has requests (the seed left a NullTrace)."""
        import repro.engines.base as base_mod
        from repro.routing import StaticRouter

        class _SkipReplicaZero(StaticRouter):
            def select(self, request, index, now):
                return self.num_replicas - 1

        monkeypatch.setattr(
            base_mod.BaseEngine,
            "make_router",
            lambda self, requests: _SkipReplicaZero(self.config.dp),
        )
        wl = constant_workload(2, 256, 8)
        opts = EngineOptions(trace=True)
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2"), opts)
        r = engine.run(wl)
        assert r.num_requests == 2
        assert engine.last_trace.enabled
        assert len(engine.last_trace) > 0
