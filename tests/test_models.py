"""Model configs: dimension validation and byte/FLOP accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.models.config import ModelConfig
from repro.models.registry import MODEL_REGISTRY, get_model, register_model


class TestValidation:
    def test_hidden_must_divide_heads(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(
                name="bad",
                num_layers=2,
                hidden_size=100,
                num_heads=3,
                num_kv_heads=1,
                intermediate_size=256,
                vocab_size=1000,
            )

    def test_heads_must_divide_kv_heads(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(
                name="bad",
                num_layers=2,
                hidden_size=128,
                num_heads=8,
                num_kv_heads=3,
                intermediate_size=256,
                vocab_size=1000,
            )

    def test_positive_dims(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(
                name="bad",
                num_layers=0,
                hidden_size=128,
                num_heads=8,
                num_kv_heads=8,
                intermediate_size=256,
                vocab_size=1000,
            )


class TestRegistry:
    def test_aliases(self):
        assert get_model("15b").name == "llama3-15b"
        assert get_model("34b").name == "codellama-34b"
        assert get_model("70b").name == "llama2-70b"
        assert get_model("13b").name == "llama2-13b"

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_model("405b")

    def test_duplicate_register(self):
        with pytest.raises(ConfigurationError):
            register_model(MODEL_REGISTRY["llama2-70b"])

    def test_param_counts_near_nominal(self):
        """Total parameters should land near each model's nominal size."""
        expectations = {
            "llama2-13b": 13.0e9,
            "llama3-15b": 15.0e9,
            "codellama-34b": 33.7e9,
            "llama2-70b": 69.0e9,
        }
        for name, nominal in expectations.items():
            params = get_model(name).total_params
            assert params == pytest.approx(nominal, rel=0.08), name

    def test_70b_weight_bytes_about_140_gb(self):
        """The paper: a 70B model takes ~140 GiB of fp16 weights."""
        bytes_ = get_model("70b").total_weight_bytes
        assert 130e9 < bytes_ < 150e9


class TestAccounting:
    def test_kv_bytes_per_token_gqa(self):
        m = get_model("70b")
        # 2 (K,V) * hkv * d * 2 bytes * L
        expected = 2 * 8 * 128 * 2 * 80
        assert m.kv_bytes_per_token == expected

    def test_gqa_smaller_kv_than_mha(self):
        mha = get_model("llama2-13b")  # hkv == hq
        gqa = get_model("34b")
        assert (
            gqa.kv_bytes_per_token / gqa.total_params
            < mha.kv_bytes_per_token / mha.total_params
        )

    def test_linear_flops_is_2w(self):
        m = get_model("34b")
        assert m.linear_flops_per_token_per_layer() == pytest.approx(
            2.0 * m.layer_params
        )

    def test_prefill_attention_quadratic(self):
        m = get_model("34b")
        f1 = m.attention_flops_prefill_per_layer(100)
        f2 = m.attention_flops_prefill_per_layer(200)
        assert f2 == pytest.approx(4 * f1)

    def test_decode_attention_linear_in_context(self):
        m = get_model("34b")
        f1 = m.attention_flops_decode_per_layer(100)
        f2 = m.attention_flops_decode_per_layer(200)
        assert f2 == pytest.approx(2 * f1)

    def test_activation_bytes(self):
        m = get_model("70b")
        assert m.activation_bytes_per_token() == 8192 * 2

    def test_describe_contains_name(self):
        assert "llama2-70b" in get_model("70b").describe()

    def test_layer_weight_bytes_fp16(self):
        m = get_model("34b")
        assert m.layer_weight_bytes == 2 * m.layer_params
