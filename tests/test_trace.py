"""Execution traces and schedule timelines."""

import pytest

from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.engines.base import EngineOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import SimulationError
from repro.parallel.config import parse_config
from repro.runtime.trace import (
    DECODE,
    PREFILL,
    RESHARD,
    SWAP_IN,
    SWAP_OUT,
    NullTrace,
    Trace,
    TraceEvent,
    render_timeline,
)
from repro.workloads.synthetic import constant_workload


class TestTraceBasics:
    def test_record_and_query(self):
        t = Trace()
        t.record(PREFILL, 0.0, 1.0, tokens=100)
        t.record(DECODE, 1.0, 2.0, num_seqs=4)
        assert len(t) == 2
        assert t.total_time(DECODE) == pytest.approx(2.0)
        assert t.span == pytest.approx(3.0)
        assert [e.kind for e in t] == [PREFILL, DECODE]

    def test_invalid_kind(self):
        with pytest.raises(SimulationError):
            TraceEvent(kind="nap", start=0, duration=1)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            TraceEvent(kind=DECODE, start=-1, duration=1)

    def test_null_trace_free(self):
        t = NullTrace()
        t.record(PREFILL, 0.0, 1.0)
        assert len(t) == 0
        assert not t.enabled

    def test_segments_coalesce(self):
        t = Trace()
        t.record(DECODE, 0.0, 1.0)
        t.record(DECODE, 1.0, 1.0)
        t.record(PREFILL, 2.0, 1.0)
        t.record(DECODE, 3.0, 1.0)
        segs = t.phase_segments()
        assert [s[0] for s in segs] == [DECODE, PREFILL, DECODE]
        assert segs[0][1:] == (0.0, 2.0)

    def test_render_empty(self):
        assert "empty" in render_timeline(Trace())

    def test_render_rows(self):
        t = Trace()
        t.record(PREFILL, 0.0, 5.0)
        t.record(DECODE, 5.0, 5.0)
        out = render_timeline(t, width=20)
        assert "prefill" in out and "decode" in out
        assert "#" in out


class TestEngineTracing:
    def test_disabled_by_default(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2"))
        engine.run(constant_workload(8, 200, 16))
        assert not engine.last_trace.enabled

    def test_vllm_trace_has_phases(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("T2P2"), EngineOptions(trace=True)
        )
        result = engine.run(constant_workload(8, 200, 16))
        trace = engine.last_trace
        assert trace.enabled
        assert trace.of_kind(PREFILL)
        assert trace.of_kind(DECODE)
        # Trace compute time accounts for the run's wall clock.
        total = trace.total_time(PREFILL) + trace.total_time(DECODE)
        assert total == pytest.approx(result.total_time, rel=1e-6)

    def test_seesaw_trace_has_reshards_and_swaps(
        self, model_34b, cluster_a10_8, small_arxiv
    ):
        engine = SeesawEngine(
            model_34b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            SeesawOptions(trace=True),
        )
        result = engine.run(small_arxiv)
        trace = engine.last_trace
        assert trace.of_kind(RESHARD)
        assert trace.of_kind(SWAP_IN) and trace.of_kind(SWAP_OUT)
        assert sum(e.tokens for e in trace.of_kind(SWAP_OUT)) == result.swapped_out_tokens

    def test_seesaw_phase_alternation(self, model_34b, cluster_a10_8, small_arxiv):
        """The trace shows the Fig. 2(c) structure: prefill, then a reshard,
        then decode — with no decode before the first reshard."""
        engine = SeesawEngine(
            model_34b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            SeesawOptions(trace=True),
        )
        engine.run(small_arxiv)
        kinds = [s[0] for s in engine.last_trace.phase_segments()]
        assert kinds[0] == PREFILL
        assert RESHARD in kinds
        assert kinds.index(RESHARD) < kinds.index(DECODE)

    def test_events_are_time_ordered_within_phase(self, model_34b, cluster_a10_8, small_arxiv):
        engine = SeesawEngine(
            model_34b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            SeesawOptions(trace=True),
        )
        engine.run(small_arxiv)
        decodes = engine.last_trace.of_kind(DECODE)
        starts = [e.start for e in decodes]
        assert starts == sorted(starts)
