"""Consistency between the analytic predictor and the simulated engines.

The autotuner trusts the predictor to rank configurations; these tests pin
the predictor to the simulator within loose factors (it is a steady-state
model and ignores scheduling effects, so exact agreement is not expected —
but an order-of-magnitude drift would silently break the search).
"""

import pytest

from repro.autotuner.predictor import predict_request_rate
from repro.engines.vllm_like import VllmLikeEngine
from repro.experiments.fig4_disagg import feasible_disaggregation_splits
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.parallel.config import parse_config
from repro.workloads.synthetic import constant_workload


class TestPredictorVsSimulation:
    @pytest.mark.parametrize("label", ["T4P2", "P8", "T8", "D2T4"])
    def test_predicted_rate_within_2x_of_simulated(self, label):
        model = get_model("34b")
        cluster = make_cluster("A10", 8)
        wl = constant_workload(96, 1500, 150)
        cfg = parse_config(label)
        predicted = predict_request_rate(
            model,
            cluster,
            cfg,
            cfg,
            1500,
            150,
            concurrency=wl.num_requests,
        ).request_rate
        simulated = VllmLikeEngine(model, cluster, cfg).run(wl).throughput_rps
        assert predicted / simulated < 2.5
        assert simulated / predicted < 2.5

    def test_predictor_preserves_simulated_ordering_extremes(self):
        """The predictor must agree with the simulator about the clearly
        separated cases (best vs worst static config for a prefill-heavy
        workload)."""
        model = get_model("34b")
        cluster = make_cluster("A10", 8)
        wl = constant_workload(64, 3000, 100)

        def both(label):
            cfg = parse_config(label)
            p = predict_request_rate(
                model, cluster, cfg, cfg, 3000, 100, concurrency=64
            ).request_rate
            s = VllmLikeEngine(model, cluster, cfg).run(wl).throughput_rps
            return p, s

        p_pp, s_pp = both("P8")
        p_t8, s_t8 = both("T8")
        assert (p_pp > p_t8) == (s_pp > s_t8)


class TestDisaggregationSplits:
    def test_70b_on_40gib_has_only_4_4(self):
        model = get_model("70b")
        cluster = make_cluster("A100-PCIE", 8)
        sizes = {
            (p.prefill_gpus, p.decode_gpus)
            for p in feasible_disaggregation_splits(model, cluster)
        }
        assert sizes == {(4, 4)}

    def test_config_variety_within_the_single_split(self):
        """The split is pinned to 4+4 (pool sizes), but within it several
        per-pool parallelizations are feasible — the paper's Fig. 4 point
        is about GPU counts, not within-pool layouts."""
        cluster = make_cluster("A100-PCIE", 8)
        plans = feasible_disaggregation_splits(get_model("70b"), cluster)
        labels = {p.label() for p in plans}
        assert "P4|T4" in labels
        assert len(labels) >= 4
        assert all(p.prefill_gpus == p.decode_gpus == 4 for p in plans)

    def test_smaller_cluster_admits_no_split_for_70b(self):
        """On 4x40GiB there is no way to disaggregate a 70B at all (each
        pool must hold a full replica)."""
        cluster = make_cluster("A100-PCIE", 4)
        assert feasible_disaggregation_splits(get_model("70b"), cluster) == []
